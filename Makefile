# Developer/CI entry points.
#
#   make test             -- the tier-1 verification suite (tests/ only; slow-marked
#                            suites are deselected via pytest.ini)
#   make check            -- tier-1 tests + CLI scenario smoke + experiments smoke
#                            + benchmark trajectory gate (CI gate)
#   make check-parallel   -- tier-1 + the slow parity/stress suites + a smoke run
#                            of the campaign-throughput benchmark
#   make check-procs      -- the multi-process tier: procpool unit tests plus the
#                            slow cross-backend (virtual vs process) parity sweep
#   make check-bench      -- smoke-regenerate benchmarks/results/, then diff
#                            against the baseline with claim flips fatal
#   make check-keyed      -- the keyed-scheme/attacker-model tier: both unit
#                            suites plus an entropy-experiment smoke via the CLI
#   make check-corpus     -- the scenario-corpus tier: corpus/seed unit suites,
#                            then generate a small corpus and run the corpus
#                            experiment over it (scorecard must be all-pass)
#   make check-load       -- the open-loop load tier: arrivals/admission and
#                            checkpoint/migration unit suites, a seeded loadtest
#                            smoke via the CLI, the migration round-trip
#                            scenario, and the committed-figure freshness check
#   make figures          -- re-render benchmarks/figures/ from the committed
#                            benchmark results
#   make experiments-smoke -- every registered experiment at its smallest spec,
#                            via the CLI (claims gate the exit code)
#   make bench            -- every benchmark, with timing; each writes
#                            benchmarks/results/BENCH_<name>.json
#   make bench-smoke      -- every benchmark once, no timing (fast CI exercise;
#                            the procpool bench runs its tiny smoke matrix)
#   make bench-procpool-smoke -- just the process-tier benchmark's smoke matrix
#   make bench-diff       -- per-metric deltas of benchmarks/results/ against
#                            the committed benchmarks/baseline/ snapshot
#   make examples         -- run each example script end to end

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# bench_diff.py is the trajectory-diff tool, not a pytest benchmark.
BENCHES := $(filter-out benchmarks/bench_diff.py,$(wildcard benchmarks/bench_*.py))
EXAMPLES := $(wildcard examples/*.py)

.PHONY: test check check-parallel check-procs check-bench check-keyed \
	check-corpus check-apps check-load experiments-smoke bench bench-smoke \
	bench-procpool-smoke bench-diff figures examples

test:
	$(PYTHON) -m pytest -x -q

check: test experiments-smoke check-keyed check-corpus check-apps check-load check-bench
	$(PYTHON) -m repro run examples/scenarios/detection_matrix.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/throughput.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/campaign.json --parallelism 8 > /dev/null
	$(PYTHON) -m repro run examples/scenarios/campaign.json --backend process --workers 2 > /dev/null
	$(PYTHON) -m repro run examples/scenarios/table3.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/ablations.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/address_orbit.json > /dev/null
	@echo "check ok: tier-1 tests + experiments smoke + bench gate + CLI scenario smoke"

# Every registered experiment at its smallest meaningful parameters, through
# the same CLI path users take; a failed claim fails the target, and so does
# a broken (or empty) registry listing.
experiments-smoke:
	@set -e; names=$$($(PYTHON) -m repro experiments --names); \
	test -n "$$names" || { echo "experiments-smoke: no experiments listed" >&2; exit 1; }; \
	for name in $$names; do \
		echo "== experiment $$name (smoke)"; \
		$(PYTHON) -m repro experiment $$name --smoke > /dev/null; \
	done; echo "experiments-smoke ok: every registered experiment ran clean"

# The engine-parallel gate: the serial-parity property suite and the
# scheduler stress tests (both marked `slow`, deselected from tier-1), then
# one assertion-only pass of the campaign-throughput benchmark.
check-parallel: test
	$(PYTHON) -m pytest -q -m slow tests/test_campaign_parallel.py tests/test_engine_concurrency.py
	$(PYTHON) -m pytest benchmarks/bench_campaign_throughput.py -q --benchmark-disable
	@echo "check-parallel ok: tier-1 + parity/stress suites + campaign bench smoke"

# The multi-process tier gate: the procpool unit suite (real forked workers),
# the slow cross-backend parity sweep (virtual vs process at 1/2/4 workers),
# and the wall-clock benchmark's smoke matrix.
check-procs:
	$(PYTHON) -m pytest -q tests/test_procpool.py
	$(PYTHON) -m pytest -q -m slow tests/test_campaign_parallel.py
	BENCH_PROCPOOL_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_procpool.py -q --benchmark-disable
	@echo "check-procs ok: procpool unit suite + cross-backend parity + bench smoke"

# The keyed tier gate: keyed-scheme determinism/rotation, the attacker-model
# suite (including the process-backend parity and WorkerError CLI checks),
# and one seeded entropy-experiment smoke through the CLI.
check-keyed:
	$(PYTHON) -m pytest -q tests/test_keyed_schemes.py tests/test_security_attacker.py
	$(PYTHON) -m repro experiment entropy --smoke --seed 20080625 > /dev/null
	@echo "check-keyed ok: keyed schemes + attacker suite + entropy smoke"

# The scenario-corpus gate: the corpus/oracle/scorecard unit suite and the
# seed/boundary properties, then a generate -> run round trip through the CLI
# (a written smoke corpus, graded on both backends; any scorecard miss fails
# the experiment's claims and with them the target).
check-corpus:
	$(PYTHON) -m pytest -q tests/test_corpus.py tests/test_seed_and_boundaries.py
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(PYTHON) -m repro corpus generate --seed 20080625 --records 60 --out "$$dir" > /dev/null; \
	$(PYTHON) -m repro experiment corpus --corpus-dir "$$dir" --set workers=4 > /dev/null
	@echo "check-corpus ok: corpus suites + generated-corpus scorecard all-pass"

# The second-workload gate: the interposition-table and fd-orbit unit suites,
# the ftpd suite, the cross-app parity matrix, the fd-orbit slice of the
# partition-scheme invariant sweep, then the apps experiment's claims (the
# virtual-backend smoke) and one ftpd campaign scenario through the CLI.
check-apps:
	$(PYTHON) -m pytest -q tests/test_interpose.py tests/test_fdspace.py \
		tests/test_apps_ftpd.py tests/test_cross_app_parity.py
	$(PYTHON) -m pytest -q tests/test_partition_schemes.py -k "fd"
	$(PYTHON) -m repro experiment apps --smoke > /dev/null
	$(PYTHON) -m repro run examples/scenarios/ftpd_campaign.json > /dev/null
	@echo "check-apps ok: interposition + fd-orbit + ftpd suites, parity, apps smoke"

# The open-loop load gate: the arrivals/admission/latency/intake unit suite
# and the checkpoint/restore/migration property suite, a seeded loadtest
# experiment smoke through the CLI (claims gate the exit code), the example
# scenario's bursty-overload + mid-run-migration round trip, and the check
# that the committed figures match the committed benchmark results.
check-load:
	$(PYTHON) -m pytest -q tests/test_load_subsystem.py tests/test_load_checkpoint.py
	$(PYTHON) -m repro experiment loadtest --smoke --seed 20080625 > /dev/null
	$(PYTHON) -m repro run examples/scenarios/loadtest.json > /dev/null
	$(PYTHON) benchmarks/render_figures.py --check
	@echo "check-load ok: load suites + loadtest smoke + migration scenario + figures"

figures:
	$(PYTHON) benchmarks/render_figures.py

# The benchmark trajectory gate: regenerate results/ in smoke mode (virtual-time
# payloads are deterministic, so a clean tree reproduces the committed files),
# then diff against the committed baseline with non-numeric flips fatal.  The
# small --rtol absorbs float-formatting jitter without hiding real moves.
check-bench: bench-smoke
	$(PYTHON) benchmarks/bench_diff.py --fail-on-flip --rtol 0.001
	@echo "check-bench ok: benchmark trajectory matches the committed baseline"

bench:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-only -s

# --benchmark-disable runs every benchmarked function exactly once as a plain
# test, so CI exercises each benchmark's assertions without paying for timing
# rounds.  BENCH_PROCPOOL_SMOKE shrinks the wall-clock benchmark to its tiny
# matrix and keeps it from overwriting its committed (full-run) results file.
bench-smoke:
	BENCH_PROCPOOL_SMOKE=1 $(PYTHON) -m pytest $(BENCHES) -q --benchmark-disable

bench-procpool-smoke:
	BENCH_PROCPOOL_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_procpool.py -q --benchmark-disable

# Cross-PR benchmark trajectory: compare the current results/ files against
# the committed baseline/ snapshot and print per-metric deltas.
bench-diff:
	$(PYTHON) benchmarks/bench_diff.py

examples:
	@set -e; for example in $(EXAMPLES); do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null; \
	done; echo "all examples ok"
