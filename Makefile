# Developer/CI entry points.
#
#   make test        -- the tier-1 verification suite (tests/ only)
#   make bench       -- every paper-table/figure benchmark, with timing
#   make bench-smoke -- every benchmark once, no timing (fast CI exercise)
#   make examples    -- run each example script end to end

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

BENCHES := $(wildcard benchmarks/bench_*.py)
EXAMPLES := $(wildcard examples/*.py)

.PHONY: test bench bench-smoke examples

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-only -s

# --benchmark-disable runs every benchmarked function exactly once as a plain
# test, so CI exercises each benchmark's assertions without paying for timing
# rounds.
bench-smoke:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-disable

examples:
	@set -e; for example in $(EXAMPLES); do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null; \
	done; echo "all examples ok"
