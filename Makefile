# Developer/CI entry points.
#
#   make test        -- the tier-1 verification suite (tests/ only)
#   make check       -- tier-1 tests + a CLI scenario smoke run (CI gate)
#   make bench       -- every paper-table/figure benchmark, with timing
#   make bench-smoke -- every benchmark once, no timing (fast CI exercise)
#   make examples    -- run each example script end to end

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

BENCHES := $(wildcard benchmarks/bench_*.py)
EXAMPLES := $(wildcard examples/*.py)

.PHONY: test check bench bench-smoke examples

test:
	$(PYTHON) -m pytest -x -q

check: test
	$(PYTHON) -m repro run examples/scenarios/detection_matrix.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/throughput.json > /dev/null
	@echo "check ok: tier-1 tests + CLI scenario smoke"

bench:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-only -s

# --benchmark-disable runs every benchmarked function exactly once as a plain
# test, so CI exercises each benchmark's assertions without paying for timing
# rounds.
bench-smoke:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-disable

examples:
	@set -e; for example in $(EXAMPLES); do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null; \
	done; echo "all examples ok"
