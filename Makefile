# Developer/CI entry points.
#
#   make test             -- the tier-1 verification suite (tests/ only; slow-marked
#                            suites are deselected via pytest.ini)
#   make check            -- tier-1 tests + CLI scenario smoke + experiments smoke
#                            (CI gate)
#   make check-parallel   -- tier-1 + the slow parity/stress suites + a smoke run
#                            of the campaign-throughput benchmark
#   make experiments-smoke -- every registered experiment at its smallest spec,
#                            via the CLI (claims gate the exit code)
#   make bench            -- every benchmark, with timing; each writes
#                            benchmarks/results/BENCH_<name>.json
#   make bench-smoke      -- every benchmark once, no timing (fast CI exercise)
#   make bench-diff       -- per-metric deltas of benchmarks/results/ against
#                            the committed benchmarks/baseline/ snapshot
#   make examples         -- run each example script end to end

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# bench_diff.py is the trajectory-diff tool, not a pytest benchmark.
BENCHES := $(filter-out benchmarks/bench_diff.py,$(wildcard benchmarks/bench_*.py))
EXAMPLES := $(wildcard examples/*.py)

.PHONY: test check check-parallel experiments-smoke bench bench-smoke bench-diff examples

test:
	$(PYTHON) -m pytest -x -q

check: test experiments-smoke
	$(PYTHON) -m repro run examples/scenarios/detection_matrix.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/throughput.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/campaign.json --parallelism 8 > /dev/null
	$(PYTHON) -m repro run examples/scenarios/table3.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/ablations.json > /dev/null
	$(PYTHON) -m repro run examples/scenarios/address_orbit.json > /dev/null
	@echo "check ok: tier-1 tests + experiments smoke + CLI scenario smoke"

# Every registered experiment at its smallest meaningful parameters, through
# the same CLI path users take; a failed claim fails the target, and so does
# a broken (or empty) registry listing.
experiments-smoke:
	@set -e; names=$$($(PYTHON) -m repro experiments --names); \
	test -n "$$names" || { echo "experiments-smoke: no experiments listed" >&2; exit 1; }; \
	for name in $$names; do \
		echo "== experiment $$name (smoke)"; \
		$(PYTHON) -m repro experiment $$name --smoke > /dev/null; \
	done; echo "experiments-smoke ok: every registered experiment ran clean"

# The engine-parallel gate: the serial-parity property suite and the
# scheduler stress tests (both marked `slow`, deselected from tier-1), then
# one assertion-only pass of the campaign-throughput benchmark.
check-parallel: test
	$(PYTHON) -m pytest -q -m slow tests/test_campaign_parallel.py tests/test_engine_concurrency.py
	$(PYTHON) -m pytest benchmarks/bench_campaign_throughput.py -q --benchmark-disable
	@echo "check-parallel ok: tier-1 + parity/stress suites + campaign bench smoke"

bench:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-only -s

# --benchmark-disable runs every benchmarked function exactly once as a plain
# test, so CI exercises each benchmark's assertions without paying for timing
# rounds.
bench-smoke:
	$(PYTHON) -m pytest $(BENCHES) -q --benchmark-disable

# Cross-PR benchmark trajectory: compare the current results/ files against
# the committed baseline/ snapshot and print per-metric deltas.
bench-diff:
	$(PYTHON) benchmarks/bench_diff.py

examples:
	@set -e; for example in $(EXAMPLES); do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null; \
	done; echo "all examples ok"
