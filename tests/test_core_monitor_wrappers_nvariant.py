"""Tests for the monitor, the wrapper layer and the lockstep N-variant engine."""

import pytest

from repro.core.alarm import AlarmType
from repro.core.monitor import Monitor
from repro.core.nvariant import NVariantSystem, UIDCodec, nvexec
from repro.core.pipeline import (
    DataDiversityPipeline,
    TargetInterpreter,
    faithful_app_interpreter,
    vulnerable_app_interpreter,
)
from repro.core.variations.address import AddressPartitioning
from repro.core.variations.uid import UIDVariation
from repro.core.wrappers import SyscallWrappers, UnsharedFileRegistry
from repro.kernel.errors import SegmentationFault
from repro.kernel.filesystem import O_RDONLY
from repro.kernel.host import build_standard_host
from repro.kernel.syscalls import Syscall, request


class TestMonitor:
    def test_equivalent_requests_raise_no_alarm(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls([request(Syscall.SETUID, 33), request(Syscall.SETUID, 33)])
        assert alarm is None
        assert not monitor.attack_detected

    def test_different_syscalls_classified_as_syscall_mismatch(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls([request(Syscall.SETUID, 33), request(Syscall.GETUID)])
        assert alarm.alarm_type is AlarmType.SYSCALL_MISMATCH

    def test_uid_argument_mismatch_classified_as_uid_divergence(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls([request(Syscall.SETUID, 0), request(Syscall.SETUID, 33)])
        assert alarm.alarm_type is AlarmType.UID_DIVERGENCE

    def test_uid_value_mismatch_classified_as_uid_divergence(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls([request(Syscall.UID_VALUE, 0), request(Syscall.UID_VALUE, 1)])
        assert alarm.alarm_type is AlarmType.UID_DIVERGENCE

    def test_cond_chk_mismatch_classified_as_control_flow(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls(
            [request(Syscall.COND_CHK, True), request(Syscall.COND_CHK, False)]
        )
        assert alarm.alarm_type is AlarmType.CONTROL_FLOW_DIVERGENCE

    def test_generic_argument_mismatch(self):
        monitor = Monitor()
        alarm = monitor.check_syscalls(
            [request(Syscall.WRITE, 1, b"a"), request(Syscall.WRITE, 1, b"b")]
        )
        assert alarm.alarm_type is AlarmType.ARGUMENT_MISMATCH

    def test_fault_and_lifecycle_reports(self):
        monitor = Monitor()
        monitor.report_fault(1, SegmentationFault("boom", address=0x1234))
        monitor.report_lifecycle_divergence("one variant exited")
        kinds = [alarm.alarm_type for alarm in monitor.alarms]
        assert AlarmType.VARIANT_FAULT in kinds and AlarmType.LIFECYCLE_DIVERGENCE in kinds

    def test_stats_track_detection_calls(self):
        monitor = Monitor()
        monitor.check_syscalls([request(Syscall.CC_EQ, 1, 1), request(Syscall.CC_EQ, 1, 1)])
        assert monitor.stats.detection_calls_checked == 1
        assert monitor.stats.lockstep_points == 1


class TestWrappers:
    def _setup(self, num_variants=2):
        kernel = build_standard_host()
        processes = [kernel.spawn_process(f"v{i}") for i in range(num_variants)]
        registry = UnsharedFileRegistry(num_variants)
        registry.register("/etc/passwd", [f"/etc/passwd-{i}" for i in range(num_variants)])
        from repro.kernel.host import install_diversified_user_db

        install_diversified_user_db(kernel.fs, [lambda u: u, lambda u: u ^ 0x7FFFFFFF])
        wrappers = SyscallWrappers(kernel, processes, registry)
        return kernel, processes, wrappers

    def test_shared_open_executes_once_and_mirrors_descriptor(self):
        kernel, processes, wrappers = self._setup()
        results = wrappers.execute_round(
            [request(Syscall.OPEN, "/etc/httpd.conf", O_RDONLY)] * 2
        )
        fd = results[0].value
        assert results[0] == results[1]
        assert processes[0].fds.get(fd) is processes[1].fds.get(fd)
        assert not wrappers.is_unshared_fd(fd)

    def test_unshared_open_redirects_per_variant(self):
        kernel, processes, wrappers = self._setup()
        results = wrappers.execute_round([request(Syscall.OPEN, "/etc/passwd", O_RDONLY)] * 2)
        fd = results[0].value
        assert wrappers.is_unshared_fd(fd)
        assert processes[0].fds.get(fd).path == "/etc/passwd-0"
        assert processes[1].fds.get(fd).path == "/etc/passwd-1"

    def test_unshared_read_returns_different_data(self):
        kernel, processes, wrappers = self._setup()
        fd = wrappers.execute_round([request(Syscall.OPEN, "/etc/passwd", O_RDONLY)] * 2)[0].value
        reads = wrappers.execute_round([request(Syscall.READ, fd, 4096)] * 2)
        assert reads[0].value != reads[1].value
        assert b"root:x:0:" in reads[0].value
        assert b"root:x:2147483647:" in reads[1].value

    def test_shared_read_replicates_one_result(self):
        kernel, processes, wrappers = self._setup()
        fd = wrappers.execute_round([request(Syscall.OPEN, "/etc/httpd.conf", O_RDONLY)] * 2)[0].value
        reads = wrappers.execute_round([request(Syscall.READ, fd, 64)] * 2)
        assert reads[0].value == reads[1].value
        assert wrappers.stats.replicated_calls >= 2

    def test_close_clears_unshared_flag_and_alignment(self):
        kernel, processes, wrappers = self._setup()
        fd = wrappers.execute_round([request(Syscall.OPEN, "/etc/passwd", O_RDONLY)] * 2)[0].value
        wrappers.execute_round([request(Syscall.CLOSE, fd)] * 2)
        assert not wrappers.is_unshared_fd(fd)
        assert fd not in processes[0].fds and fd not in processes[1].fds

    def test_credential_calls_run_per_variant(self):
        kernel, processes, wrappers = self._setup()
        wrappers.execute_round([request(Syscall.SETUID, 33)] * 2)
        assert all(process.credentials.euid == 33 for process in processes)

    def test_registry_validates_path_count(self):
        registry = UnsharedFileRegistry(2)
        with pytest.raises(ValueError):
            registry.register("/etc/passwd", ["/etc/passwd-0"])


def _benign_factory(ctx):
    def program():
        opened = yield from ctx.libc.open("/etc/passwd", O_RDONLY)
        yield from ctx.libc.read(opened.value, 4096)
        yield from ctx.libc.close(opened.value)
        yield from ctx.libc.setuid(ctx.uid_codec.constant(33))
        yield from ctx.libc.exit(0)

    return program()


class TestNVariantEngine:
    def test_benign_program_completes_without_alarm(self):
        result = nvexec(build_standard_host(), _benign_factory, [UIDVariation()])
        assert result.completed_normally
        assert result.lockstep_rounds > 0
        assert not result.attack_detected

    def test_uid_codec_exposed_to_variants(self):
        kernel = build_standard_host()
        system = NVariantSystem(kernel, _benign_factory, [UIDVariation()])
        assert system.contexts[0].uid_codec.root == 0
        assert system.contexts[1].uid_codec.root == 0x7FFFFFFF

    def test_identity_codec_without_uid_variation(self):
        kernel = build_standard_host()
        system = NVariantSystem(kernel, _benign_factory, [AddressPartitioning()])
        assert system.contexts[1].uid_codec.root == 0
        assert system.contexts[1].address_space.partition == 1

    def test_injected_identical_uid_detected(self):
        def attack_factory(ctx):
            def program():
                yield from ctx.libc.setuid(0)  # same concrete value in both variants
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), attack_factory, [UIDVariation()])
        assert result.attack_detected
        assert result.first_alarm().alarm_type is AlarmType.UID_DIVERGENCE

    def test_divergent_syscalls_detected(self):
        def factory(ctx):
            def program():
                if ctx.index == 0:
                    yield from ctx.libc.getuid()
                else:
                    yield from ctx.libc.getpid()
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), factory, [UIDVariation()])
        assert result.attack_detected
        assert result.first_alarm().alarm_type is AlarmType.SYSCALL_MISMATCH

    def test_variant_fault_detected(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.getuid()
                if ctx.index == 1:
                    raise SegmentationFault("injected pointer", address=0x1234)
                yield from ctx.libc.getuid()
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), factory, [AddressPartitioning()])
        assert result.attack_detected
        assert result.first_alarm().alarm_type is AlarmType.VARIANT_FAULT
        assert result.first_alarm().faulting_variant == 1

    def test_lifecycle_divergence_detected(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.getuid()
                if ctx.index == 0:
                    yield from ctx.libc.exit(0)
                yield from ctx.libc.getuid()
                yield from ctx.libc.getuid()
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), factory, [UIDVariation()])
        assert result.attack_detected
        kinds = {alarm.alarm_type for alarm in result.alarms}
        assert AlarmType.LIFECYCLE_DIVERGENCE in kinds or AlarmType.SYSCALL_MISMATCH in kinds

    def test_halt_policy_stops_variants(self):
        def attack_factory(ctx):
            def program():
                yield from ctx.libc.setuid(0)
                yield from ctx.libc.getuid()
                yield from ctx.libc.exit(0)

            return program()

        kernel = build_standard_host()
        result = nvexec(kernel, attack_factory, [UIDVariation()])
        assert result.attack_detected
        assert all(not process.alive for process in kernel.processes.all())

    def test_three_variants_supported_without_uid_variation(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.getuid()
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), factory, [], num_variants=3)
        assert result.completed_normally
        assert len(result.variants) == 3

    def test_result_describe_is_readable(self):
        result = nvexec(build_standard_host(), _benign_factory, [UIDVariation()])
        text = result.describe()
        assert "lockstep rounds" in text and "variant 0" in text


class TestUIDCodec:
    def test_identity_codec(self):
        codec = UIDCodec.identity()
        assert codec.constant(33) == 33 and codec.decode(33) == 33 and codec.root == 0

    def test_variant_codec_round_trip(self):
        variation = UIDVariation()
        codec = UIDCodec(
            encode=lambda value: variation.encode(1, value),
            decode=lambda value: variation.decode(1, value),
        )
        assert codec.decode(codec.constant(33)) == 33
        assert codec.root == 0x7FFFFFFF


class TestPipelineModel:
    def test_benign_flow_reaches_target(self):
        variation = UIDVariation()
        applied = []
        pipeline = DataDiversityPipeline(
            variation.reexpressions(), faithful_app_interpreter(), TargetInterpreter("setuid", applied.append)
        )
        run = pipeline.process(b"GET /", 33)
        assert not run.attack_detected
        assert applied == [33]
        assert run.decoded_values == (33, 33)
        assert run.concrete_values[0] != run.concrete_values[1]

    def test_injected_value_detected_and_blocked(self):
        variation = UIDVariation()
        applied = []
        pipeline = DataDiversityPipeline(
            variation.reexpressions(), vulnerable_app_interpreter(), TargetInterpreter("setuid", applied.append)
        )
        run = pipeline.process(b"EXPLOIT: 0", 33)
        assert run.attack_detected
        assert applied == []
        assert run.alarm.alarm_type is AlarmType.UID_DIVERGENCE

    def test_single_variant_pipeline_rejected(self):
        variation = UIDVariation()
        with pytest.raises(ValueError):
            DataDiversityPipeline([variation.reexpression(0)], faithful_app_interpreter(), TargetInterpreter("t", lambda v: v))

    def test_malformed_exploit_payload_falls_back_to_trusted_value(self):
        variation = UIDVariation()
        pipeline = DataDiversityPipeline(
            variation.reexpressions(), vulnerable_app_interpreter(), TargetInterpreter("t", lambda v: v)
        )
        run = pipeline.process(b"EXPLOIT: not-a-number", 33)
        assert not run.attack_detected
