"""Tests for the keyed partition schemes and their variation/spec plumbing.

The keyed schemes' *structural* invariants (round-trip, disjoint inverses,
placement) are already pinned by the generic sweep in
``test_partition_schemes.py`` -- every kind in ``SCHEMES`` rides it.  What
this module pins is what makes them *keyed*:

* determinism -- the same ``(key_bits, seed)`` draws the same secret layout,
  different seeds draw different ones, and seedless construction still obeys
  every invariant;
* rotation -- ``rotate()`` redraws the secret in place (and the variation
  hooks refresh whatever they cached), including through
  ``NVariantSession.restart(rotate_keys=True)``;
* plumbing -- registry entries, spec helpers, and
  :func:`~repro.api.seeding.seeded_spec`'s derived-seed injection, so a
  seeded campaign is reproducible across backends.
"""

import random

import pytest

from repro.api.builders import build_session, build_variations
from repro.api.registry import registry
from repro.api.seeding import derive_seed, seeded_spec
from repro.api.spec import SystemSpec, keyed_address_spec, keyed_uid_spec
from repro.core.variations.address import KeyedAddressPartitioning
from repro.core.variations.uid import KeyedUIDVariation
from repro.engine.session import SessionState
from repro.kernel.host import build_standard_host
from repro.memory.partition import (
    KeyedAddressScheme,
    KeyedOrbitScheme,
    KeyedScheme,
    KeyedXorMaskScheme,
    PartitionSchemeError,
    SCHEMES,
    create_scheme,
)

KEYED_KINDS = ("keyed-orbit", "keyed-address", "keyed-uid-xor")


class TestKeyedSchemeConstruction:
    def test_keyed_kinds_are_registered(self):
        for kind in KEYED_KINDS:
            assert kind in SCHEMES
            scheme = create_scheme(kind, 3)
            assert isinstance(scheme, KeyedScheme)
            assert scheme.keyed

    def test_public_schemes_are_not_keyed(self):
        for kind in ("high-bit", "orbit", "extended-orbit", "uid-xor"):
            scheme = create_scheme(kind, 2 if kind == "high-bit" else 3)
            assert not getattr(scheme, "keyed", False)

    @pytest.mark.parametrize("kind", KEYED_KINDS)
    def test_same_seed_same_secret(self, kind):
        a = create_scheme(kind, 4, seed=99)
        b = create_scheme(kind, 4, seed=99)
        assert a.secret() == b.secret()

    @pytest.mark.parametrize("kind", KEYED_KINDS)
    def test_different_seeds_differ(self, kind):
        secrets = {create_scheme(kind, 4, seed=s).secret() for s in range(8)}
        assert len(secrets) > 1

    def test_injected_rng_wins_over_seed(self):
        via_rng = KeyedOrbitScheme(3, key_bits=8, rng=random.Random(5))
        via_seed = KeyedOrbitScheme(3, key_bits=8, seed=5)
        assert via_rng.secret() == via_seed.secret()

    def test_key_bits_bounds_enforced(self):
        with pytest.raises(PartitionSchemeError):
            KeyedOrbitScheme(3, key_bits=0)
        with pytest.raises(PartitionSchemeError):
            KeyedOrbitScheme(3, key_bits=17)
        with pytest.raises(PartitionSchemeError):
            KeyedOrbitScheme(5, key_bits=2)  # 2**2 slices < 5 variants
        with pytest.raises(PartitionSchemeError):
            KeyedXorMaskScheme(2, key_bits=32)

    def test_slices_are_distinct_and_in_range(self):
        scheme = KeyedAddressScheme(6, key_bits=5, seed=1)
        assert len(set(scheme.slices)) == 6
        assert all(0 <= s < 32 for s in scheme.slices)
        assert all(0 <= o < (1 << (scheme.shift - 2)) + 1 for o in scheme.offsets)

    def test_uid_masks_are_pairwise_distinct(self):
        scheme = KeyedXorMaskScheme(5, key_bits=8, seed=3)
        # Unlike the public orbit, variant 0's mask is secret (not identity).
        assert len(set(scheme.masks)) == 5
        assert all(0 <= mask < (1 << 8) for mask in scheme.masks)


class TestRotation:
    @pytest.mark.parametrize("kind", KEYED_KINDS)
    def test_rotate_redraws_the_secret(self, kind):
        scheme = create_scheme(kind, 3, seed=7)
        before = scheme.secret()
        drawn = {before}
        for _ in range(6):
            scheme.rotate()
            drawn.add(scheme.secret())
        assert len(drawn) > 1

    def test_rotation_preserves_invariants(self):
        scheme = KeyedAddressScheme(4, key_bits=6, seed=11)
        for _ in range(4):
            scheme.rotate()
            for index in range(4):
                base = scheme.base_of(index)
                assert scheme.partition_of(base) == index
                address = scheme.translate(index, 0x40)
                assert scheme.untranslate(index, address) == 0x40
                assert scheme.partition_of(address) == index

    def test_uid_variation_rotate_refreshes_cached_masks(self):
        variation = KeyedUIDVariation(num_variants=3, seed=2)
        before = tuple(variation.masks)
        decoded_before = variation.reexpression(1).inverse(variation.masks[1] ^ 1000)
        for _ in range(6):
            variation.rotate_key()
            if tuple(variation.masks) != before:
                break
        else:
            pytest.fail("six rotations never changed the masks")
        assert variation.masks == variation.scheme.masks
        assert variation.mask == variation.masks[1]
        decoded_after = variation.reexpression(1).inverse(variation.masks[1] ^ 1000)
        assert decoded_before == decoded_after == 1000

    def test_address_variation_rotate_delegates_to_scheme(self):
        variation = KeyedAddressPartitioning(num_variants=2, key_bits=6, seed=4)
        secrets = {variation.scheme.secret()}
        for _ in range(6):
            variation.rotate_key()
            secrets.add(variation.scheme.secret())
        assert len(secrets) > 1


class TestSessionRestart:
    def _session(self, spec):
        def factory(context):
            def program():
                result = yield from context.libc.getuid()
                return result.value

            return program()

        return build_session(spec, build_standard_host(), factory, name="restart-test")

    def test_restart_rotates_keys_and_resets_state(self):
        spec = keyed_address_spec(2, key_bits=8, seed=1)
        session = self._session(spec)
        variation = next(iter(session.variations))
        before = variation.scheme.secret()
        session.run()
        assert session.state is SessionState.COMPLETED
        secrets = {before}
        for _ in range(6):
            session.restart(rotate_keys=True)
            assert session.state is SessionState.RUNNING
            assert session.rounds == 0
            secrets.add(variation.scheme.secret())
            session.run()
            assert session.state is SessionState.COMPLETED
        assert len(secrets) > 1

    def test_restart_without_rotation_keeps_the_key(self):
        spec = keyed_address_spec(2, key_bits=8, seed=1)
        session = self._session(spec)
        secret = next(iter(session.variations)).scheme.secret()
        session.run()
        session.restart(rotate_keys=False)
        assert next(iter(session.variations)).scheme.secret() == secret

    def test_restarted_session_still_computes(self):
        spec = keyed_uid_spec(2, seed=9)
        session = self._session(spec)
        session.run()
        variation = next(iter(session.variations))
        raw = session.result().variants[0].return_value
        first = variation.decode(0, raw)
        session.restart()
        session.run()
        assert session.state is SessionState.COMPLETED
        # The raw re-expressed value changes with the rotated key, but it
        # still decodes to the same semantic UID.
        rotated_raw = session.result().variants[0].return_value
        assert variation.decode(0, rotated_raw) == first


class TestSpecPlumbing:
    def test_keyed_variations_are_registered(self):
        assert "uid-keyed" in registry
        assert "address-keyed" in registry
        assert "seed" in registry.get("uid-keyed").parameters()
        assert "seed" in registry.get("address-keyed").parameters()

    def test_keyed_specs_round_trip(self):
        for spec in (
            keyed_address_spec(3, key_bits=7, seed=5),
            keyed_address_spec(2, slide=False),
            keyed_uid_spec(4, key_bits=12, seed=8),
        ):
            assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_keyed_specs_build(self):
        uid = build_variations(keyed_uid_spec(3, seed=1))[0]
        assert isinstance(uid, KeyedUIDVariation)
        assert uid.num_variants == 3
        address = build_variations(keyed_address_spec(3, seed=1, slide=False))[0]
        assert isinstance(address, KeyedAddressPartitioning)
        assert isinstance(address.scheme, KeyedOrbitScheme)
        sliding = build_variations(keyed_address_spec(3, seed=1, slide=True))[0]
        assert isinstance(sliding.scheme, KeyedAddressScheme)

    def test_derive_seed_is_stable_and_spread(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert 0 <= derive_seed(123, "x") < (1 << 63)

    def test_seeded_spec_injects_derived_seeds(self):
        spec = keyed_address_spec(2, key_bits=6)
        seeded = seeded_spec(spec, 42)
        params = seeded.variations[0].params_dict()
        assert params["seed"] == derive_seed(42, spec.name, 0, "address-keyed")
        # Same root seed, same derived seed; explicit seeds are left alone.
        assert seeded_spec(spec, 42) == seeded
        pinned = keyed_address_spec(2, key_bits=6, seed=7)
        assert seeded_spec(pinned, 42) == pinned

    def test_seeded_spec_skips_unseeded_variations(self):
        from repro.api.spec import address_orbit_spec

        spec = address_orbit_spec(3)
        assert seeded_spec(spec, 42) is spec

    def test_seeded_build_reproduces_the_layout(self):
        spec = seeded_spec(keyed_address_spec(2, key_bits=8), 42)
        first = build_variations(spec)[0].scheme.secret()
        second = build_variations(spec)[0].scheme.secret()
        assert first == second
