"""Checkpoint/restore/migration: continuation must be indistinguishable.

The load subsystem's strongest claim is that a checkpoint is *complete*: a
restored session is byte-for-byte the session it replaced -- same keyed
secrets, same responses to the queued conversations, same detection
verdicts for whatever attack bytes were waiting.  These tests pin the
serialization format (JSON round trip, version/key validation), the secret
hand-off (restore installs the recorded secrets before variant spawn), the
engine-level ``migrate`` hand-off through admission-controlled intake, and
-- as hypothesis properties -- that neither checkpoint/restore nor a
non-shedding admission policy ever changes a workload's observable outcome.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import keyed_uid_spec, uid_orbit_spec
from repro.attacks.payloads import benign_request, uid_overwrite_payload
from repro.engine import MultiSessionEngine, SessionState
from repro.load import (
    BoundedQueuePolicy,
    LoadError,
    SessionCheckpoint,
    build_serving_session,
    checkpoint,
    keyed_secrets,
    migrate,
    restore,
    run_loadtest,
)

HTTP_PORT = 80


def _serving_session(spec, payloads, *, name="origin"):
    """A fresh serving session with *payloads* queued on its listener."""
    session = build_serving_session(spec, "httpd", name=name, max_requests=len(payloads))
    for index, payload in enumerate(payloads):
        session.kernel.client_connect(HTTP_PORT, payload, client=f"c{index}")
    return session


def _drain(session):
    """Run a session to its terminal state; return its observable outcome."""
    while not session.done:
        session.step()
    result = session.result()
    responses = [
        (conn.client, conn.response_bytes())
        for conn in session.kernel.network.connections
    ]
    alarm_signature = [(a.alarm_type, a.syscall) for a in result.alarms]
    return {
        "state": session.state,
        "alarms": alarm_signature,
        "responses": sorted(responses),
    }


class TestCheckpointFormat:
    def test_round_trips_through_json(self):
        session = _serving_session(
            keyed_uid_spec(2, key_bits=8), [benign_request(), benign_request("/news.html")]
        )
        cp = checkpoint(session)
        wire = json.dumps(cp.to_dict(), sort_keys=True)
        revived = SessionCheckpoint.from_dict(json.loads(wire))
        assert revived == cp
        assert revived.secrets == keyed_secrets(session)
        assert [p.data for p in revived.pending] == [
            benign_request(),
            benign_request("/news.html"),
        ]

    def test_unknown_keys_rejected(self):
        session = _serving_session(uid_orbit_spec(2), [benign_request()])
        data = checkpoint(session).to_dict()
        data["paused_registers"] = []
        with pytest.raises(LoadError, match="unknown checkpoint keys"):
            SessionCheckpoint.from_dict(data)

    def test_future_version_rejected(self):
        session = _serving_session(uid_orbit_spec(2), [benign_request()])
        data = checkpoint(session).to_dict()
        data["version"] = 2
        with pytest.raises(LoadError, match="unsupported checkpoint version"):
            SessionCheckpoint.from_dict(data)

    def test_unstamped_session_cannot_checkpoint(self):
        from repro.apps.httpd.server import make_httpd_factory
        from repro.core.variations.uid import UIDVariation
        from repro.engine import NVariantSession
        from repro.kernel.host import build_standard_host

        bare = NVariantSession(
            build_standard_host(), make_httpd_factory(transformed=True), [UIDVariation()]
        )
        with pytest.raises(LoadError, match="no construction recipe"):
            checkpoint(bare)

    def test_mid_burst_checkpoint_refused(self):
        session = _serving_session(uid_orbit_spec(2), [benign_request()])
        session.step()
        assert session.state is SessionState.RUNNING
        with pytest.raises(LoadError, match="mid-burst"):
            checkpoint(session)

    def test_secret_position_out_of_range_rejected(self):
        session = _serving_session(keyed_uid_spec(2, key_bits=8), [benign_request()])
        cp = checkpoint(session)
        corrupt = SessionCheckpoint.from_dict(
            {**cp.to_dict(), "secrets": [{"position": 5, "values": [1, 2]}]}
        )
        with pytest.raises(LoadError, match="position 5"):
            restore(corrupt)

    def test_corrupt_secret_values_rejected(self):
        session = _serving_session(keyed_uid_spec(2, key_bits=8), [benign_request()])
        cp = checkpoint(session)
        corrupt = SessionCheckpoint.from_dict(
            {**cp.to_dict(), "secrets": [{"position": 0, "values": [3]}]}
        )
        with pytest.raises(Exception, match="secret|values|expects"):
            restore(corrupt)


class TestRestoreFidelity:
    def test_restored_session_preserves_keyed_secrets(self):
        session = _serving_session(keyed_uid_spec(2, key_bits=8), [benign_request()])
        restored = restore(checkpoint(session), name="moved")
        assert keyed_secrets(restored) == keyed_secrets(session)
        assert restored.name == "moved"
        assert restored.spec == session.spec
        assert restored.serving == session.serving

    def test_restored_session_serves_identical_outcome(self):
        payloads = [benign_request(), benign_request("/news.html")]
        session = _serving_session(keyed_uid_spec(2, key_bits=6), payloads)
        cp = checkpoint(session)
        original = _drain(session)
        moved = _drain(restore(cp))
        assert moved == original
        assert original["state"] is SessionState.COMPLETED
        assert original["alarms"] == []

    def test_restored_session_reaches_same_detection_verdict(self):
        payloads = [benign_request(), uid_overwrite_payload(0)]
        session = _serving_session(keyed_uid_spec(2, key_bits=8), payloads)
        cp = checkpoint(session)
        original = _drain(session)
        moved = _drain(restore(cp))
        assert original["state"] is SessionState.HALTED
        assert moved["state"] is SessionState.HALTED
        assert moved["alarms"] == original["alarms"]


class TestEngineMigration:
    def test_migrate_hands_session_to_target_engine(self):
        session = _serving_session(keyed_uid_spec(2, key_bits=8), [benign_request()])
        secrets = keyed_secrets(session)
        target = MultiSessionEngine([], name="target")
        restored = migrate(session, target, name="moved")
        assert [s.name for s in target.sessions] == ["moved"]
        assert keyed_secrets(restored) == secrets
        target.run()
        assert restored.state is SessionState.COMPLETED
        assert restored.monitor.alarms == []

    def test_migrate_into_full_engine_is_loud(self):
        policy = BoundedQueuePolicy(capacity=1, drop="newest")
        target = MultiSessionEngine([], name="full", intake=policy)
        assert target.offer(_serving_session(uid_orbit_spec(2), [benign_request()], name="tenant"))
        session = _serving_session(uid_orbit_spec(2), [benign_request()], name="migrant")
        with pytest.raises(LoadError, match="shed migrated session"):
            migrate(session, target)


PATHS = ("/index.html", "/news.html", "/docs/faq.html", "/products.html")


class TestContinuationProperties:
    @given(
        path_picks=st.lists(st.sampled_from(PATHS), min_size=1, max_size=4),
        key_bits=st.integers(4, 8),
        attack=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_restore_never_changes_the_outcome(self, path_picks, key_bits, attack):
        payloads = [benign_request(path) for path in path_picks]
        if attack:
            payloads.append(uid_overwrite_payload(0))
        session = _serving_session(keyed_uid_spec(2, key_bits=key_bits), payloads)
        cp = checkpoint(session)
        assert _drain(restore(cp)) == _drain(session)

    @given(
        seed=st.integers(0, 2**31),
        capacity=st.integers(24, 64),
        attack=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_non_shedding_admission_never_changes_detection(self, seed, capacity, attack):
        # With capacity comfortably above the workload, bounded-queue
        # admission must be observationally identical to accept-all.
        attacks = ("uid-overwrite",) if attack else ()
        kwargs = dict(requests=6, rate=15.0, seed=seed, attacks=attacks)
        spec = uid_orbit_spec(2)
        control = run_loadtest(spec, **kwargs)
        bounded = run_loadtest(
            spec,
            admission="bounded-queue",
            admission_params={"capacity": capacity, "drop": "oldest"},
            **kwargs,
        )
        assert bounded.shed == 0
        assert bounded.response_digest == control.response_digest
        assert bounded.attack_outcomes == control.attack_outcomes
        assert bounded.alarms == control.alarms
        assert bounded.completed == control.completed


class TestBackendParity:
    def test_process_backend_reproduces_virtual_cell(self):
        from repro.engine.procpool import ProcessJob, run_process_jobs
        from repro.load import LOADTEST_RUNNER, run_loadtest_payload

        payload = {
            "spec": uid_orbit_spec(2).to_dict(),
            "arrival": "bursty",
            "rate": 30.0,
            "requests": 8,
            "admission": "token-bucket",
            "admission_params": {"rate": 25.0, "burst": 2.0},
            "seed": 424242,
        }
        local = run_loadtest_payload(payload)["value"]
        campaign = run_process_jobs(
            [ProcessJob(name="cell", runner=LOADTEST_RUNNER, payload=payload)], workers=2
        )
        assert campaign.jobs[0].value == local
