"""The detection matrix as a regression suite.

Every attack in :mod:`repro.attacks` is run against all four variation
configurations -- no diversity, address partitioning, UID re-expression, and
both combined -- and each cell's outcome is pinned to the value the paper's
security argument requires.  A scaling or engine refactor that silently
weakens detection (or introduces false alarms that mask a compromise as
"detected") fails here, cell by cell.

Cell semantics (:class:`repro.attacks.outcomes.OutcomeKind`):

* ``UNDETECTED_COMPROMISE`` -- the attack reached its goal, no alarm: the
  configuration is defeated (expected for the undefended server and for the
  documented blind spots).
* ``DETECTED`` -- the monitor raised an alarm and the halt policy stopped the
  attack.
* ``NO_EFFECT`` / ``CRASHED`` -- the attack failed on its own (e.g. the
  low-bit flip produces a harmless non-root UID, an out-of-partition pointer
  kills the single process).
"""

import pytest

from repro.api.spec import (
    ADDRESS_ORBIT_3_SPEC,
    ADDRESS_UID_SPEC,
    COMBINED_ORBIT_3_SPEC,
    STANDARD_SYSTEM_SPECS,
    UID_DIVERSITY_SPEC,
)
from repro.attacks.code_injection import (
    run_code_injection_tagged,
    run_code_injection_untagged,
)
from repro.attacks.memory_attacks import (
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import OutcomeKind
from repro.attacks.uid_attacks import run_uid_attack, standard_uid_attacks
from repro.core.alarm import AlarmType

#: The four variation configurations of the matrix, by configuration name.
CONFIGURATIONS = tuple(spec.name for spec in STANDARD_SYSTEM_SPECS)

UC = OutcomeKind.UNDETECTED_COMPROMISE
DET = OutcomeKind.DETECTED
NE = OutcomeKind.NO_EFFECT
CRASH = OutcomeKind.CRASHED

#: Expected outcome of every UID attack against every configuration, in
#: CONFIGURATIONS order (none, address, uid, address+uid).  Address
#: partitioning never sees a UID corruption (the identical overwrite decodes
#: identically without re-expression); the UID variation detects every
#: byte-granular overwrite and, as Section 3.2 documents, misses exactly the
#: sign-bit flip the 31-bit mask cannot re-express.
UID_MATRIX = {
    "full-word-root-overwrite": (UC, UC, DET, DET),
    "full-word-user-overwrite": (UC, UC, DET, DET),
    "partial-1-byte-overwrite": (UC, UC, DET, DET),
    "partial-2-byte-overwrite": (UC, UC, DET, DET),
    "partial-3-byte-overwrite": (UC, UC, DET, DET),
    # An identical low-bit XOR delta commutes with the XOR re-expression, so
    # no configuration sees it -- but it also only reaches a harmless UID.
    "low-bit-flip": (NE, NE, NE, NE),
    # The documented blind spot: bit 31 is the one bit XOR 0x7FFFFFFF keeps.
    "high-bit-flip": (UC, UC, UC, UC),
}

#: Expected outcome of every address-injection attack per configuration.
#: The pointer overwrite must plough through the three UID words to reach the
#: banner pointer, so the UID variation also detects it (at the corrupted
#: credential's first use) even though pointers are not its target type.
ADDRESS_MATRIX = {
    "absolute-address-injection": (UC, DET, DET, DET),
    "high-partition-address-injection": (CRASH, DET, DET, DET),
}


def _uid_attacks_by_name():
    return {attack.name: attack for attack in standard_uid_attacks()}


def _address_attacks_by_name():
    return {attack.name: attack for attack in standard_address_attacks()}


def _address_campaign_cell(attack, configuration: str):
    """Run one address attack against one named configuration."""
    spec = next(s for s in STANDARD_SYSTEM_SPECS if s.name == configuration)
    if not spec.redundant:
        return run_address_attack_single(attack, configuration=spec.name)
    # UID-bearing specs carry transformed=True, which is load-bearing: the
    # untransformed build diverges on benign traffic when UID representations
    # differ.
    return run_address_attack_nvariant(attack, spec)


class TestUIDAttackMatrix:
    @pytest.mark.parametrize("configuration_index", range(len(CONFIGURATIONS)))
    @pytest.mark.parametrize("attack_name", sorted(UID_MATRIX))
    def test_cell_outcome(self, attack_name, configuration_index):
        attack = _uid_attacks_by_name()[attack_name]
        spec = STANDARD_SYSTEM_SPECS[configuration_index]
        outcome = run_uid_attack(attack, spec)
        expected = UID_MATRIX[attack_name][configuration_index]
        assert outcome.kind is expected, outcome.describe()

    def test_matrix_covers_every_standard_uid_attack(self):
        assert set(UID_MATRIX) == set(_uid_attacks_by_name())

    def test_remote_detection_is_uid_divergence(self):
        """The guaranteed detections classify as UID divergence, not noise."""
        attack = _uid_attacks_by_name()["full-word-root-overwrite"]
        outcome = run_uid_attack(attack, UID_DIVERSITY_SPEC)
        assert outcome.kind is DET
        assert AlarmType.UID_DIVERGENCE.value in outcome.detail

    def test_shadow_never_leaks_from_protected_configuration(self):
        """Detected means stopped: no protected run may still reach the goal."""
        for attack in standard_uid_attacks():
            outcome = run_uid_attack(attack, ADDRESS_UID_SPEC)
            if outcome.kind is DET:
                assert not outcome.goal_reached, outcome.describe()


class TestAddressAttackMatrix:
    @pytest.mark.parametrize("configuration_index", range(len(CONFIGURATIONS)))
    @pytest.mark.parametrize("attack_name", sorted(ADDRESS_MATRIX))
    def test_cell_outcome(self, attack_name, configuration_index):
        attack = _address_attacks_by_name()[attack_name]
        configuration = CONFIGURATIONS[configuration_index]
        outcome = _address_campaign_cell(attack, configuration)
        expected = ADDRESS_MATRIX[attack_name][configuration_index]
        assert outcome.kind is expected, outcome.describe()

    def test_matrix_covers_every_standard_address_attack(self):
        assert set(ADDRESS_MATRIX) == set(_address_attacks_by_name())


class TestOrbitMatrixExtension:
    """The N=3 orbit columns: the same guarantees (and the same documented
    blind spots) must hold when either re-expression family is N-ary."""

    @pytest.mark.parametrize("attack_name", sorted(ADDRESS_MATRIX))
    def test_address_orbit_detects_every_injection(self, attack_name):
        attack = _address_attacks_by_name()[attack_name]
        for spec in (ADDRESS_ORBIT_3_SPEC, COMBINED_ORBIT_3_SPEC):
            outcome = run_address_attack_nvariant(attack, spec)
            assert outcome.kind is DET, outcome.describe()

    @pytest.mark.parametrize("attack_name", sorted(UID_MATRIX))
    def test_combined_orbit_matches_the_2variant_uid_column(self, attack_name):
        """Layering the address orbit cannot weaken (or spuriously widen)
        the UID guarantee: the combined N=3 column equals the paper's
        2-variant address+uid column cell for cell."""
        attack = _uid_attacks_by_name()[attack_name]
        outcome = run_uid_attack(attack, COMBINED_ORBIT_3_SPEC)
        expected = UID_MATRIX[attack_name][CONFIGURATIONS.index("2-variant-address+uid")]
        assert outcome.kind is expected, outcome.describe()


class TestCodeInjectionMatrix:
    def test_untagged_baseline_is_compromised(self):
        outcome = run_code_injection_untagged()
        assert outcome.kind is UC and outcome.goal_reached

    def test_tagging_detects_injection(self):
        outcome = run_code_injection_tagged()
        assert outcome.kind is DET and not outcome.goal_reached


class TestMatrixShape:
    def test_all_four_configurations_are_exercised(self):
        assert CONFIGURATIONS == (
            "single-process",
            "2-variant-address",
            "2-variant-uid",
            "2-variant-address+uid",
        )

    def test_no_configuration_weakens_the_paper_guarantee(self):
        """Every in-guarantee remote UID attack is detected by both
        UID-bearing configurations and by neither UID-less one."""
        for name, row in UID_MATRIX.items():
            attack = _uid_attacks_by_name()[name]
            if not attack.remote:
                continue
            none_cfg, address_cfg, uid_cfg, both_cfg = row
            assert uid_cfg is DET and both_cfg is DET
            assert none_cfg is UC and address_cfg is UC
