"""Tests for the brute-force attacker subsystem and its CLI plumbing.

Covers the probe primitive's detection semantics (partial hit alarms,
unanimous miss stays silent, unanimous success is impossible for N >= 2),
the attacker strategies' planning, trial reproducibility across both
campaign backends, and the CLI satellites this PR adds: ``--seed`` on
``run``/``experiment``, ``experiments --json``, and worker-side failures
surfacing as clean non-zero exits instead of master-side tracebacks.
"""

import json
import random

import pytest

from repro.api.cli import main as cli_main
from repro.api.seeding import derive_seed
from repro.engine.session import SessionState
from repro.memory.partition import KeyedOrbitScheme, VALUE_BITS
from repro.security import (
    ExhaustiveSweepAttacker,
    PartialKnowledgeAttacker,
    ProbeOutcome,
    RandomProbingAttacker,
    SECRET_NOMINAL_BASE,
    expected_exhaustive_probes,
    plan_trial,
    prepare_probe_cell,
    run_probe_batch,
    run_probe_payload,
    run_probe_trials,
)
from repro.security.attacker import BruteForceAttacker


class TestStrategyPlanning:
    def test_exhaustive_sweep_covers_the_space_in_order(self):
        plan = ExhaustiveSweepAttacker().plan(
            key_bits=4, num_variants=2, rng=random.Random(0)
        )
        assert len(plan) == 16
        assert plan == sorted(plan)
        shift = VALUE_BITS - 4
        assert plan[0] == SECRET_NOMINAL_BASE
        assert plan[1] == (1 << shift) + SECRET_NOMINAL_BASE

    def test_random_probing_is_rng_driven(self):
        a = RandomProbingAttacker().plan(key_bits=5, num_variants=2, rng=random.Random(1))
        b = RandomProbingAttacker().plan(key_bits=5, num_variants=2, rng=random.Random(1))
        c = RandomProbingAttacker().plan(key_bits=5, num_variants=2, rng=random.Random(2))
        assert a == b
        assert a != c
        assert len(a) == 2 * 32  # default budget: twice the space

    def test_partial_knowledge_needs_the_secret(self):
        with pytest.raises(ValueError, match="secret"):
            PartialKnowledgeAttacker().plan(
                key_bits=5, num_variants=2, rng=random.Random(0)
            )

    def test_partial_knowledge_shrinks_the_space(self):
        secret = (12, 5)  # slices only (no slide offsets)
        plan = PartialKnowledgeAttacker(known_bits=2).plan(
            key_bits=5, num_variants=2, rng=random.Random(0), secret=secret
        )
        shift = VALUE_BITS - 5
        probed_slices = {(address - SECRET_NOMINAL_BASE) >> shift for address in plan}
        # Only slices matching a leaked low-2-bit pattern survive the prior.
        assert probed_slices == {s for s in range(32) if s & 3 in {12 & 3, 5 & 3}}
        assert len(plan) < 32
        assert all(s in probed_slices for s in secret)

    def test_strategies_satisfy_the_protocol(self):
        for strategy in (
            ExhaustiveSweepAttacker(),
            RandomProbingAttacker(),
            PartialKnowledgeAttacker(),
        ):
            assert isinstance(strategy, BruteForceAttacker)

    def test_expected_exhaustive_probes_analytics(self):
        # With every slice occupied the first probe always alarms.
        assert expected_exhaustive_probes(1, 2) == 1.0
        # E[min of N-subset of {0..M-1}] = (M - N) / (N + 1), plus one probe.
        assert expected_exhaustive_probes(4, 2) == pytest.approx(14 / 3 + 1)
        assert expected_exhaustive_probes(6, 3) == pytest.approx(61 / 4 + 1)


class TestProbeMechanics:
    def test_exhaustive_sweep_alarms_at_the_lowest_occupied_slice(self):
        plan = plan_trial(ExhaustiveSweepAttacker(), num_variants=2, key_bits=4, seed=77)
        key_seed = derive_seed(77, "key", "exhaustive-sweep", 2, 4, False)
        slices = KeyedOrbitScheme(2, key_bits=4, seed=key_seed).slices
        cell = prepare_probe_cell(
            plan.spec, plan.addresses, strategy=plan.strategy, key_bits=plan.key_bits
        )
        session = cell.start()
        session.run()
        outcome = ProbeOutcome.from_dict(cell.finish(session))
        assert session.state is SessionState.HALTED
        assert outcome.alarmed
        assert outcome.probes_to_first_alarm == min(slices) + 1
        assert outcome.probes_to_success is None
        assert "divergence" in outcome.detail

    def test_unanimous_misses_stay_silent(self):
        plan = plan_trial(ExhaustiveSweepAttacker(), num_variants=2, key_bits=4, seed=77)
        key_seed = derive_seed(77, "key", "exhaustive-sweep", 2, 4, False)
        slices = KeyedOrbitScheme(2, key_bits=4, seed=key_seed).slices
        # Probe only slices nobody occupies: every variant misses every time.
        misses = [
            address
            for index, address in enumerate(plan.addresses)
            if index not in slices
        ][:5]
        cell = prepare_probe_cell(plan.spec, misses, strategy="silent")
        session = cell.start()
        session.run()
        outcome = ProbeOutcome.from_dict(cell.finish(session))
        assert session.state is SessionState.COMPLETED
        assert not outcome.alarmed
        assert outcome.probes_to_success is None
        # Two rounds per probe (peek + cond_chk) plus the retire round.
        assert session.rounds == 2 * len(misses) + 1

    def test_probe_payload_round_trips_the_process_contract(self):
        plan = plan_trial(ExhaustiveSweepAttacker(), num_variants=2, key_bits=3, seed=5)
        result = run_probe_payload(plan.payload())
        assert sorted(result) == ["rounds", "state", "value", "virtual_elapsed"]
        outcome = ProbeOutcome.from_dict(result["value"])
        assert outcome.alarmed
        assert outcome.key_bits == 3


class TestTrials:
    def test_trials_are_reproducible(self):
        a = run_probe_trials(ExhaustiveSweepAttacker(), num_variants=2, key_bits=4,
                             trials=3, seed=11)
        b = run_probe_trials(ExhaustiveSweepAttacker(), num_variants=2, key_bits=4,
                             trials=3, seed=11)
        assert a.outcomes == b.outcomes
        assert a.alarm_rate == 1.0
        assert a.successes == 0

    def test_different_seeds_draw_different_games(self):
        a = run_probe_trials(ExhaustiveSweepAttacker(), num_variants=2, key_bits=6,
                             trials=4, seed=1)
        b = run_probe_trials(ExhaustiveSweepAttacker(), num_variants=2, key_bits=6,
                             trials=4, seed=2)
        assert a.outcomes != b.outcomes

    def test_backends_agree_byte_for_byte(self):
        plans = [
            plan_trial(
                ExhaustiveSweepAttacker(),
                num_variants=3,
                key_bits=4,
                seed=derive_seed(123, "trial", t),
            )
            for t in range(3)
        ]
        virtual = run_probe_batch(plans, backend="virtual", workers=2)
        process = run_probe_batch(plans, backend="process", workers=2)
        assert [o.to_dict() for o in virtual] == [o.to_dict() for o in process]

    def test_partial_knowledge_beats_the_blind_sweep(self):
        kwargs = dict(num_variants=2, key_bits=6, trials=6, seed=99)
        sweep = run_probe_trials(ExhaustiveSweepAttacker(), **kwargs)
        leak = run_probe_trials(PartialKnowledgeAttacker(known_bits=2), **kwargs)
        assert leak.mean_probes_to_first_alarm < sweep.mean_probes_to_first_alarm

    def test_sliding_scheme_also_plays(self):
        trace = run_probe_trials(
            PartialKnowledgeAttacker(known_bits=2),
            num_variants=2,
            key_bits=5,
            trials=3,
            seed=7,
            slide=True,
        )
        assert trace.trials == 3
        assert trace.successes == 0
        assert trace.alarm_rate == 1.0

    def test_bad_backend_is_an_error(self):
        with pytest.raises(ValueError, match="backend"):
            run_probe_batch([], backend="quantum")


class TestCLISatellites:
    def _write(self, tmp_path, data):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    KEYED_SCENARIO = {
        "scenario": "campaign",
        "systems": [
            {
                "name": "keyed-fleet",
                "num_variants": 2,
                "variations": [{"name": "address-keyed", "params": {"key_bits": 6}}],
                "transformed": False,
            }
        ],
        "attacks": ["absolute-address-injection"],
        "output": "json",
    }

    def test_seeded_run_is_identical_across_backends(self, tmp_path, capsys):
        path = self._write(tmp_path, self.KEYED_SCENARIO)
        assert cli_main(["run", str(path), "--seed", "42"]) == 0
        virtual = json.loads(capsys.readouterr().out)
        assert (
            cli_main(["run", str(path), "--seed", "42", "--backend", "process",
                      "--workers", "2"]) == 0
        )
        process = json.loads(capsys.readouterr().out)
        assert virtual["matrix"] == process["matrix"]
        assert virtual["detection_rates"] == process["detection_rates"]

    def test_seed_rejected_where_meaningless(self, tmp_path, capsys):
        path = self._write(tmp_path, {"scenario": "detection-matrix"})
        assert cli_main(["run", str(path), "--seed", "1"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_experiment_seed_flag_is_set_sugar(self, capsys):
        assert (
            cli_main(
                ["experiment", "entropy", "--smoke", "--seed", "31337", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["seed"] == 31337
        assert payload["ok"] is True

    def test_experiments_json_listing(self, capsys):
        assert cli_main(["experiments", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert names == sorted(names)
        entropy = next(entry for entry in payload if entry["name"] == "entropy")
        declared = {p["name"]: p for p in entropy["parameters"]}
        assert declared["seed"]["type"] == "int"
        assert declared["seed"]["default"] == 20080625
        assert entropy["smoke_params"]["trials"] == 20

    def test_worker_error_surfaces_traceback_and_fails(self, tmp_path, capsys):
        # key_bits=0 passes spec validation driver-side but the worker's
        # scheme construction raises; the CLI must exit non-zero with the
        # worker-side traceback, not hang or crash with a master-side one.
        path = self._write(
            tmp_path,
            {
                "scenario": "campaign",
                "systems": [
                    {
                        "name": "bad-keyed",
                        "num_variants": 2,
                        "variations": [
                            {"name": "address-keyed", "params": {"key_bits": 0}}
                        ],
                        "transformed": False,
                    }
                ],
                "attacks": ["absolute-address-injection"],
                "backend": "process",
                "workers": 1,
            },
        )
        assert cli_main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "failed on worker" in err
        assert "Traceback (most recent call last)" in err
        assert "key_bits" in err
