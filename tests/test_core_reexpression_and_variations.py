"""Tests for reexpression functions, their properties, and the Table 1 variations."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reexpression import (
    check_disjointness,
    check_inverse_property,
    check_partial_overwrite_resilience,
    identity_reexpression,
    offset_reexpression,
    sample_domain,
    xor_reexpression,
)
from repro.core.variations import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    FullFlipUIDVariation,
    InstructionSetTagging,
    UIDVariation,
    VariationStack,
)
from repro.core.properties import check_variation_reexpression
from repro.kernel.syscalls import Syscall, SyscallResult, request

uid_values = st.integers(min_value=0, max_value=0x7FFFFFFF)
word_values = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestReexpressionFunctions:
    def test_identity_round_trips(self):
        function = identity_reexpression()
        assert function(1234) == 1234
        assert function.invert(1234) == 1234

    @given(uid_values)
    def test_xor_inverse_property(self, value):
        function = xor_reexpression(0x7FFFFFFF)
        assert function.invert(function(value)) == value

    @given(word_values)
    def test_offset_inverse_property(self, value):
        function = offset_reexpression(0x80000000)
        assert function.invert(function(value)) == value

    @given(word_values)
    def test_xor_disjointness_against_identity(self, value):
        identity = identity_reexpression()
        xor = xor_reexpression(0x7FFFFFFF)
        assert identity.invert(value) != xor.invert(value)

    def test_check_inverse_property_reports_counterexample(self):
        broken = xor_reexpression(0x1)
        object.__setattr__(broken, "inverse", lambda value: value)  # deliberately wrong
        report = check_inverse_property(broken, [0, 1, 2])
        assert not report.holds
        assert report.counterexample is not None

    def test_check_disjointness_detects_identical_inverses(self):
        identity = identity_reexpression()
        report = check_disjointness([identity, identity_reexpression()], [5, 6])
        assert not report.holds

    def test_sample_domain_includes_boundaries(self):
        samples = sample_domain(bits=31, count=16)
        assert 0 in samples and 0x7FFFFFFF in samples
        assert all(0 <= value < (1 << 31) or value == (1 << 31) - 1 for value in samples)

    def test_partial_overwrite_resilience_holds_for_low_bytes(self):
        uid = UIDVariation()
        inverses = uid.reexpressions()
        originals = [uid.encode(i, 33) for i in range(2)]
        for byte_count in (1, 2, 3):
            assert check_partial_overwrite_resilience(
                inverses, originals, byte_count=byte_count, injected=0
            )

    def test_high_byte_only_overwrite_can_evade_31_bit_mask(self):
        # Overwriting only the top byte with value whose low 7 bits match the
        # original's is outside the strict guarantee; the paper restricts the
        # claim to attacks that inject complete values or low-order bytes.
        uid = UIDVariation()
        inverses = uid.reexpressions()
        # Construct the evading high-byte value analytically: decoded values
        # collide only when the injected top byte makes both decodes agree.
        original = 0x00000021
        originals = [uid.encode(i, original) for i in range(2)]
        low_mask = (1 << 24) - 1
        evades = False
        for top in range(256):
            post = [(value & low_mask) | (top << 24) for value in originals]
            decoded = [function.invert(value) for function, value in zip(inverses, post)]
            if decoded[0] == decoded[1]:
                evades = True
        assert not evades  # a full top-byte overwrite is still detected


class TestUIDVariation:
    def test_variant_root_values(self, uid_variation):
        assert uid_variation.variant_root(0) == 0
        assert uid_variation.variant_root(1) == 0x7FFFFFFF

    @given(uid_values)
    def test_encode_decode_roundtrip(self, uid):
        variation = UIDVariation()
        for index in range(2):
            assert variation.decode(index, variation.encode(index, uid)) == uid

    @given(uid_values)
    def test_disjointness_over_valid_uids(self, value):
        variation = UIDVariation()
        assert variation.decode(0, value) != variation.decode(1, value)

    def test_transform_request_decodes_setuid_argument(self, uid_variation):
        encoded = uid_variation.encode(1, 33)
        transformed = uid_variation.transform_request(1, request(Syscall.SETUID, encoded))
        assert transformed.args == (33,)

    def test_transform_request_decodes_cc_comparison(self, uid_variation):
        encoded_a = uid_variation.encode(1, 0)
        encoded_b = uid_variation.encode(1, 33)
        transformed = uid_variation.transform_request(1, request(Syscall.CC_LT, encoded_a, encoded_b))
        assert transformed.args == (0, 33)

    def test_transform_request_leaves_uid_value_encoded(self, uid_variation):
        encoded = uid_variation.encode(1, 33)
        transformed = uid_variation.transform_request(1, request(Syscall.UID_VALUE, encoded))
        assert transformed.args == (encoded,)

    def test_transform_request_preserves_sentinel(self, uid_variation):
        transformed = uid_variation.transform_request(1, request(Syscall.SETREUID, -1, uid_variation.encode(1, 5)))
        assert transformed.args == (-1, 5)

    def test_transform_result_encodes_getuid(self, uid_variation):
        result = uid_variation.transform_result(
            1, request(Syscall.GETEUID), SyscallResult.success(0)
        )
        assert result.value == 0x7FFFFFFF

    def test_transform_result_ignores_failures(self, uid_variation):
        failed = SyscallResult.failure(errno=1)
        assert uid_variation.transform_result(1, request(Syscall.GETEUID), failed) is failed

    def test_canonicalize_uid_value_decodes(self, uid_variation):
        canonical = uid_variation.canonicalize_request(
            1, request(Syscall.UID_VALUE, uid_variation.encode(1, 33))
        )
        assert canonical.args == (33,)

    def test_setup_unshared_files_creates_variant_copies(self, kernel, uid_variation):
        mapping = uid_variation.setup_unshared_files(kernel.fs)
        assert mapping["/etc/passwd"] == ["/etc/passwd-0", "/etc/passwd-1"]
        assert kernel.fs.exists("/etc/passwd-1")
        variant1 = kernel.fs.read_file("/etc/passwd-1").decode()
        assert "2147483647" in variant1  # root's representation in variant 1

    def test_requires_exactly_two_variants(self):
        with pytest.raises(ValueError):
            UIDVariation(num_variants=3)

    def test_table1_row_mentions_xor_mask(self, uid_variation):
        row = uid_variation.table1_row()
        assert "7FFFFFFF" in row["reexpression"]

    def test_full_flip_variant_root_is_the_kernel_sentinel(self):
        variation = FullFlipUIDVariation()
        assert variation.variant_root(1) == 0xFFFFFFFF


class TestAddressVariations:
    def test_partitioned_spaces_are_disjoint(self, address_partitioning):
        low = address_partitioning.make_address_space(0)
        high = address_partitioning.make_address_space(1)
        assert low.partition == 0 and high.partition == 1
        assert low.translate(0x4000) != high.translate(0x4000)

    def test_reexpression_matches_table1(self, address_partitioning):
        r1 = address_partitioning.reexpression(1)
        assert r1(0x1000) == 0x80001000

    def test_extended_partitioning_adds_offset(self):
        variation = ExtendedAddressPartitioning(offset=0x10000)
        assert variation.reexpression(1)(0x1000) == 0x80011000
        assert variation.make_address_space(1).partition_base() == 0x80010000

    def test_extended_offset_validation(self):
        with pytest.raises(ValueError):
            ExtendedAddressPartitioning(offset=0)

    def test_properties_hold_for_all_table1_variations(self):
        for variation in (AddressPartitioning(), ExtendedAddressPartitioning(), InstructionSetTagging(), UIDVariation()):
            samples = sample_domain(bits=31 if variation.target_type == "uid" else 32, count=256)
            reports = check_variation_reexpression(variation, samples)
            assert all(report.holds for report in reports), variation.name


class TestInstructionSetTaggingVariation:
    def test_tag_and_untag_program(self):
        from repro.isa.instructions import Opcode, assemble

        variation = InstructionSetTagging()
        program = assemble([(Opcode.NOP,), (Opcode.HALT,)])
        tagged = variation.tag_program(program, 1)
        assert variation.untag_program(tagged, 1) == program

    def test_untag_with_wrong_variant_faults(self):
        from repro.isa.instructions import Opcode, assemble
        from repro.kernel.errors import IllegalInstructionFault

        variation = InstructionSetTagging()
        program = assemble([(Opcode.HALT,)])
        tagged = variation.tag_program(program, 0)
        with pytest.raises(IllegalInstructionFault):
            variation.untag_program(tagged, 1)


class TestVariationStack:
    def test_address_space_comes_from_first_provider(self):
        stack = VariationStack([UIDVariation(), AddressPartitioning()])
        assert stack.make_address_space(1).partition == 1

    def test_default_address_space_unpartitioned(self):
        stack = VariationStack([UIDVariation()])
        assert stack.make_address_space(0).partition is None

    def test_variant_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VariationStack([UIDVariation()], num_variants=3)

    def test_transform_composition(self, kernel):
        stack = VariationStack([AddressPartitioning(), UIDVariation()])
        encoded = UIDVariation().encode(1, 33)
        transformed = stack.transform_request(1, request(Syscall.SETUID, encoded))
        assert transformed.args == (33,)

    def test_unshared_files_union(self, kernel):
        stack = VariationStack([AddressPartitioning(), UIDVariation()])
        mapping = stack.setup_unshared_files(kernel.fs)
        assert "/etc/passwd" in mapping and "/etc/group" in mapping
