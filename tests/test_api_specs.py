"""Tests for the declarative scenario API: specs, registry, builders, CLI.

Covers the three contracts the API layer adds on top of the engine:

* specs are frozen values that round-trip through dicts and JSON losslessly;
* the registry resolves names/aliases to fresh variation instances and turns
  unknown names or bad parameters into typed errors;
* the builders are behaviour-preserving -- a spec-built system produces the
  identical detection outcome as the hand-wired legacy construction path.
"""

import json

import pytest

from repro import (
    ADDRESS_PARTITIONING_SPEC,
    ADDRESS_UID_SPEC,
    FleetSpec,
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
    UID_DIVERSITY_SPEC,
    UnknownVariationError,
    VariationParameterError,
    VariationSpec,
    WorkloadSpec,
    build_engine,
    build_session,
    build_system,
    build_variations,
    registry,
    run_attack,
    run_campaign,
)
from repro.api.cli import ScenarioError, load_scenario, main as cli_main, run_scenario
from repro.core.variations.address import AddressPartitioning, ExtendedAddressPartitioning
from repro.core.variations.uid import UID_MASK_31, UIDVariation


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", STANDARD_SYSTEM_SPECS, ids=lambda s: s.name)
    def test_standard_system_specs_round_trip(self, spec):
        assert SystemSpec.from_dict(spec.to_dict()) == spec
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_parameterised_variation_round_trips(self):
        spec = SystemSpec(
            name="custom",
            variations=(
                VariationSpec.of("uid", mask=UID_MASK_31),
                VariationSpec.of("address-extended", offset=0x2000),
            ),
            transformed=True,
            halt_on_alarm=False,
            max_rounds=1234,
        )
        rebuilt = SystemSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.variations[0].params_dict() == {"mask": UID_MASK_31}
        # JSON text itself is stable data, not an object graph.
        assert json.loads(spec.to_json())["variations"][0]["params"]["mask"] == UID_MASK_31

    def test_variation_spec_accepts_bare_names_and_dicts(self):
        spec = SystemSpec(variations=("uid", {"name": "address"}))
        assert [v.name for v in spec.variations] == ["uid", "address"]
        assert all(isinstance(v, VariationSpec) for v in spec.variations)

    def test_fleet_spec_round_trips_with_nested_specs(self):
        fleet = FleetSpec(
            name="fleet-8",
            system=ADDRESS_UID_SPEC,
            num_sessions=8,
            halt_policy="halt-all",
            workload=WorkloadSpec(total_requests=64, requests_per_connection=4),
            multiplex=4,
        )
        rebuilt = FleetSpec.from_json(fleet.to_json())
        assert rebuilt == fleet
        assert rebuilt.system == ADDRESS_UID_SPEC
        assert rebuilt.workload.requests_per_connection == 4

    def test_fleet_spec_coerces_nested_dicts(self):
        fleet = FleetSpec(
            system={"name": "s", "variations": ["uid"]},
            workload={"total_requests": 8},
        )
        assert isinstance(fleet.system, SystemSpec)
        assert isinstance(fleet.workload, WorkloadSpec)

    def test_specs_are_frozen_and_hashable(self):
        assert len({UID_DIVERSITY_SPEC, UID_DIVERSITY_SPEC, SINGLE_PROCESS_SPEC}) == 2
        with pytest.raises(Exception):
            UID_DIVERSITY_SPEC.name = "other"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown system spec keys"):
            SystemSpec.from_dict({"name": "x", "variants": 2})
        with pytest.raises(ValueError, match="unknown fleet spec keys"):
            FleetSpec.from_dict({"sessions": 4})
        with pytest.raises(ValueError, match="unknown workload spec keys"):
            WorkloadSpec.from_dict({"requests": 4})

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SystemSpec(num_variants=0)
        with pytest.raises(ValueError):
            FleetSpec(halt_policy="sometimes")
        with pytest.raises(ValueError):
            WorkloadSpec(total_requests=0)
        with pytest.raises(TypeError):
            VariationSpec("uid", params={"mask": [1, 2]})  # non-scalar parameter


class TestRegistry:
    def test_unknown_variation_name(self):
        with pytest.raises(UnknownVariationError) as excinfo:
            registry.create("no-such-variation")
        assert "uid" in str(excinfo.value)  # error lists the known names

    def test_bad_parameters_are_typed_errors(self):
        with pytest.raises(VariationParameterError):
            registry.create("uid", {"no_such_param": 1})
        with pytest.raises(VariationParameterError):
            # offset >= PARTITION_BIT is rejected by the factory itself.
            registry.create("address-extended", {"offset": 0x80000000})

    def test_aliases_resolve_to_the_same_entry(self):
        assert type(registry.create("address")) is type(registry.create("address-partitioning"))
        assert registry.name_of(AddressPartitioning) == "address"
        assert registry.name_of(ExtendedAddressPartitioning) == "address-extended"

    def test_create_returns_fresh_parameterised_instances(self):
        a = registry.create("uid", {"mask": UID_MASK_31})
        b = registry.create("uid", {"mask": UID_MASK_31})
        assert a is not b
        assert isinstance(a, UIDVariation) and a.mask == UID_MASK_31

    def test_build_variations_instantiates_stack_in_order(self):
        variations = build_variations(ADDRESS_UID_SPEC)
        assert [type(v).__name__ for v in variations] == [
            "AddressPartitioning",
            "UIDVariation",
        ]
        # Fresh per build: no shared instances between systems/sessions.
        assert build_variations(ADDRESS_UID_SPEC)[1] is not variations[1]

    def test_unknown_name_surfaces_through_builders(self):
        spec = SystemSpec(variations=(VariationSpec("bogus"),))
        with pytest.raises(UnknownVariationError):
            build_variations(spec)


class TestBuilderParity:
    """A spec-built system behaves identically to the hand-wired seed path."""

    def _payloads(self):
        from repro.attacks.payloads import benign_request, uid_overwrite_payload

        return [benign_request(), uid_overwrite_payload(0)]

    def _preloaded_kernel(self):
        from repro.kernel.host import HTTP_PORT, build_standard_host

        kernel = build_standard_host()
        for payload in self._payloads():
            kernel.client_connect(HTTP_PORT, payload)
        return kernel

    def test_spec_built_system_matches_hand_wired_system(self):
        from repro.apps.httpd.server import make_httpd_factory
        from repro.core.nvariant import NVariantSystem

        legacy = NVariantSystem(
            self._preloaded_kernel(),
            make_httpd_factory(transformed=True, max_requests=2),
            [UIDVariation()],
            num_variants=2,
            name="httpd",
        ).run()
        modern = build_system(
            UID_DIVERSITY_SPEC,
            self._preloaded_kernel(),
            make_httpd_factory(transformed=True, max_requests=2),
            name="httpd",
        ).run()

        assert modern.attack_detected == legacy.attack_detected
        assert modern.lockstep_rounds == legacy.lockstep_rounds
        assert [a.alarm_type for a in modern.alarms] == [a.alarm_type for a in legacy.alarms]
        assert [v.syscall_count for v in modern.variants] == [
            v.syscall_count for v in legacy.variants
        ]

    def test_spec_campaign_matches_seed_detection_matrix(self):
        """The spec path reproduces the pinned seed matrix cell-for-cell."""
        from repro.attacks.uid_attacks import standard_uid_attacks

        attack = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        report = run_campaign(STANDARD_SYSTEM_SPECS, [attack])
        assert report.matrix()["full-word-root-overwrite"] == {
            "single-process": "undetected-compromise",
            "2-variant-address": "undetected-compromise",
            "2-variant-uid": "detected",
            "2-variant-address+uid": "detected",
        }

    def test_run_attack_dispatches_address_attacks(self):
        from repro.attacks.memory_attacks import standard_address_attacks

        attack = standard_address_attacks()[0]
        single = run_attack(attack, SINGLE_PROCESS_SPEC)
        partitioned = run_attack(attack, ADDRESS_PARTITIONING_SPEC)
        assert single.configuration == "single-process" and not single.detected
        assert partitioned.configuration == "2-variant-address" and partitioned.detected

    def test_build_session_and_engine_respect_fleet_policy(self):
        from repro.apps.httpd.server import make_httpd_factory
        from repro.engine.scheduler import HaltPolicy

        fleet = FleetSpec(
            name="parity-fleet",
            system=UID_DIVERSITY_SPEC,
            num_sessions=2,
            halt_policy="halt-all",
            workload=WorkloadSpec(total_requests=2),
        )
        sessions = [
            build_session(
                fleet.system,
                self._preloaded_kernel(),
                make_httpd_factory(transformed=True, max_requests=2),
                name=f"s{i}",
            )
            for i in range(fleet.num_sessions)
        ]
        engine = build_engine(fleet, sessions)
        assert engine.halt_policy is HaltPolicy.HALT_ALL
        assert engine.name == "parity-fleet"
        result = engine.run()
        assert len(result.sessions) == 2


class TestOutcomeKindValues:
    def test_matrix_strings_are_outcome_kind_values(self):
        from repro.attacks.outcomes import OutcomeKind

        assert OutcomeKind.UNDETECTED_COMPROMISE.value == "undetected-compromise"
        assert OutcomeKind.DETECTED.value == "detected"


class TestCLI:
    def _write_scenario(self, tmp_path, data):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_detection_matrix_scenario_end_to_end(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "detection-matrix",
                "systems": [
                    SINGLE_PROCESS_SPEC.to_dict(),
                    UID_DIVERSITY_SPEC.to_dict(),
                ],
                "attacks": ["full-word-root-overwrite"],
                "output": "json",
            },
        )
        assert cli_main(["run", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"]["full-word-root-overwrite"]["2-variant-uid"] == "detected"
        assert payload["detection_rates"]["2-variant-uid"] == 1.0
        assert payload["undetected_compromises"] == [
            {"attack": "full-word-root-overwrite", "configuration": "single-process"}
        ]

    def test_throughput_scenario_end_to_end(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "throughput",
                "fleet": {
                    "name": "cli-fleet",
                    "system": {"name": "httpd", "variations": ["uid"]},
                    "num_sessions": 2,
                    "workload": {"total_requests": 8},
                },
                "output": "json",
            },
        )
        assert cli_main(["run", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests_completed"] == 8
        assert payload["alarms"] == 0
        assert payload["speedup"] > 1.0

    def test_campaign_scenario_selects_the_serving_app(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "detection-matrix",
                "app": "ftpd",
                "systems": [
                    SINGLE_PROCESS_SPEC.to_dict(),
                    UID_DIVERSITY_SPEC.to_dict(),
                ],
                "attacks": ["full-word-root-overwrite"],
                "output": "json",
            },
        )
        assert cli_main(["run", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The ftpd wire format carries the same attack to the same verdicts.
        assert payload["matrix"]["full-word-root-overwrite"]["2-variant-uid"] == "detected"
        assert payload["detection_rates"]["2-variant-uid"] == 1.0

    def test_unknown_app_is_a_clean_error(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path, {"scenario": "detection-matrix", "app": "gopherd"}
        )
        assert cli_main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err
        assert "httpd" in err and "ftpd" in err

    def test_unknown_interposition_table_is_a_clean_error(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "detection-matrix",
                "systems": [{"name": "x", "interposition": "narrow"}],
                "attacks": ["full-word-root-overwrite"],
            },
        )
        assert cli_main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown interposition table" in err
        assert "classic" in err and "wide" in err

    def test_unknown_attack_name_is_a_clean_error(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path, {"scenario": "detection-matrix", "attacks": ["no-such-attack"]}
        )
        assert cli_main(["run", str(path)]) == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_unknown_scenario_kind_is_a_clean_error(self, tmp_path, capsys):
        path = self._write_scenario(tmp_path, {"scenario": "mystery"})
        assert cli_main(["run", str(path)]) == 2
        assert "unknown scenario kind" in capsys.readouterr().err

    def test_misspelled_top_level_key_is_a_clean_error(self, tmp_path, capsys):
        """A typo like 'atacks' must not silently fall back to the full suite."""
        path = self._write_scenario(
            tmp_path,
            {"scenario": "detection-matrix", "atacks": ["full-word-root-overwrite"]},
        )
        assert cli_main(["run", str(path)]) == 2
        assert "unknown detection-matrix scenario keys: atacks" in capsys.readouterr().err

    def test_bad_variation_name_in_scenario_is_a_clean_error(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "detection-matrix",
                "systems": [{"name": "x", "variations": ["bogus"]}],
                "attacks": ["full-word-root-overwrite"],
            },
        )
        assert cli_main(["run", str(path)]) == 2
        assert "unknown variation" in capsys.readouterr().err

    def test_example_scenario_files_load_and_validate(self):
        from pathlib import Path

        scenarios = Path(__file__).resolve().parents[1] / "examples" / "scenarios"
        for name in ("detection_matrix.json", "throughput.json"):
            data = load_scenario(scenarios / name)
            assert data["scenario"] in ("detection-matrix", "throughput")
            # Every spec in the file must resolve against the real registry.
            for entry in data.get("systems", []):
                build_variations(SystemSpec.from_dict(entry))
            if "fleet" in data:
                build_variations(FleetSpec.from_dict(data["fleet"]).system)
