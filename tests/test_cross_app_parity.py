"""Cross-application parity: the guarantees are app-independent.

The paper's security argument never mentions HTTP: detection rests on data
diversity at the syscall boundary, so swapping the protected workload must
not move a single cell of the detection matrix.  Both registered serving
apps share one vulnerable state layout and one overflow wire format, and
this suite pins every Table-2/Table-3 attack class to the *same*
detected/undetected classification on httpd and ftpd alike.
"""

import pytest

from repro.api.spec import STANDARD_SYSTEM_SPECS
from repro.apps.catalog import app_names
from repro.attacks.memory_attacks import (
    prepare_address_attack,
    standard_address_attacks,
)
from repro.attacks.outcomes import OutcomeKind
from repro.attacks.uid_attacks import run_uid_attack, standard_uid_attacks

APPS = ("httpd", "ftpd")

UC = OutcomeKind.UNDETECTED_COMPROMISE
DET = OutcomeKind.DETECTED
NE = OutcomeKind.NO_EFFECT
CRASH = OutcomeKind.CRASHED

#: Expected outcomes per configuration (single, address, uid, address+uid),
#: identical for every registered app -- the parity being asserted.
PARITY_MATRIX = {
    "full-word-root-overwrite": (UC, UC, DET, DET),
    "full-word-user-overwrite": (UC, UC, DET, DET),
    "partial-1-byte-overwrite": (UC, UC, DET, DET),
    "partial-2-byte-overwrite": (UC, UC, DET, DET),
    "partial-3-byte-overwrite": (UC, UC, DET, DET),
    "low-bit-flip": (NE, NE, NE, NE),
    "high-bit-flip": (UC, UC, UC, UC),
    "absolute-address-injection": (UC, DET, DET, DET),
    "high-partition-address-injection": (CRASH, DET, DET, DET),
}


def _attacks(app):
    by_name = {attack.name: attack for attack in standard_uid_attacks(app)}
    by_name.update(
        {attack.name: attack for attack in standard_address_attacks(app)}
    )
    return by_name


def test_both_apps_are_registered():
    assert set(APPS) <= set(app_names())


def test_matrix_covers_every_standard_attack():
    assert set(PARITY_MATRIX) == set(_attacks("httpd"))


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("spec_index", range(len(STANDARD_SYSTEM_SPECS)))
@pytest.mark.parametrize("attack_name", sorted(PARITY_MATRIX))
def test_cell_classification_is_app_independent(app, attack_name, spec_index):
    attack = _attacks(app)[attack_name]
    spec = STANDARD_SYSTEM_SPECS[spec_index]
    if attack_name in ("absolute-address-injection", "high-partition-address-injection"):
        outcome = prepare_address_attack(attack, spec).run()
    else:
        outcome = run_uid_attack(attack, spec)
    expected = PARITY_MATRIX[attack_name][spec_index]
    assert outcome.kind is expected, f"{app}: {outcome.describe()}"


@pytest.mark.parametrize("attack_name", sorted(PARITY_MATRIX))
def test_apps_agree_cell_for_cell(attack_name):
    """Belt and braces: compare the two apps' raw outcome kinds directly,
    so the parity claim cannot rot if PARITY_MATRIX is edited."""
    for spec in STANDARD_SYSTEM_SPECS:
        kinds = []
        for app in APPS:
            attack = _attacks(app)[attack_name]
            if attack_name.endswith("address-injection"):
                outcome = prepare_address_attack(attack, spec).run()
            else:
                outcome = run_uid_attack(attack, spec)
            kinds.append(outcome.kind)
        assert kinds[0] is kinds[1], f"{attack_name} @ {spec.name}: {kinds}"
