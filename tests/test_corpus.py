"""The scenario corpus: generator determinism, oracle fidelity, scorecards.

The corpus's whole value is that its expectations are *derived* and its
generation is *replayable*: same seed, same bytes, same scorecard, on
either backend.  These tests pin that contract end to end -- matrix
composition, class-balanced trimming, the directory format round-trip
(including the clean-error satellite for malformed files), a handful of
hand-checked oracle expectations at the guarantee edge, and small live
runs graded on both the virtual and process backends.
"""

import json

import pytest

from repro.api.spec import (
    ADDRESS_PARTITIONING_SPEC,
    UID_DIVERSITY_SPEC,
    SystemSpec,
    VariationSpec,
    keyed_uid_spec,
    uid_orbit_spec,
)
from repro.attacks.outcomes import OutcomeKind
from repro.corpus import (
    EXPECTED_BENIGN,
    EXPECTED_DETECTED,
    EXPECTED_EXEMPT,
    CorpusError,
    CorpusRecord,
    generate_corpus,
    read_corpus,
    run_corpus_records,
    write_corpus,
)
from repro.corpus.generator import DEFAULT_RECORDS, DEFAULT_SEED, build_matrix
from repro.corpus.oracle import (
    address_scheme_for_spec,
    annotation_expectation,
    corruption_expectation,
    pointer_expectation,
    remote_uid_overwrite_expectation,
    uid_masks_for_spec,
)
from repro.corpus.scorecard import evaluate_corpus


class TestGenerator:
    def test_default_corpus_is_at_least_200_records(self):
        corpus = generate_corpus(DEFAULT_SEED)
        assert len(corpus) == DEFAULT_RECORDS >= 200

    def test_same_seed_regenerates_byte_identically(self):
        first = [record.to_json() for record in generate_corpus(DEFAULT_SEED)]
        second = [record.to_json() for record in generate_corpus(DEFAULT_SEED)]
        assert first == second

    def test_different_seeds_differ_in_keyed_records(self):
        # Keyed specs draw their masks from the seed, so the serialized
        # corpora must differ somewhere even though the matrix shape matches.
        first = [record.to_json() for record in generate_corpus(1)]
        second = [record.to_json() for record in generate_corpus(2)]
        assert len(first) == len(second)
        assert first != second

    def test_all_three_expected_categories_present(self):
        corpus = generate_corpus(DEFAULT_SEED)
        categories = {record.expected for record in corpus}
        assert categories == {EXPECTED_DETECTED, EXPECTED_BENIGN, EXPECTED_EXEMPT}

    def test_exempt_class_includes_undetected_compromises(self):
        # The acceptance criterion: mutations outside the guarantee are
        # emitted and classified, not hidden.
        corpus = generate_corpus(DEFAULT_SEED)
        exempt_kinds = {
            record.expected_kind
            for record in corpus
            if record.expected == EXPECTED_EXEMPT
        }
        assert OutcomeKind.UNDETECTED_COMPROMISE.value in exempt_kinds

    def test_sweeps_n_2_through_8_and_keyed_schemes(self):
        corpus = generate_corpus(DEFAULT_SEED)
        assert {record.num_variants for record in corpus} >= set(range(2, 9))
        schemes = {record.scheme for record in corpus}
        assert {"uid-xor", "uid-orbit", "keyed-uid-xor", "high-bit", "orbit"} <= schemes
        assert any(scheme.startswith("keyed-") for scheme in schemes)

    def test_trimming_is_class_balanced_and_order_preserving(self):
        full = build_matrix(DEFAULT_SEED)
        trimmed = generate_corpus(DEFAULT_SEED, records=60)
        assert len(trimmed) == 60
        # Trimming keeps every mutation class alive and preserves matrix order.
        assert {r.mutation_class for r in trimmed} == {r.mutation_class for r in full}
        ids = [record.record_id for record in trimmed]
        full_ids = [record.record_id for record in full]
        assert ids == [record_id for record_id in full_ids if record_id in set(ids)]

    def test_record_ids_are_unique(self):
        corpus = build_matrix(DEFAULT_SEED)
        ids = [record.record_id for record in corpus]
        assert len(ids) == len(set(ids))

    def test_oversized_request_returns_whole_matrix(self):
        full = build_matrix(DEFAULT_SEED)
        assert len(generate_corpus(DEFAULT_SEED, records=10**6)) == len(full)


class TestDirectoryFormat:
    def test_write_read_round_trip(self, tmp_path):
        corpus = generate_corpus(DEFAULT_SEED, records=12)
        out = write_corpus(corpus, tmp_path / "corpus", seed=DEFAULT_SEED)
        assert read_corpus(out) == corpus

    def test_write_is_byte_deterministic(self, tmp_path):
        corpus = generate_corpus(DEFAULT_SEED, records=12)
        first = write_corpus(corpus, tmp_path / "a", seed=DEFAULT_SEED)
        second = write_corpus(corpus, tmp_path / "b", seed=DEFAULT_SEED)
        names = sorted(path.name for path in first.iterdir())
        assert names == sorted(path.name for path in second.iterdir())
        for name in names:
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_missing_manifest_is_a_clean_error(self, tmp_path):
        with pytest.raises(CorpusError, match="manifest.json"):
            read_corpus(tmp_path)

    def test_malformed_json_names_file_and_position(self, tmp_path):
        corpus = generate_corpus(DEFAULT_SEED, records=4)
        out = write_corpus(corpus, tmp_path / "corpus", seed=DEFAULT_SEED)
        victim = out / f"{corpus[0].record_id}.json"
        victim.write_text('{"id": broken', encoding="utf-8")
        with pytest.raises(CorpusError, match=r"line 1 column"):
            read_corpus(out)
        with pytest.raises(CorpusError, match=victim.name):
            read_corpus(out)

    def test_invalid_utf8_is_a_clean_error(self, tmp_path):
        corpus = generate_corpus(DEFAULT_SEED, records=4)
        out = write_corpus(corpus, tmp_path / "corpus", seed=DEFAULT_SEED)
        (out / f"{corpus[0].record_id}.json").write_bytes(b"\xff\xfe{}")
        with pytest.raises(CorpusError, match="not valid UTF-8"):
            read_corpus(out)

    def test_missing_record_keys_are_a_clean_error(self, tmp_path):
        corpus = generate_corpus(DEFAULT_SEED, records=4)
        out = write_corpus(corpus, tmp_path / "corpus", seed=DEFAULT_SEED)
        victim = out / f"{corpus[0].record_id}.json"
        victim.write_text(json.dumps({"id": "x"}), encoding="utf-8")
        with pytest.raises(CorpusError, match="missing keys"):
            read_corpus(out)

    def test_unknown_expected_category_rejected(self):
        record = generate_corpus(DEFAULT_SEED, records=4)[0]
        data = record.to_dict()
        data["expected"] = "mystery"
        with pytest.raises(CorpusError, match="mystery"):
            CorpusRecord.from_dict(data)


class TestOracle:
    """Hand-checked expectations at the guarantee edge."""

    def test_uid_xor_full_word_zero_is_detected(self):
        masks = uid_masks_for_spec(UID_DIVERSITY_SPEC)
        expectation = remote_uid_overwrite_expectation(masks, uid=0, partial_bytes=4)
        assert expectation.expected == EXPECTED_DETECTED

    def test_bit_flip_commutes_with_every_mask(self):
        for spec in (UID_DIVERSITY_SPEC, uid_orbit_spec(5), keyed_uid_spec(4, seed=7)):
            masks = uid_masks_for_spec(spec)
            expectation = corruption_expectation(
                masks, kind="bit-flip", payload=3, byte_count=1
            )
            assert expectation.expected == EXPECTED_EXEMPT
            assert expectation.kind is OutcomeKind.NO_EFFECT

    def test_sign_bit_flip_is_an_undetected_compromise(self):
        # Decodes to an invalid uid_t: the drop fails EINVAL identically in
        # every variant and the (root) worker stays root.
        masks = uid_masks_for_spec(uid_orbit_spec(3))
        expectation = corruption_expectation(
            masks, kind="bit-flip", payload=31, byte_count=1
        )
        assert expectation.expected == EXPECTED_EXEMPT
        assert expectation.kind is OutcomeKind.UNDETECTED_COMPROMISE

    def test_off_by_one_detected_iff_low_bytes_diverge(self):
        diverging = uid_masks_for_spec(UID_DIVERSITY_SPEC)  # 0 vs 0x7FFFFFFF
        assert annotation_expectation(diverging, length=64).expected == EXPECTED_DETECTED
        high_only = SystemSpec(
            name="high",
            variations=(VariationSpec.of("uid", mask=0x7F000000),),
            transformed=True,
        )
        agreeing = uid_masks_for_spec(high_only)
        expectation = annotation_expectation(agreeing, length=64)
        # Terminator zeroes the low byte of 33 (0x21) -> every variant
        # decodes uid 0: unanimous, undetected, and the worker stays root.
        assert expectation.expected == EXPECTED_EXEMPT
        assert expectation.kind is OutcomeKind.UNDETECTED_COMPROMISE

    def test_short_annotation_is_benign(self):
        masks = uid_masks_for_spec(UID_DIVERSITY_SPEC)
        assert annotation_expectation(masks, length=63).expected == EXPECTED_BENIGN

    def test_full_pointer_injection_detected_under_carving(self):
        scheme = address_scheme_for_spec(ADDRESS_PARTITIONING_SPEC)
        expectation = pointer_expectation(scheme, value=0x00200008)
        assert expectation.expected == EXPECTED_DETECTED

    def test_partial_pointer_overwrite_is_the_exempt_case(self):
        # One low byte, same nominal offset in every variant: every read
        # succeeds identically -- the paper's partial-overwrite blind spot.
        scheme = address_scheme_for_spec(ADDRESS_PARTITIONING_SPEC)
        expectation = pointer_expectation(scheme, value=8, partial_bytes=1)
        assert expectation.expected == EXPECTED_EXEMPT
        assert expectation.kind is OutcomeKind.UNDETECTED_COMPROMISE
        # ...until the offset runs the 16-byte read past the region edge.
        past = pointer_expectation(scheme, value=49, partial_bytes=1)
        assert past.expected == EXPECTED_DETECTED


class TestExecutionAndScorecard:
    @pytest.fixture(scope="class")
    def small_corpus(self):
        return generate_corpus(DEFAULT_SEED, records=60)

    @pytest.fixture(scope="class")
    def virtual_outcomes(self, small_corpus):
        return run_corpus_records(small_corpus, backend="virtual", workers=4)

    def test_virtual_run_matches_every_expectation(self, small_corpus, virtual_outcomes):
        card = evaluate_corpus(small_corpus, virtual_outcomes)
        assert card.all_pass, card.misses
        assert card.total == 60
        assert card.exempt_total > 0
        assert card.exempt_undetected == card.exempt_total
        assert card.exempt_compromises > 0

    def test_process_backend_produces_identical_scorecard(
        self, small_corpus, virtual_outcomes
    ):
        process_outcomes = run_corpus_records(
            small_corpus, backend="process", workers=2
        )
        assert process_outcomes == virtual_outcomes
        virtual_card = evaluate_corpus(small_corpus, virtual_outcomes)
        process_card = evaluate_corpus(small_corpus, process_outcomes)
        assert process_card.to_dict() == virtual_card.to_dict()

    def test_scorecard_reports_misses_verbatim(self, small_corpus, virtual_outcomes):
        # Sabotage one expectation: the scorecard must surface the miss, not
        # absorb it.
        import dataclasses

        wrong_kind = (
            OutcomeKind.DETECTED.value
            if small_corpus[0].expected_kind != OutcomeKind.DETECTED.value
            else OutcomeKind.NO_EFFECT.value
        )
        sabotaged = [
            dataclasses.replace(small_corpus[0], expected_kind=wrong_kind)
        ] + list(small_corpus[1:])
        card = evaluate_corpus(sabotaged, virtual_outcomes)
        assert not card.all_pass
        assert card.passed == card.total - 1
        assert len(card.misses) == 1
        assert card.misses[0].record_id == small_corpus[0].record_id

    def test_length_mismatch_rejected(self, small_corpus, virtual_outcomes):
        with pytest.raises(ValueError, match="outcomes"):
            evaluate_corpus(small_corpus[:-1], virtual_outcomes)

    def test_unknown_backend_rejected(self, small_corpus):
        with pytest.raises(ValueError, match="backend"):
            run_corpus_records(small_corpus[:1], backend="quantum")


class TestExperiment:
    def test_corpus_experiment_smoke_claims_hold(self):
        from repro.api.experiments import experiments

        report = experiments.run(experiments.smoke_spec("corpus"))
        assert report.ok, report.failed_claims
        result = report.result
        assert list(result.scorecards) == ["virtual", "process"]
        assert result.scorecard.all_pass

    def test_corpus_dir_parameter_runs_a_written_corpus(self, tmp_path):
        from repro.api.experiments import experiments
        from repro.api.spec import ExperimentSpec

        corpus = generate_corpus(DEFAULT_SEED, records=20)
        out = write_corpus(corpus, tmp_path / "corpus", seed=DEFAULT_SEED)
        report = experiments.run(
            ExperimentSpec(
                name="corpus",
                params={
                    "corpus_dir": str(out),
                    "backend": "virtual",
                    "workers": 2,
                },
            )
        )
        assert report.ok, report.failed_claims
        assert report.result.scorecard.total == 20
