"""Property-style round-trip tests for the Table 1 re-expression functions.

Two directions carry normal equivalence: ``R^-1(R(x)) = x`` over the whole
domain, and ``R(R^-1(y)) = y`` over the image of ``R`` (for the invertible
UID/address functions the image is the whole 32-bit domain, so both hold
everywhere; instruction tagging's inverse is deliberately partial and is only
required to round-trip on correctly tagged values).  The second half of the
file pins the canonicalization contract: representations that diverge only
because of re-expression must compare equal in the monitor, while an
attacker's identical injected value must not.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.monitor import Monitor, SyscallComparator
from repro.core.reexpression import (
    check_disjointness,
    check_inverse_property,
    sample_domain,
)
from repro.core.variations import TABLE1_VARIATIONS
from repro.core.variations.base import VariationStack
from repro.core.variations.instruction import InstructionSetTagging
from repro.core.variations.uid import UIDVariation
from repro.kernel.syscalls import Syscall, request

#: The boundary values the issue pins: 0, 1, 65535 and the domain maxima,
#: plus the 31-bit mask edge where the UID variation's blind spot lives.
BOUNDARY_VALUES = (0, 1, 65535, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF)

#: Every (variation name, reexpression function) pair of Table 1.
TABLE1_FUNCTIONS = [
    (cls.name, index, cls().reexpression(index))
    for cls in TABLE1_VARIATIONS
    for index in range(cls.num_variants)
]


def _function_id(entry):
    name, index, _ = entry
    return f"{name}-R{index}"


class TestRoundTrips:
    @pytest.mark.parametrize("entry", TABLE1_FUNCTIONS, ids=_function_id)
    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_inverse_of_forward_at_boundaries(self, entry, value):
        _, _, function = entry
        assert function.inverse(function.forward(value)) == value

    @pytest.mark.parametrize("entry", TABLE1_FUNCTIONS, ids=_function_id)
    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_forward_of_inverse_on_image(self, entry, value):
        """``R(R^-1(y)) = y`` for every y the variant can legitimately hold."""
        _, _, function = entry
        image_value = function.forward(value)
        assert function.forward(function.inverse(image_value)) == image_value

    @pytest.mark.parametrize(
        "cls", [c for c in TABLE1_VARIATIONS if c is not InstructionSetTagging]
    )
    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_total_functions_round_trip_both_ways(self, cls, value):
        """The UID/address functions are bijections on the 32-bit domain, so
        the image-restricted property extends to arbitrary concrete values."""
        for index in range(cls.num_variants):
            function = cls().reexpression(index)
            assert function.forward(function.inverse(value)) == value

    @pytest.mark.parametrize("entry", TABLE1_FUNCTIONS, ids=_function_id)
    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    def test_inverse_property_holds_everywhere(self, entry, value):
        _, _, function = entry
        assert function.round_trips(value)

    @pytest.mark.parametrize("cls", TABLE1_VARIATIONS)
    def test_inverse_property_over_sampled_domain(self, cls):
        for index in range(cls.num_variants):
            report = check_inverse_property(cls().reexpression(index), sample_domain())
            assert report.holds, report.describe()

    @pytest.mark.parametrize("cls", TABLE1_VARIATIONS)
    def test_disjointness_over_sampled_domain(self, cls):
        variation = cls()
        report = check_disjointness(variation.reexpressions(), sample_domain())
        assert report.holds, report.describe()


#: Boundary UIDs whose variant encodings avoid the ``(uid_t)-1`` sentinel
#: collision (see test_sentinel_collision_is_outside_normal_equivalence).
CANONICALIZABLE_UIDS = tuple(v for v in BOUNDARY_VALUES if v != 0x80000000)


class TestCanonicalizationEquivalence:
    """Divergent representations of the same semantic value compare equal."""

    @pytest.mark.parametrize("uid", CANONICALIZABLE_UIDS)
    def test_seteuid_representations_canonicalize_equal(self, uid):
        variation = UIDVariation()
        stack = VariationStack([variation])
        requests = [
            stack.canonicalize_request(index, request(Syscall.SETEUID, variation.encode(index, uid)))
            for index in range(2)
        ]
        assert requests[0].args == requests[1].args

    @pytest.mark.parametrize("uid", CANONICALIZABLE_UIDS)
    @pytest.mark.parametrize(
        "syscall", [Syscall.SETEUID, Syscall.SETUID, Syscall.SETGID, Syscall.UID_VALUE]
    )
    def test_monitor_accepts_divergent_representations(self, uid, syscall):
        variation = UIDVariation()
        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([variation]), monitor)
        alarm = comparator.check_round(
            [request(syscall, variation.encode(index, uid)) for index in range(2)]
        )
        assert alarm is None
        assert not monitor.attack_detected

    # Semantic uid_t values are 31-bit under the paper's mask: the sign-bit
    # range is the documented Section 3.2 blind spot, and 0x80000000 encodes
    # in variant 1 to 0xFFFFFFFF -- the POSIX (uid_t)-1 sentinel that
    # canonicalization must never decode.  Equality is therefore only
    # promised on the 31-bit domain; the boundary itself is pinned below.
    @given(left=st.integers(min_value=0, max_value=2**31 - 1),
           right=st.integers(min_value=0, max_value=2**31 - 1))
    def test_cc_comparison_arguments_canonicalize_equal(self, left, right):
        variation = UIDVariation()
        stack = VariationStack([variation])
        canonical = [
            stack.canonicalize_request(
                index,
                request(Syscall.CC_EQ, variation.encode(index, left), variation.encode(index, right)),
            )
            for index in range(2)
        ]
        assert canonical[0].args == canonical[1].args

    def test_sign_bit_values_fall_outside_the_canonicalization_promise(self):
        """0x80000000 encodes in variant 1 to the (uid_t)-1 sentinel, which
        canonicalization skips -- the concrete mechanism behind the 31-bit
        mask's sign-bit blind spot (Section 3.2)."""
        variation = UIDVariation()
        stack = VariationStack([variation])
        assert variation.encode(1, 0x80000000) == 0xFFFFFFFF
        canonical = [
            stack.canonicalize_request(
                index, request(Syscall.CC_EQ, variation.encode(index, 0x80000000), 0)
            )
            for index in range(2)
        ]
        assert canonical[0].args != canonical[1].args

    @pytest.mark.parametrize("injected", (0, 1, 65535, 0x7FFFFFFF, 0x80000000))
    def test_identical_injected_value_is_divergent(self, injected):
        """The flip side of canonicalization: an attacker's replicated
        concrete value decodes differently and must raise an alarm."""
        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([UIDVariation()]), monitor)
        alarm = comparator.check_round(
            [request(Syscall.SETEUID, injected) for _ in range(2)]
        )
        assert alarm is not None
        assert monitor.attack_detected

    def test_sentinel_minus_one_is_the_documented_exception(self):
        """(uid_t)-1 is never decoded (POSIX leave-unchanged sentinel), so an
        injected 0xFFFFFFFF compares equal -- the Section 3.2 special case."""
        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([UIDVariation()]), monitor)
        alarm = comparator.check_round(
            [request(Syscall.SETEUID, 0xFFFFFFFF) for _ in range(2)]
        )
        assert alarm is None

    def test_sentinel_collision_is_outside_normal_equivalence(self):
        """Semantic uid 0x80000000 encodes in variant 1 to exactly the
        sentinel (0x80000000 XOR 0x7FFFFFFF = 0xFFFFFFFF), so its decoding is
        skipped and the representations do NOT canonicalize equal.  This is
        the 'negative UID values are treated specially' boundary Section 3.2
        gives for rejecting the full 32-bit flip; real systems never hand such
        UIDs to a setuid call, and the kernel refuses them anyway."""
        variation = UIDVariation()
        stack = VariationStack([variation])
        canonical = [
            stack.canonicalize_request(
                index, request(Syscall.SETEUID, variation.encode(index, 0x80000000))
            )
            for index in range(2)
        ]
        assert canonical[0].args != canonical[1].args


class TestComparatorFastPath:
    """The precomputed fast path must be behaviourally identical to the
    canonicalize-everything slow path."""

    def test_unaffected_syscall_takes_fast_path(self):
        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([UIDVariation()]), monitor)
        alarm = comparator.check_round(
            [request(Syscall.WRITE, 1, b"same") for _ in range(2)]
        )
        assert alarm is None
        assert monitor.stats.fast_path_rounds == 1
        assert monitor.stats.lockstep_points == 1
        assert monitor.stats.syscalls_compared == 2

    def test_uid_syscall_bypasses_fast_path(self):
        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([UIDVariation()]), monitor)
        variation = UIDVariation()
        comparator.check_round(
            [request(Syscall.SETEUID, variation.encode(index, 33)) for index in range(2)]
        )
        assert monitor.stats.fast_path_rounds == 0
        assert monitor.stats.lockstep_points == 1

    def test_fast_path_divergence_raises_the_same_alarm(self):
        fast_monitor = Monitor()
        comparator = SyscallComparator(VariationStack([UIDVariation()]), fast_monitor)
        divergent = [request(Syscall.WRITE, 1, b"a"), request(Syscall.WRITE, 1, b"b")]
        fast_alarm = comparator.check_round(divergent)

        slow_monitor = Monitor()
        slow_alarm = slow_monitor.check_syscalls(divergent)
        assert fast_alarm is not None and slow_alarm is not None
        assert fast_alarm.alarm_type is slow_alarm.alarm_type
        assert fast_alarm.variant_values == slow_alarm.variant_values
        assert fast_monitor.stats.lockstep_points == slow_monitor.stats.lockstep_points

    def test_transform_round_decodes_mixed_name_rounds(self):
        """Regression: a round where only a later variant issues a
        UID-carrying call (possible under halt_on_alarm=False after a
        syscall-mismatch alarm) must still decode that variant's arguments."""
        variation = UIDVariation()
        comparator = SyscallComparator(VariationStack([variation]), Monitor())
        transformed = comparator.transform_round(
            [request(Syscall.NANOSLEEP, 1), request(Syscall.SETEUID, variation.encode(1, 5))]
        )
        assert transformed[0].args == (1,)
        assert transformed[1].args == (5,)

    def test_undeclared_footprint_disables_fast_path(self):
        """A stack containing a variation with an unknown footprint must
        canonicalize every round -- correctness never depends on declaration."""
        from repro.core.variations.base import Variation

        class Undeclared(Variation):
            name = "undeclared"

        monitor = Monitor()
        comparator = SyscallComparator(VariationStack([Undeclared()]), monitor)
        alarm = comparator.check_round([request(Syscall.WRITE, 1, b"x") for _ in range(2)])
        assert alarm is None
        assert monitor.stats.fast_path_rounds == 0

    def test_overriding_hook_without_redeclaring_footprint_disables_fast_path(self):
        """A subclass that rewrites more syscalls than its inherited footprint
        declares must not have its canonicalization skipped -- the stack
        detects the override and treats the footprint as unknown."""

        class WiderCanonicalization(UIDVariation):
            name = "wider-canonicalization"

            def canonicalize_request(self, index, req):  # inherits stale footprint
                return super().canonicalize_request(index, req)

        stack = VariationStack([WiderCanonicalization()])
        assert stack.canonical_syscalls() is None
        monitor = Monitor()
        comparator = SyscallComparator(stack, monitor)
        comparator.check_round([request(Syscall.WRITE, 1, b"x") for _ in range(2)])
        assert monitor.stats.fast_path_rounds == 0

    def test_footprint_declared_alongside_hook_is_trusted(self):
        """Shipped variations declare footprint and hook in the same class
        (or declare a footprint for purely inherited hooks) -- those keep the
        fast path."""
        from repro.core.variations.address import AddressPartitioning
        from repro.core.variations.uid import FullFlipUIDVariation

        for variation in (UIDVariation(), FullFlipUIDVariation(), AddressPartitioning()):
            assert VariationStack([variation]).canonical_syscalls() is not None, variation.name
