"""The mini-ftpd: the second serving workload.

A command/data-channel file server carrying the same injected vulnerability
as the mini-httpd (``SITE ANNOTATE`` is the FTP spelling of the
``X-Annotation`` header, writing through the same unchecked 64-byte buffer
into the worker-UID words).  These tests cover the protocol surface, the
privilege-drop discipline per transfer, the vulnerability itself, and the
ftpbench workload driver.
"""

import pytest

from repro.api.spec import UID_DIVERSITY_SPEC
from repro.apps.clients import ftpbench
from repro.apps.ftpd import FtpConfig, MiniFtpd, parse_ftp_config
from repro.attacks.payloads import (
    format_ftp_commands,
    ftp_benign_request,
    ftp_uid_overwrite_payload,
)
from repro.core.nvariant import UIDCodec
from repro.kernel.host import FTP_DATA_PORT, FTP_PORT, build_ftp_host
from repro.kernel.libc import Libc
from repro.kernel.scheduler import ProgramRunner


class TestFtpConfig:
    def test_defaults_parse_back(self):
        config = parse_ftp_config(
            "Listen 21\nDataPort 20\nUser daemon\nGroup daemon\n"
            "FtpRoot /srv/ftp\nAdminUser root\n"
        )
        assert config.listen_port == 21 and config.data_port == 20
        assert config.user == "daemon" and config.admin_user == "root"

    def test_unknown_directives_are_ignored(self):
        config = parse_ftp_config("PassivePorts 5000-5100\nListen 2121\n")
        assert config.listen_port == 2121

    def test_malformed_value_raises(self):
        with pytest.raises(ValueError):
            parse_ftp_config("Listen twenty-one\n")

    def test_equal_ports_rejected(self):
        with pytest.raises(ValueError):
            FtpConfig(listen_port=21, data_port=21).validate()

    def test_relative_root_rejected(self):
        with pytest.raises(ValueError):
            FtpConfig(ftp_root="srv/ftp").validate()


def _serve(conversations, *, transformed=False, max_requests=None):
    """Run one standalone ftpd over scripted conversations; returns
    (kernel, server, run_result)."""
    kernel = build_ftp_host()
    for index, payload in enumerate(conversations):
        kernel.client_connect(FTP_PORT, payload, client=f"c{index}")
        kernel.client_connect(FTP_DATA_PORT, b"", client=f"c{index}-data")
    process = kernel.spawn_process("ftpd")
    server = MiniFtpd(
        Libc(),
        UIDCodec.identity(),
        process.address_space,
        transformed=transformed,
        max_requests=max_requests,
    )
    run_result = ProgramRunner(kernel).run(process, server.run())
    return kernel, server, run_result


def _channel(kernel, client):
    for connection in kernel.network.connections:
        if connection.client == client:
            return connection.response_bytes()
    raise AssertionError(f"no connection for client {client!r}")


class TestMiniFtpd:
    def test_benign_transfer_round_trip(self):
        # Budget 2: exhausting it on the only transfer would close the
        # conversation before the trailing QUIT is acknowledged.
        kernel, server, run_result = _serve(
            [ftp_benign_request()], max_requests=2
        )
        assert run_result.exited_normally
        command = _channel(kernel, "c0")
        assert command.startswith(b"220 ")
        assert b"331 " in command and b"230 " in command
        assert b"150 " in command and b"226 " in command and b"221 " in command
        data = _channel(kernel, "c0-data")
        assert len(data) == 512  # /welcome.txt
        assert server.report.requests_handled == 1

    def test_transfers_drop_privileges_to_the_worker_account(self):
        _, server, _ = _serve([ftp_benign_request()], max_requests=1)
        (served,) = server.report.served
        assert served.status == 226
        assert served.euid_during_serve == 1  # the daemon account

    def test_benign_annotation_is_acknowledged(self):
        kernel, _, _ = _serve(
            [ftp_benign_request(annotation="hello")], max_requests=1
        )
        command = _channel(kernel, "c0")
        assert b"200 " in command and b"226 " in command

    def test_missing_file_is_550(self):
        kernel, server, _ = _serve(
            [format_ftp_commands(["USER u", "PASS p", "RETR /nope.txt", "QUIT"])],
            max_requests=1,
        )
        command = _channel(kernel, "c0")
        assert b"550 " in command
        (served,) = server.report.served
        assert served.status == 550

    def test_unknown_command_is_502(self):
        kernel, _, _ = _serve(
            [format_ftp_commands(["USER u", "PASS p", "MKD /tmp", "QUIT"])]
        )
        assert b"502 " in _channel(kernel, "c0")

    def test_oversized_command_line_is_500(self):
        kernel, _, _ = _serve(
            [format_ftp_commands(["USER u", "PASS p", "RETR /" + "a" * 9000, "QUIT"])]
        )
        assert b"500 " in _channel(kernel, "c0")

    def test_request_budget_limits_transfers(self):
        conversations = [ftp_benign_request() for _ in range(3)]
        _, server, run_result = _serve(conversations, max_requests=2)
        assert run_result.exited_normally
        assert server.report.requests_handled == 2

    def test_annotation_overflow_reaches_root_and_leaks_the_shadow(self):
        """The undefended compromise: the SITE ANNOTATE overflow zeroes the
        worker UID, the next RETR never drops privilege, and the traversal
        path walks out of /srv/ftp into /etc/shadow."""
        kernel, server, run_result = _serve(
            [ftp_uid_overwrite_payload(0)], max_requests=1
        )
        assert run_result.exited_normally
        (served,) = server.report.served
        assert served.status == 226
        assert served.euid_during_serve == 0  # privilege drop defeated
        assert b"root:$6$secrethash$" in _channel(kernel, "c0-data")


class TestFtpBench:
    def test_mix_expansion_is_deterministic_and_weighted(self):
        workload = ftpbench.FtpBenchWorkload(total_requests=32)
        paths = workload.request_paths()
        assert len(paths) == 32
        assert paths.count("/welcome.txt") > paths.count("/pub/dataset.bin")

    def test_connection_batching(self):
        workload = ftpbench.FtpBenchWorkload(
            total_requests=6, transfers_per_connection=3
        )
        payloads = workload.connection_payloads()
        assert len(payloads) == 2
        assert payloads[0].count(b"RETR ") == 3

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            ftpbench.FtpBenchWorkload(total_requests=4, mix=()).request_paths()

    def test_standalone_run_completes_the_mix(self):
        workload = ftpbench.FtpBenchWorkload(total_requests=10)
        measurement = ftpbench.drive_standalone(workload)
        assert measurement.requests_completed == 10
        assert measurement.status_counts.get(226) == 10
        assert measurement.response_bytes > 0
        assert measurement.alarms == 0

    def test_nvariant_run_stays_equivalent_under_uid_diversity(self):
        workload = ftpbench.FtpBenchWorkload(total_requests=8)
        measurement, result = ftpbench.drive_nvariant(workload, UID_DIVERSITY_SPEC)
        assert measurement.requests_completed == 8
        assert measurement.alarms == 0
        assert result.completed_normally
        assert measurement.monitor_checks > 0
        assert measurement.detection_calls > 0
