"""Tests for the mini-httpd: config, HTTP handling, the server lifecycle and WebBench."""

import pytest

from repro.apps.clients.webbench import (
    DEFAULT_STATIC_MIX,
    WebBenchWorkload,
    drive_nvariant,
    drive_standalone,
)
from repro.apps.httpd.config import ServerConfig, parse_config
from repro.apps.httpd.http import (
    HttpParseError,
    error_response,
    file_response,
    format_request,
    parse_request,
    parse_response,
)
from repro.apps.httpd.server import MiniHttpd
from repro.apps.httpd.vulnerable import (
    ANNOTATION_BUFFER_SIZE,
    BANNER_TEXT,
    build_server_state,
    copy_annotation_header,
    read_banner,
)
from repro.core.nvariant import UIDCodec
from repro.core.variations.address import AddressPartitioning
from repro.core.variations.uid import UIDVariation
from repro.kernel.host import DEFAULT_HTTPD_CONF, HTTP_PORT, build_standard_host
from repro.kernel.libc import Libc
from repro.kernel.scheduler import ProgramRunner
from repro.memory.address_space import AddressSpace
from repro.memory.partition import HighBitScheme


class TestConfig:
    def test_parse_default_config(self):
        config = parse_config(DEFAULT_HTTPD_CONF)
        assert config.listen_port == 80
        assert config.user == "www-data"
        assert config.document_root == "/var/www/html"

    def test_unknown_directives_ignored(self):
        config = parse_config("Listen 8080\nFancyModule on\n")
        assert config.listen_port == 8080

    def test_comments_and_blanks_ignored(self):
        config = parse_config("# comment\n\nUser alice\n")
        assert config.user == "alice"

    def test_malformed_directive_rejected(self):
        with pytest.raises(ValueError):
            parse_config("Listen\n")

    def test_bad_port_value_rejected(self):
        with pytest.raises(ValueError):
            parse_config("Listen notaport\n")

    def test_validation_rejects_relative_docroot(self):
        config = ServerConfig(document_root="www")
        with pytest.raises(ValueError):
            config.validate()


class TestHttpMessages:
    def test_parse_simple_get(self):
        request = parse_request(b"GET /index.html HTTP/1.0\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/index.html"
        assert request.header("host") == "h"

    def test_header_lookup_is_case_insensitive(self):
        request = parse_request(b"GET / HTTP/1.0\r\nX-Annotation: abc\r\n\r\n")
        assert request.header("x-annotation") == "abc"
        assert request.header("X-ANNOTATION") == "abc"

    def test_malformed_request_line_raises(self):
        with pytest.raises(HttpParseError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_relative_path_rejected(self):
        with pytest.raises(HttpParseError):
            parse_request(b"GET index.html HTTP/1.0\r\n\r\n")

    def test_response_serialisation_includes_content_length(self):
        response = file_response(b"hello", "/index.html")
        raw = response.to_bytes()
        assert b"Content-Length: 5" in raw
        assert raw.endswith(b"hello")

    def test_error_response_has_reason(self):
        assert b"404 Not Found" in error_response(404).to_bytes()

    def test_format_and_parse_roundtrip(self):
        raw = format_request("/a.html", headers={"X-Test": "1"})
        request = parse_request(raw)
        assert request.path == "/a.html" and request.header("x-test") == "1"

    def test_parse_response_splits_status_and_body(self):
        status, headers, body = parse_response(error_response(403, "nope").to_bytes())
        assert status == 403
        assert headers["content-type"] == "text/html"
        assert b"nope" in body


class TestVulnerableState:
    def test_layout_places_uid_after_buffer(self):
        layout = build_server_state(AddressSpace(), worker_uid=33, worker_gid=33, admin_uid=0)
        reach = layout.overflow_reach()
        assert reach["worker_uid"][0] == ANNOTATION_BUFFER_SIZE
        assert reach["banner_ptr"][0] > reach["admin_uid"][0]

    def test_in_bounds_copy_leaves_uid_intact(self):
        layout = build_server_state(AddressSpace(), worker_uid=33, worker_gid=33, admin_uid=0)
        copy_annotation_header(layout, "short note")
        assert layout.worker_uid.get() == 33

    def test_overflow_overwrites_uid(self):
        layout = build_server_state(AddressSpace(), worker_uid=33, worker_gid=33, admin_uid=0)
        payload = "A" * ANNOTATION_BUFFER_SIZE + "\x00\x00\x00\x00"
        copy_annotation_header(layout, payload)
        assert layout.worker_uid.get() == 0

    def test_banner_readable_through_pointer(self):
        space = AddressSpace(scheme=HighBitScheme(), index=1)
        layout = build_server_state(space, worker_uid=33, worker_gid=33, admin_uid=0)
        assert read_banner(space, layout) == BANNER_TEXT


def run_standalone_server(kernel, *, transformed=False, max_requests=None):
    process = kernel.spawn_process("httpd")
    server = MiniHttpd(
        Libc(), UIDCodec.identity(), process.address_space,
        transformed=transformed, max_requests=max_requests,
    )
    result = ProgramRunner(kernel).run(process, server.run())
    return server, result


class TestStandaloneServer:
    def test_serves_static_files(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/index.html"))
        kernel.client_connect(HTTP_PORT, format_request("/docs/faq.html"))
        server, result = run_standalone_server(kernel, max_requests=2)
        assert result.exited_normally
        statuses = [parse_response(c.response_bytes())[0] for c in kernel.network.connections]
        assert statuses == [200, 200]

    def test_404_for_missing_file_and_error_log_written(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/missing.html"))
        run_standalone_server(kernel, max_requests=1)
        status, _, _ = parse_response(kernel.network.connections[0].response_bytes())
        assert status == 404
        assert b"status 404" in kernel.fs.read_file("/var/log/httpd/error_log")

    def test_privileges_dropped_during_static_serving(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/index.html"))
        server, _ = run_standalone_server(kernel, max_requests=1)
        assert server.report.served[0].euid_during_serve == 33

    def test_direct_shadow_request_denied_when_privileges_dropped(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/../../../etc/shadow"))
        run_standalone_server(kernel, max_requests=1)
        status, _, _ = parse_response(kernel.network.connections[0].response_bytes())
        assert status == 403

    def test_admin_endpoint_requires_token(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/admin/status"))
        kernel.client_connect(
            HTTP_PORT, format_request("/admin/status", headers={"X-Admin-Token": "letmein"})
        )
        run_standalone_server(kernel, max_requests=2)
        responses = [parse_response(c.response_bytes()) for c in kernel.network.connections]
        assert responses[0][0] == 403
        assert responses[1][0] == 200
        assert b"top secret" in responses[1][2]

    def test_bad_request_and_unsupported_method(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, b"NONSENSE\r\n\r\n")
        kernel.client_connect(HTTP_PORT, format_request("/index.html", method="DELETE"))
        run_standalone_server(kernel, max_requests=2)
        statuses = [parse_response(c.response_bytes())[0] for c in kernel.network.connections]
        assert statuses == [400, 405]

    def test_head_request_returns_empty_body(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/index.html", method="HEAD"))
        run_standalone_server(kernel, max_requests=1)
        status, _, body = parse_response(kernel.network.connections[0].response_bytes())
        assert status == 200 and body == b""

    def test_access_log_records_every_request(self):
        kernel = build_standard_host()
        for path in ("/index.html", "/news.html", "/missing.html"):
            kernel.client_connect(HTTP_PORT, format_request(path))
        run_standalone_server(kernel, max_requests=3)
        log = kernel.fs.read_file("/var/log/httpd/access_log").decode()
        assert log.count("\n") == 3 and "/news.html" in log

    def test_server_exits_when_queue_is_empty(self):
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, format_request("/index.html"))
        server, result = run_standalone_server(kernel)
        assert result.exited_normally
        assert server.report.requests_handled == 1


class TestWebBenchWorkload:
    def test_mix_expansion_respects_weights_and_length(self):
        workload = WebBenchWorkload(total_requests=25)
        paths = workload.request_paths()
        assert len(paths) == 25
        assert paths.count("/index.html") >= paths.count("/downloads/archive.bin")

    def test_request_bytes_are_valid_http(self):
        workload = WebBenchWorkload(total_requests=3)
        for raw in workload.request_bytes():
            assert parse_request(raw).method == "GET"

    def test_concurrent_clients(self):
        workload = WebBenchWorkload(client_engines=5, client_machines=3)
        assert workload.concurrent_clients == 15

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WebBenchWorkload(total_requests=1, mix=()).request_paths()

    def test_standalone_measurement_counts(self):
        measurement = drive_standalone(WebBenchWorkload(total_requests=8), transformed=False)
        assert measurement.completed_ok
        assert measurement.requests_completed == 8
        assert measurement.status_counts == {200: 8}
        assert measurement.num_variants == 1
        assert measurement.per_request_syscalls() > 0

    def test_transformed_standalone_adds_detection_calls(self):
        plain = drive_standalone(WebBenchWorkload(total_requests=6), transformed=False)
        transformed = drive_standalone(WebBenchWorkload(total_requests=6), transformed=True)
        assert transformed.detection_calls > plain.detection_calls

    def test_nvariant_measurement_has_wrapper_stats(self):
        from repro.api.spec import ADDRESS_UID_SPEC

        measurement, result = drive_nvariant(
            WebBenchWorkload(total_requests=6), ADDRESS_UID_SPEC
        )
        assert measurement.completed_ok
        assert result.completed_normally
        assert measurement.replicated_calls > 0
        assert measurement.per_variant_calls > 0
        assert measurement.num_variants == 2

    def test_default_mix_paths_exist_on_standard_host(self, kernel):
        for entry in DEFAULT_STATIC_MIX:
            assert kernel.fs.exists("/var/www/html" + entry.path)
