"""Tests for the mini-C front end, the UID transformer, and the analysis layer."""

import pytest

from repro.analysis.perfmodel import CostParameters, PerformanceModel, percent_change
from repro.analysis.tables import render_key_values, render_table
from repro.apps.clients.webbench import WebBenchWorkload, drive_standalone
from repro.apps.httpd.csource import HTTPD_UID_SOURCE
from repro.core.variations.uid import UIDVariation
from repro.transform.analysis import UIDAnalysis
from repro.transform.ast_nodes import Call, Function, Identifier, IntLiteral
from repro.transform.lexer import LexError, TokenType, tokenize
from repro.transform.parser import ParseError, parse_source
from repro.transform.printer import print_unit
from repro.transform.report import ChangeCategory, TransformationReport
from repro.transform.uid_transform import transform_source


class TestLexer:
    def test_tokenizes_keywords_idents_numbers(self):
        tokens = tokenize("uid_t uid = 0x10;")
        kinds = [token.type for token in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert kinds[1] is TokenType.IDENT
        assert tokens[3].value == "0x10"

    def test_skips_comments(self):
        tokens = tokenize("// line\n/* block */ int x;")
        assert tokens[0].value == "int"

    def test_multichar_punct(self):
        values = [t.value for t in tokenize("a == b != c <= d >= e && f || g->h")]
        for punct in ("==", "!=", "<=", ">=", "&&", "||", "->"):
            assert punct in values

    def test_line_numbers_tracked(self):
        tokens = tokenize("int a;\nint b;\n")
        b_token = [t for t in tokens if t.value == "b"][0]
        assert b_token.line == 2

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int a = `;")


class TestParser:
    def test_parses_function_and_globals(self):
        unit = parse_source("uid_t server_uid = 0;\nint main(void) { return 0; }\n")
        assert unit.globals[0].name == "server_uid"
        assert unit.function("main").return_type == "int"

    def test_parses_if_else_while_calls(self):
        source = """
        int f(uid_t uid) {
            int count = 0;
            while (count < 3) {
                if (uid == 0) { log_error("root", "f"); } else { count = count + 1; }
            }
            return count;
        }
        """
        unit = parse_source(source)
        assert len(unit.function("f").body) == 3

    def test_parses_struct_pointer_declarations(self):
        unit = parse_source("int f(void) { passwd *pw = getpwnam(\"x\"); if (pw == NULL) { return 1; } return 0; }")
        assert unit.function("f").body[0].pointer

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_source("int f(void) { int x = 1 }")

    def test_roundtrip_through_printer(self):
        source = "uid_t g = 5;\nint f(uid_t u) {\n    if (u == g) {\n        return 1;\n    }\n    return 0;\n}\n"
        unit = parse_source(source)
        reparsed = parse_source(print_unit(unit))
        assert print_unit(reparsed) == print_unit(unit)

    def test_httpd_source_parses(self):
        unit = parse_source(HTTPD_UID_SOURCE)
        names = {function.name for function in unit.functions}
        assert {"unixd_setup_child", "drop_privileges", "worker_main"} <= names


class TestUIDAnalysis:
    def test_declared_uid_variables_found(self):
        unit = parse_source("int f(void) { uid_t u = getuid(); int other = 3; return 0; }")
        analysis = UIDAnalysis(unit)
        assert "u" in analysis.uid_variables("f")
        assert "other" not in analysis.uid_variables("f")

    def test_inference_through_assignment_chain(self):
        unit = parse_source("int f(void) { int a = getuid(); int b = a; return b; }")
        analysis = UIDAnalysis(unit)
        assert {"a", "b"} <= analysis.uid_variables("f")

    def test_field_access_is_uid_typed(self):
        unit = parse_source("int f(void) { passwd *pw = getpwnam(\"x\"); int u = pw->pw_uid; return u; }")
        analysis = UIDAnalysis(unit)
        assert "u" in analysis.uid_variables("f")

    def test_uid_influence_tracks_getpwuid_results(self):
        unit = parse_source(
            "int f(uid_t uid) { passwd *pw = getpwuid(uid); if (pw == NULL) { return 1; } return 0; }"
        )
        analysis = UIDAnalysis(unit)
        function = unit.function("f")
        condition = function.body[1].cond
        assert analysis.is_uid_influenced(condition, "f")

    def test_global_uid_variables_visible_everywhere(self):
        unit = parse_source("uid_t server_uid = 33;\nint f(void) { return server_uid; }\n")
        analysis = UIDAnalysis(unit)
        assert "server_uid" in analysis.uid_variables("f")


class TestUIDTransformer:
    def _transform(self, source):
        variation = UIDVariation()
        return transform_source(source, lambda uid: variation.encode(1, uid))

    def test_constants_reexpressed(self):
        unit, report = self._transform("int f(uid_t u) { if (u == 0) { return 1; } return 0; }")
        assert report.count(ChangeCategory.CONSTANT) == 1
        text = print_unit(unit)
        assert "0x7fffffff" in text.lower()

    def test_comparisons_become_cc_calls(self):
        unit, report = self._transform("int f(uid_t u, uid_t v) { if (u < v) { return 1; } return 0; }")
        assert report.count(ChangeCategory.COMPARISON) == 1
        assert "cc_lt(u, v)" in print_unit(unit)

    def test_implicit_comparison_expanded(self):
        unit, report = self._transform("int f(void) { if (!geteuid()) { return 1; } return 0; }")
        assert report.count(ChangeCategory.IMPLICIT_COMPARISON) == 1
        assert "cc_eq(geteuid(), 0x7fffffff)" in print_unit(unit).lower()

    def test_uid_value_wrapping_for_library_calls(self):
        unit, report = self._transform("int f(uid_t u) { passwd *pw = getpwuid(u); return 0; }")
        assert report.count(ChangeCategory.UID_VALUE) == 1
        assert "getpwuid(uid_value(u))" in print_unit(unit)

    def test_kernel_calls_not_wrapped_in_uid_value(self):
        unit, report = self._transform("int f(uid_t u) { setuid(u); return 0; }")
        assert report.count(ChangeCategory.UID_VALUE) == 0
        assert "setuid(u)" in print_unit(unit)

    def test_cond_chk_wraps_influenced_conditionals(self):
        unit, report = self._transform(
            "int f(uid_t u) { passwd *pw = getpwuid(u); if (pw == NULL) { return 1; } return 0; }"
        )
        assert report.count(ChangeCategory.COND_CHK) == 1
        assert "cond_chk((pw == NULL))" in print_unit(unit)

    def test_cc_conditions_not_double_wrapped(self):
        unit, report = self._transform("int f(uid_t u) { if (u == 0) { return 1; } return 0; }")
        text = print_unit(unit)
        assert "cond_chk(cc_eq" not in text

    def test_original_unit_not_mutated(self):
        source = "uid_t g = 0;\n"
        from repro.transform.parser import parse_source as parse

        variation = UIDVariation()
        unit = parse(source)
        from repro.transform.uid_transform import UIDVariationTransformer

        UIDVariationTransformer(lambda uid: variation.encode(1, uid)).transform(unit)
        assert unit.globals[0].init.value == 0

    def test_httpd_source_counts_cover_all_categories(self):
        _, report = self._transform(HTTPD_UID_SOURCE)
        for category in (
            ChangeCategory.CONSTANT,
            ChangeCategory.UID_VALUE,
            ChangeCategory.COMPARISON,
            ChangeCategory.COND_CHK,
        ):
            assert report.count(category) > 0
        assert report.total_paper_categories >= 40

    def test_report_rows_include_paper_totals(self):
        report = TransformationReport()
        rows = report.comparison_rows()
        assert rows[-1][2] == 73

    def test_transformed_httpd_source_reparses(self):
        unit, _ = self._transform(HTTPD_UID_SOURCE)
        reparsed = parse_source(print_unit(unit))
        assert len(reparsed.functions) == len(unit.functions)


class TestAnalysisLayer:
    def test_render_table_alignment_and_title(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        assert text.splitlines()[0] == "T"
        assert "333" in text

    def test_render_table_validates_row_width(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_key_values(self):
        text = render_key_values([("key", 1), ("longer-key", 2)])
        assert "key        : 1" in text

    def test_percent_change(self):
        assert percent_change(100, 50) == -50.0
        assert percent_change(0, 50) == 0.0

    def test_perfmodel_demands_scale_with_variants(self):
        model = PerformanceModel()
        single = drive_standalone(WebBenchWorkload(total_requests=6), transformed=False)
        demand = model.demands(single)
        assert demand.cpu_us > 0 and demand.io_us > 0
        doubled = model.demands(
            dataclasses_replace(single, num_variants=2)
        )
        assert doubled.cpu_us > demand.cpu_us

    def test_perfmodel_saturated_uses_bottleneck(self):
        model = PerformanceModel(CostParameters(per_request_cpu=1000.0, io_per_byte=0.0001))
        measurement = drive_standalone(WebBenchWorkload(total_requests=6), transformed=False)
        saturated = model.saturated(measurement, clients=10)
        unsaturated = model.unsaturated(measurement)
        assert saturated.throughput_kbps > unsaturated.throughput_kbps
        assert saturated.latency_ms > 0


def dataclasses_replace(measurement, **changes):
    """Small helper: dataclasses.replace for the measurement record."""
    import dataclasses

    return dataclasses.replace(measurement, **changes)
