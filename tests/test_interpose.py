"""The syscall-table interposition subsystem.

Monitoring policy is data: an :class:`InterpositionTable` maps every syscall
to its execution/comparison policy, ``"classic"`` reproduces the historical
frozen-set dispatch definitionally, and ``"wide"`` extends coverage to the
fork, signal and socket families.  These tests pin the registry surface and
the per-family alarm behaviour of the wide table.
"""

import pytest

from repro.core import wrappers as wrappers_module
from repro.core import monitor as monitor_module
from repro.core.alarm import AlarmType
from repro.core.nvariant import NVariantSystem
from repro.interpose import (
    CLASSIC_TABLE,
    InterpositionEntry,
    InterpositionError,
    InterpositionTable,
    PolicyKind,
    WIDE_TABLE,
    get_table,
    table_names,
)
from repro.kernel.errors import Errno
from repro.kernel.host import build_standard_host
from repro.kernel.syscalls import (
    DETECTION_SYSCALLS,
    OUTPUT_SYSCALLS,
    Syscall,
    UID_PARAMETER_SYSCALLS,
)


class TestRegistry:
    def test_shipped_tables(self):
        assert table_names() == ["classic", "wide"]
        assert get_table("classic") is CLASSIC_TABLE
        assert get_table("wide") is WIDE_TABLE

    def test_unknown_table_names_the_registered_ones(self):
        with pytest.raises(InterpositionError) as excinfo:
            get_table("narrow")
        message = str(excinfo.value)
        assert "narrow" in message and "classic" in message and "wide" in message


class TestClassicTable:
    """The classic table must be the historical constants, definitionally."""

    def test_derived_sets_match_the_legacy_views(self):
        assert CLASSIC_TABLE.fd_syscalls == wrappers_module.FD_SYSCALLS
        assert (
            CLASSIC_TABLE.descriptor_creating_syscalls
            == wrappers_module.DESCRIPTOR_CREATING_SYSCALLS
        )
        assert CLASSIC_TABLE.detection_syscalls == DETECTION_SYSCALLS
        assert CLASSIC_TABLE.detection_syscalls == monitor_module.DETECTION_SYSCALLS
        assert CLASSIC_TABLE.uid_parameter_syscalls == UID_PARAMETER_SYSCALLS
        assert CLASSIC_TABLE.denied_syscalls == frozenset()
        assert CLASSIC_TABLE.output_syscalls == frozenset()

    def test_every_syscall_has_an_explicit_entry(self):
        assert set(CLASSIC_TABLE.entries()) == set(Syscall)

    def test_fallback_entry_is_fan_out(self):
        empty = InterpositionTable("empty", [])
        entry = empty.entry(Syscall.READ)
        assert entry.policy is PolicyKind.FAN_OUT
        assert not entry.fd_arg and not entry.creates_fd

    def test_duplicate_entries_rejected(self):
        entry = InterpositionEntry(syscall=Syscall.READ, policy=PolicyKind.REPLICATE)
        with pytest.raises(ValueError):
            InterpositionTable("dup", [entry, entry])

    def test_replaced_overrides_only_the_named_entries(self):
        derived = CLASSIC_TABLE.replaced(
            "derived",
            [InterpositionEntry(syscall=Syscall.TIME, policy=PolicyKind.DENY)],
        )
        assert derived.policy(Syscall.TIME) is PolicyKind.DENY
        assert derived.policy(Syscall.READ) is CLASSIC_TABLE.policy(Syscall.READ)
        assert derived.denied_syscalls == {Syscall.TIME}


class TestWideTable:
    def test_fork_family_is_denied(self):
        assert WIDE_TABLE.denied_syscalls == {Syscall.FORK, Syscall.WAITPID}

    def test_kill_fans_out_and_is_output_classified(self):
        entry = WIDE_TABLE.entry(Syscall.KILL)
        assert entry.policy is PolicyKind.FAN_OUT
        assert entry.output

    def test_output_family_includes_the_socket_surface(self):
        expected = OUTPUT_SYSCALLS | {Syscall.BIND, Syscall.LISTEN}
        assert WIDE_TABLE.output_syscalls == expected

    def test_everything_else_matches_classic(self):
        changed = (
            WIDE_TABLE.denied_syscalls
            | WIDE_TABLE.output_syscalls
        )
        for sc in Syscall:
            if sc in changed:
                continue
            assert WIDE_TABLE.entry(sc) == CLASSIC_TABLE.entry(sc), sc


def _run(factory, *, interposition, variations=(), kernel=None):
    kernel = kernel if kernel is not None else build_standard_host()
    system = NVariantSystem(
        kernel, factory, list(variations), interposition=interposition
    )
    return kernel, system.run()


class TestWideTableEngineBehaviour:
    """Regression-pins per family: what a session actually observes."""

    def test_fork_denied_uniformly_without_entering_the_kernel(self):
        def factory(ctx):
            def program():
                forked = yield from ctx.libc.syscall(Syscall.FORK)
                yield from ctx.libc.exit(0 if forked.errno is Errno.EPERM else 1)

            return program()

        kernel, result = _run(factory, interposition="wide")
        assert result.completed_normally, result.alarms
        assert all(v.exit_code == 0 for v in result.variants)
        assert result.wrapper_stats.denied_calls == 1
        # The kernel never saw the call -- only the variants' exits.
        assert kernel.stats.syscall_breakdown.get("fork", 0) == 0

    def test_waitpid_denied_like_fork(self):
        def factory(ctx):
            def program():
                waited = yield from ctx.libc.syscall(Syscall.WAITPID, 1)
                yield from ctx.libc.exit(0 if waited.errno is Errno.EPERM else 1)

            return program()

        _, result = _run(factory, interposition="wide")
        assert result.completed_normally, result.alarms
        assert all(v.exit_code == 0 for v in result.variants)

    def test_classic_fork_still_reaches_the_kernel(self):
        """The classic table must keep the historical ENOSYS behaviour."""

        def factory(ctx):
            def program():
                forked = yield from ctx.libc.syscall(Syscall.FORK)
                yield from ctx.libc.exit(0 if forked.errno is Errno.ENOSYS else 1)

            return program()

        _, result = _run(factory, interposition="classic")
        assert result.completed_normally, result.alarms
        assert all(v.exit_code == 0 for v in result.variants)
        assert not result.attack_detected

    def test_divergent_kill_is_an_output_mismatch_under_wide(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.syscall(Syscall.KILL, 1, 9 + ctx.index)
                yield from ctx.libc.exit(0)

            return program()

        _, result = _run(factory, interposition="wide")
        assert result.attack_detected
        alarm = result.first_alarm()
        assert alarm.alarm_type is AlarmType.OUTPUT_MISMATCH
        assert alarm.syscall == "kill"

    def test_divergent_kill_is_a_generic_mismatch_under_classic(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.syscall(Syscall.KILL, 1, 9 + ctx.index)
                yield from ctx.libc.exit(0)

            return program()

        _, result = _run(factory, interposition="classic")
        assert result.attack_detected
        assert result.first_alarm().alarm_type is AlarmType.ARGUMENT_MISMATCH

    def test_divergent_bind_is_an_output_mismatch_under_wide(self):
        def factory(ctx):
            def program():
                sock = yield from ctx.libc.socket()
                yield from ctx.libc.bind(sock.value, 8080 + ctx.index)
                yield from ctx.libc.exit(0)

            return program()

        _, result = _run(factory, interposition="wide")
        assert result.attack_detected
        alarm = result.first_alarm()
        assert alarm.alarm_type is AlarmType.OUTPUT_MISMATCH
        assert alarm.syscall == "bind"

    def test_alarm_breakdown_names_the_diverging_syscall(self):
        def factory(ctx):
            def program():
                yield from ctx.libc.syscall(Syscall.KILL, 1, 9 + ctx.index)
                yield from ctx.libc.exit(0)

            return program()

        _, result = _run(factory, interposition="wide")
        assert result.monitor.stats.alarm_breakdown.get("kill") == 1
