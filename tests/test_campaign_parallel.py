"""Engine-parallel campaigns: serial parity, scheduling, deprecation shims.

The load-bearing contract of PR 3 is *parity*: ``run_campaign`` routed
through the engine's worker-pool scheduler must produce byte-identical
per-cell outcomes to the serial path for every worker count, because each
cell owns a private simulated host.  The deterministic tests pin that for a
fixed matrix; the hypothesis property test (marked ``slow``, run by
``make check-parallel``) samples random small spec/attack matrices.
"""

import dataclasses
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.campaign import prepare_attack, run_attack, run_campaign, standard_attacks
from repro.api.spec import (
    ADDRESS_PARTITIONING_SPEC,
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
    UID_DIVERSITY_SPEC,
    UID_ORBIT_3_SPEC,
    uid_orbit_spec,
)
from repro.attacks.memory_attacks import standard_address_attacks
from repro.attacks.outcomes import OutcomeKind
from repro.attacks.uid_attacks import standard_uid_attacks
from repro.engine.campaign import (
    CampaignHaltPolicy,
    CampaignJob,
    CampaignScheduler,
)


def _serial_outcomes(specs, attacks):
    """The reference serial path: one prepared cell at a time, in order."""
    return [run_attack(attack, spec) for attack in attacks for spec in specs]


def _outcome_bytes(outcomes):
    """Byte-level rendering of a campaign's outcomes (order-sensitive)."""
    return json.dumps(
        [dataclasses.asdict(o) | {"kind": o.kind.value} for o in outcomes]
    ).encode()


class TestSerialParity:
    """Parallel and serial campaigns agree cell-for-cell."""

    @pytest.mark.parametrize("parallelism", [1, 2, 8])
    def test_standard_matrix_is_parallelism_invariant(self, parallelism):
        attacks = [
            next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"),
            next(a for a in standard_uid_attacks() if a.name == "high-bit-flip"),
            standard_address_attacks()[0],
        ]
        specs = (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC)
        expected = _serial_outcomes(specs, attacks)
        report = run_campaign(specs, attacks, parallelism=parallelism)
        assert report.outcomes == expected
        assert _outcome_bytes(report.outcomes) == _outcome_bytes(expected)

    def test_outcomes_preserve_submission_order(self):
        """Completion order varies with parallelism; report order must not."""
        attacks = standard_uid_attacks()[:3]
        specs = (UID_DIVERSITY_SPEC, SINGLE_PROCESS_SPEC)
        report = run_campaign(specs, attacks, parallelism=4)
        labels = [(o.attack, o.configuration) for o in report.outcomes]
        assert labels == [(a.name, s.name) for a in attacks for s in specs]

    def test_orbit_runs_through_the_full_campaign_path(self):
        """An N=3 registry variation sweeps through the scheduler end to end."""
        attack = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        report = run_campaign(
            (SINGLE_PROCESS_SPEC, UID_ORBIT_3_SPEC), [attack], parallelism=2
        )
        row = report.matrix()[attack.name]
        assert row["single-process"] == "undetected-compromise"
        assert row["3-variant-uid-orbit"] == "detected"

    def test_rounds_per_turn_does_not_change_outcomes(self):
        attacks = standard_uid_attacks()[:2]
        specs = (UID_DIVERSITY_SPEC,)
        expected = _serial_outcomes(specs, attacks)
        for rounds_per_turn in (1, 3, 64):
            report = run_campaign(
                specs, attacks, parallelism=2, rounds_per_turn=rounds_per_turn
            )
            assert report.outcomes == expected


@pytest.mark.slow
class TestSerialParityProperty:
    """Hypothesis: parity holds for random small spec/attack matrices."""

    SPEC_POOL = (
        SINGLE_PROCESS_SPEC,
        ADDRESS_PARTITIONING_SPEC,
        UID_DIVERSITY_SPEC,
        UID_ORBIT_3_SPEC,
    )

    @given(
        attack_indices=st.lists(st.integers(0, 8), min_size=1, max_size=3, unique=True),
        spec_indices=st.lists(st.integers(0, 3), min_size=1, max_size=2, unique=True),
    )
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_random_matrix_parity(self, attack_indices, spec_indices):
        pool = [*standard_uid_attacks(), *standard_address_attacks()]
        attacks = [pool[i] for i in attack_indices]
        specs = [self.SPEC_POOL[i] for i in spec_indices]
        expected = _serial_outcomes(specs, attacks)
        for parallelism in (1, 2, 8):
            report = run_campaign(specs, attacks, parallelism=parallelism)
            assert _outcome_bytes(report.outcomes) == _outcome_bytes(expected), (
                parallelism,
                [o.describe() for o in report.outcomes],
            )


class TestBackendEdgeCases:
    """Scheduler edge cases every backend must honor identically.

    Each case runs against both the virtual-time scheduler and the
    multi-process tier: the backends may differ in how work reaches a
    worker, never in what the campaign reports.
    """

    ATTACKS = staticmethod(
        lambda: [
            next(a for a in standard_uid_attacks() if a.name == "low-bit-flip"),
            next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"),
        ]
    )

    @pytest.mark.parametrize("backend", ["virtual", "process"])
    def test_more_workers_than_jobs(self, backend):
        """Requested parallelism survives into the accounting; spare slots idle."""
        attacks = self.ATTACKS()[:1]
        specs = (UID_DIVERSITY_SPEC, SINGLE_PROCESS_SPEC)
        expected = _serial_outcomes(specs, attacks)
        report = run_campaign(specs, attacks, backend=backend, workers=8)
        assert _outcome_bytes(report.outcomes) == _outcome_bytes(expected)
        execution = report.execution
        assert execution.parallelism == 8
        assert len(execution.worker_elapsed) == 8
        assert len(execution.completed_jobs) == len(expected)

    @pytest.mark.parametrize("backend", ["virtual", "process"])
    def test_empty_job_list(self, backend):
        """An empty cross product completes without forking or scheduling."""
        report = run_campaign((), self.ATTACKS(), backend=backend, workers=4)
        assert report.outcomes == []
        execution = report.execution
        assert execution.jobs == []
        assert execution.backend == backend
        assert execution.virtual_elapsed == 0
        assert math.isnan(execution.speedup())

    @pytest.mark.parametrize("backend", ["virtual", "process"])
    def test_rounds_per_turn_exceeding_session_length(self, backend):
        """A turn batch far beyond any session's lifetime changes nothing."""
        attacks = self.ATTACKS()
        specs = (UID_DIVERSITY_SPEC,)
        expected = _serial_outcomes(specs, attacks)
        report = run_campaign(
            specs, attacks, backend=backend, workers=2, rounds_per_turn=100_000
        )
        assert _outcome_bytes(report.outcomes) == _outcome_bytes(expected)

    @pytest.mark.parametrize("backend", ["virtual", "process"])
    def test_halt_campaign_truncation_ordering(self, backend):
        """At one worker, HALT_CAMPAIGN semantics are fully deterministic.

        The first cell is detected (halts), so every later cell must be
        skipped -- never truncated, never finalized -- in submission order,
        on both backends.
        """
        detected = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        benign = next(a for a in standard_uid_attacks() if a.name == "low-bit-flip")
        specs = (UID_DIVERSITY_SPEC,)
        report = run_campaign(
            specs,
            [detected, benign, benign],
            backend=backend,
            workers=1,
            halt="halt-campaign",
        )
        execution = report.execution
        assert [job.skipped for job in execution.jobs] == [False, True, True]
        assert execution.jobs[0].value.kind is OutcomeKind.DETECTED
        assert all(job.value is None for job in execution.skipped_jobs)
        assert execution.truncated_jobs == []


@pytest.mark.slow
class TestCrossBackendParity:
    """The process tier reproduces the virtual tier byte-for-byte.

    Run by ``make check-procs``: the full worker-count x backend sweep is
    too slow for the default suite (each process cell forks real workers).
    """

    @pytest.mark.parametrize("backend", ["virtual", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_standard_matrix_parity(self, backend, workers):
        attacks = [
            next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"),
            next(a for a in standard_uid_attacks() if a.name == "high-bit-flip"),
            standard_address_attacks()[0],
        ]
        specs = (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC, UID_ORBIT_3_SPEC)
        expected = _serial_outcomes(specs, attacks)
        report = run_campaign(specs, attacks, backend=backend, workers=workers)
        assert _outcome_bytes(report.outcomes) == _outcome_bytes(expected), (
            backend,
            workers,
        )
        assert report.execution.backend == backend
        assert report.execution.parallelism == workers

    def test_detection_experiment_backend_parity(self):
        """The full detection matrix agrees across backends."""
        from repro.analysis.experiments import detection

        virtual = detection.run(parallelism=4)
        process = detection.run(parallelism=4, backend="process")
        assert virtual.claim_results() == process.claim_results()
        assert process.all_claims_hold
        assert virtual.uid_report.matrix() == process.uid_report.matrix()
        assert virtual.address_report.matrix() == process.address_report.matrix()


class TestCampaignScheduler:
    """Scheduler mechanics independent of the attack library."""

    def _cell_jobs(self, count, attack=None):
        attack = attack or next(
            a for a in standard_uid_attacks() if a.name == "low-bit-flip"
        )
        jobs = []
        for index in range(count):
            cell = prepare_attack(attack, UID_DIVERSITY_SPEC)
            jobs.append(CampaignJob(name=f"{index}-{cell.name}", start=cell.start, finish=cell.finish))
        return jobs

    def test_empty_campaign(self):
        result = CampaignScheduler([]).run()
        assert result.jobs == [] and result.scheduler_turns == 0
        # No jobs means nothing was measured: the speedup is nan (unmeasured),
        # not 0.0 (measured, infinitely slow).
        assert result.virtual_elapsed == 0 and math.isnan(result.speedup())

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            CampaignScheduler([], parallelism=0)
        with pytest.raises(ValueError):
            CampaignScheduler([], rounds_per_turn=0)
        with pytest.raises(ValueError):
            run_campaign((UID_DIVERSITY_SPEC,), [], parallelism=0)

    def test_worker_accounting_serial_equals_sequential(self):
        jobs = self._cell_jobs(3)
        result = CampaignScheduler(jobs, parallelism=1).run()
        assert result.worker_elapsed == [result.virtual_elapsed_sequential]
        assert result.speedup() == 1.0
        assert result.max_live_sessions == 1

    def test_worker_pool_bounds_live_sessions_and_speeds_up(self):
        jobs = self._cell_jobs(6)
        result = CampaignScheduler(jobs, parallelism=3).run()
        assert result.max_live_sessions == 3
        assert result.max_wait_turns == 0
        assert len(result.completed_jobs) == 6
        assert result.speedup() > 2.0

    def test_halt_campaign_skips_pending_jobs(self):
        detected = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        jobs = self._cell_jobs(1, attack=detected) + self._cell_jobs(4)
        result = CampaignScheduler(
            jobs, parallelism=1, halt_policy=CampaignHaltPolicy.HALT_CAMPAIGN
        ).run()
        assert len(result.jobs) == 5
        # The first job halts (the attack is detected) and, serially, nothing
        # else ever starts.
        assert result.jobs[0].value.kind is OutcomeKind.DETECTED
        assert [job.skipped for job in result.jobs] == [False, True, True, True, True]
        assert all(job.value is None for job in result.skipped_jobs)

    def test_halt_campaign_never_fabricates_outcomes(self):
        """A straggler stopped by the campaign halt must not surface a cell.

        Regression: a force-halted session's finalizer used to classify its
        partial state (e.g. "no alarm" -> no-effect) as if the cell had run;
        now every reported outcome is byte-identical to its serial
        counterpart and truncated cells are excluded entirely.
        """
        attack = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        specs = (UID_DIVERSITY_SPEC, SINGLE_PROCESS_SPEC)
        serial = {
            (o.attack, o.configuration): o for o in _serial_outcomes(specs, [attack])
        }
        report = run_campaign(
            specs,
            [attack],
            parallelism=2,
            rounds_per_turn=1,
            halt="halt-campaign",
        )
        for outcome in report.outcomes:
            assert outcome == serial[(outcome.attack, outcome.configuration)]
        execution = report.execution
        assert len(report.outcomes) + len(execution.truncated_jobs) + len(
            execution.skipped_jobs
        ) == len(serial)
        # The detected cell halts first, so the longer single-process cell is
        # truncated mid-run rather than misreported.
        assert len(execution.truncated_jobs) == 1
        assert all(job.value is None for job in execution.truncated_jobs)

    def test_report_omits_skipped_cells_but_keeps_execution_record(self):
        detected = next(
            a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"
        )
        report = run_campaign(
            (UID_DIVERSITY_SPEC, SINGLE_PROCESS_SPEC),
            [detected],
            parallelism=1,
            halt="halt-campaign",
        )
        assert len(report.outcomes) == 1
        assert report.outcomes[0].kind is OutcomeKind.DETECTED
        assert len(report.execution.skipped_jobs) == 1


class TestOrbitVariation:
    """The N-way UID orbit: masks, registry resolution, builder injection."""

    def test_default_masks_are_pairwise_distinct_31_bit(self):
        from repro.core.variations.uid import default_uid_masks

        for count in (2, 3, 8, 16):
            masks = default_uid_masks(count)
            assert len(masks) == count == len(set(masks))
            assert masks[0] == 0
            assert all(0 <= mask <= 0x7FFFFFFF for mask in masks)

    def test_masks_need_at_least_two_variants(self):
        from repro.core.variations.uid import default_uid_masks

        with pytest.raises(ValueError):
            default_uid_masks(1)

    def test_injected_value_decodes_pairwise_differently(self):
        from repro.core.variations.uid import OrbitUIDVariation

        variation = OrbitUIDVariation(num_variants=4)
        injected = 0  # the attacker wants root
        decoded = [variation.decode(i, injected) for i in range(4)]
        assert len(set(decoded)) == 4

    def test_builders_forward_spec_num_variants(self):
        from repro.api.builders import build_variations

        spec = uid_orbit_spec(5)
        (variation,) = build_variations(spec)
        assert variation.num_variants == 5

    def test_spec_params_can_pin_num_variants(self):
        from repro.api.builders import build_variations
        from repro.api.registry import VariationParameterError

        spec = SystemSpec(
            name="mismatch",
            num_variants=3,
            variations=({"name": "uid", "params": {"num_variants": 2}},),
        )
        # The pinned factory count wins at creation; the stack then rejects
        # the mismatch against the system's variant count.
        with pytest.raises(ValueError, match="system wants 3"):
            from repro.api.builders import build_session
            from repro.kernel.host import build_standard_host

            build_session(spec, build_standard_host(), lambda context: iter(()))

        # And an impossible count surfaces as a typed parameter error.
        bad = SystemSpec(name="bad", num_variants=3, variations=("uid",))
        with pytest.raises(VariationParameterError):
            build_variations(bad)

    def test_orbit_round_trips_through_json_scenario(self):
        spec = SystemSpec.from_json(UID_ORBIT_3_SPEC.to_json())
        assert spec == UID_ORBIT_3_SPEC
        assert spec.num_variants == 3


class TestCampaignCLI:
    def _write_scenario(self, tmp_path, data):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_campaign_scenario_end_to_end(self, tmp_path, capsys):
        from repro.api.cli import main as cli_main

        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "campaign",
                "systems": [
                    SINGLE_PROCESS_SPEC.to_dict(),
                    UID_ORBIT_3_SPEC.to_dict(),
                ],
                "attacks": ["full-word-root-overwrite", "partial-1-byte-overwrite"],
                "parallelism": 4,
                "output": "json",
            },
        )
        assert cli_main(["run", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"]["full-word-root-overwrite"]["3-variant-uid-orbit"] == "detected"
        assert payload["execution"]["parallelism"] == 4
        assert payload["execution"]["jobs"] == 4
        assert payload["execution"]["speedup"] > 1.0

    def test_parallelism_flag_overrides_scenario(self, tmp_path, capsys):
        from repro.api.cli import main as cli_main

        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "campaign",
                "systems": [SINGLE_PROCESS_SPEC.to_dict()],
                "attacks": ["low-bit-flip"],
                "parallelism": 1,
                "output": "json",
            },
        )
        assert cli_main(["run", str(path), "--parallelism", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["execution"]["parallelism"] == 3

    def test_parallelism_flag_rejected_for_throughput(self, tmp_path, capsys):
        from repro.api.cli import main as cli_main

        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "throughput",
                "fleet": {"system": {"name": "s"}, "workload": {"total_requests": 2}},
            },
        )
        assert cli_main(["run", str(path), "--parallelism", "2"]) == 2
        assert "do not accept --parallelism" in capsys.readouterr().err

    def test_bad_halt_policy_is_a_clean_error(self, tmp_path, capsys):
        from repro.api.cli import main as cli_main

        path = self._write_scenario(
            tmp_path, {"scenario": "campaign", "halt": "sometimes"}
        )
        assert cli_main(["run", str(path)]) == 2
        assert "halt must be one of" in capsys.readouterr().err

    def test_campaign_example_scenario_validates(self):
        from pathlib import Path

        from repro.api.builders import build_variations
        from repro.api.cli import load_scenario

        scenarios = Path(__file__).resolve().parents[1] / "examples" / "scenarios"
        data = load_scenario(scenarios / "campaign.json")
        assert data["scenario"] == "campaign"
        specs = [SystemSpec.from_dict(entry) for entry in data["systems"]]
        assert any(spec.num_variants >= 3 for spec in specs)
        for spec in specs:
            build_variations(spec)


class TestExperimentParallelism:
    def test_detection_experiment_matrix_is_parallelism_invariant(self):
        """The migrated experiment produces the same claims at any worker count."""
        from repro.analysis.experiments import detection

        serial = detection.run(parallelism=1)
        parallel = detection.run(parallelism=8)
        assert serial.claim_results() == parallel.claim_results()
        assert parallel.all_claims_hold
        assert serial.uid_report.matrix() == parallel.uid_report.matrix()
