"""Property and regression tests for the N-ary partition-scheme API.

The :class:`~repro.memory.partition.PartitionScheme` protocol carries the
paper's whole security argument, so its invariants are pinned for *every*
registered scheme across N in 2..8:

* **round-trip** -- ``untranslate(i, translate(i, x)) == x`` everywhere
  (normal equivalence);
* **disjoint inverses** -- an injected concrete value decodes pairwise
  differently (detection);
* **placement** -- for region-carving schemes,
  ``partition_of(translate(i, a)) == i`` for every in-capacity nominal
  address, and the partitions are pairwise disjoint as sets.

The second half covers the layers rebased onto the protocol: the
:class:`~repro.memory.address_space.AddressSpace` regression the ISSUE
names (base offsets per partition, the once-dead ``partition_base``
conditional), registry/spec round-trips for ``"address-orbit"``, and the
memory-attack / corruption-model behaviour at N >= 3.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.builders import build_variations
from repro.api.registry import registry
from repro.api.spec import (
    ADDRESS_ORBIT_3_SPEC,
    COMBINED_ORBIT_3_SPEC,
    SystemSpec,
    address_orbit_spec,
    combined_orbit_spec,
)
from repro.core.variations.address import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    OrbitAddressPartitioning,
)
from repro.core.variations.uid import OrbitUIDVariation
from repro.kernel.errors import SegmentationFault
from repro.memory.address_space import AddressSpace, PARTITION_BIT
from repro.memory.corruption import (
    CorruptionSpec,
    corruption_outcomes,
    detectable_by_disjoint_inverses,
)
from repro.memory.memory_model import MemoryRegion
from repro.memory.partition import (
    ExtendedOrbitScheme,
    HighBitScheme,
    OrbitScheme,
    PartitionScheme,
    PartitionSchemeError,
    SCHEMES,
    XorMaskScheme,
    create_scheme,
    scheme_kinds,
)

#: Variant counts the property suite sweeps.
SWEPT_COUNTS = tuple(range(2, 9))


def _registered_schemes(num_partitions: int) -> list[PartitionScheme]:
    """Every registered scheme instantiable at *num_partitions*."""
    schemes = []
    for kind in scheme_kinds():
        try:
            schemes.append(create_scheme(kind, num_partitions))
        except PartitionSchemeError:
            # e.g. the paper's high-bit scheme only exists at N=2.
            assert kind == "high-bit" and num_partitions != 2
    return schemes


def _scheme_id(scheme: PartitionScheme) -> str:
    return f"{scheme.kind}-N{scheme.num_partitions}"


ALL_SCHEMES = [scheme for n in SWEPT_COUNTS for scheme in _registered_schemes(n)]

concrete_values = st.integers(min_value=0, max_value=2**32 - 1)


class TestSchemeInvariants:
    """The protocol invariants, for every registered scheme and N in 2..8."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=_scheme_id)
    @settings(max_examples=40)
    @given(value=concrete_values)
    def test_translate_untranslate_round_trips(self, scheme, value):
        for index in range(scheme.num_partitions):
            assert scheme.untranslate(index, scheme.translate(index, value)) == value
            assert scheme.translate(index, scheme.untranslate(index, value)) == value

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=_scheme_id)
    @settings(max_examples=40)
    @given(value=concrete_values)
    def test_inverses_are_pairwise_disjoint(self, scheme, value):
        assert scheme.disjoint_at(value), (
            f"{scheme.kind}: injected 0x{value:08X} decodes identically in two variants"
        )

    @pytest.mark.parametrize(
        "scheme", [s for s in ALL_SCHEMES if s.carves_regions], ids=_scheme_id
    )
    @settings(max_examples=40)
    @given(data=st.data())
    def test_placement_invariant(self, scheme, data):
        nominal = data.draw(
            st.integers(min_value=0, max_value=scheme.nominal_capacity - 1)
        )
        for index in range(scheme.num_partitions):
            assert scheme.partition_of(scheme.translate(index, nominal)) == index

    @pytest.mark.parametrize(
        "scheme", [s for s in ALL_SCHEMES if s.carves_regions], ids=_scheme_id
    )
    @settings(max_examples=40)
    @given(value=concrete_values)
    def test_partitions_are_pairwise_disjoint_sets(self, scheme, value):
        """A concrete value belongs to at most one partition."""
        owner = scheme.partition_of(value)
        assert owner is None or 0 <= owner < scheme.num_partitions

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=_scheme_id)
    def test_reexpressions_cover_every_partition(self, scheme):
        functions = scheme.reexpressions()
        assert len(functions) == scheme.num_partitions
        for index, function in enumerate(functions):
            assert function.forward(0x1234) == scheme.translate(index, 0x1234)
            assert function.inverse(function.forward(0x1234)) == 0x1234


class TestSchemeRegistry:
    def test_registered_kinds(self):
        assert {"high-bit", "orbit", "extended-orbit", "uid-xor"} <= set(SCHEMES)

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(PartitionSchemeError, match="unknown partition scheme"):
            create_scheme("no-such-scheme", 2)

    def test_high_bit_is_the_paper_scheme(self):
        scheme = create_scheme("high-bit", 2)
        assert scheme.base_of(0) == 0
        assert scheme.base_of(1) == PARTITION_BIT

    def test_high_bit_rejects_other_counts(self):
        with pytest.raises(PartitionSchemeError):
            create_scheme("high-bit", 3)

    def test_orbit_matches_high_bit_at_two(self):
        orbit, high = OrbitScheme(2), HighBitScheme()
        for index in range(2):
            assert orbit.base_of(index) == high.base_of(index)

    def test_extended_orbit_offset_validation(self):
        with pytest.raises(PartitionSchemeError):
            ExtendedOrbitScheme(2, offset=0)
        with pytest.raises(PartitionSchemeError):
            ExtendedOrbitScheme(4, offset=1 << 30)

    def test_xor_masks_must_be_pairwise_distinct(self):
        with pytest.raises(PartitionSchemeError):
            XorMaskScheme((0, 1, 1))

    def test_xor_masks_must_leave_the_sign_bit_clear(self):
        """The Section 3.2 constraint is structural: a sign-bit mask would
        re-express valid UIDs into values the kernel refuses (the rejected
        full-flip design), so the scheme rejects it at construction."""
        with pytest.raises(PartitionSchemeError, match="sign bit"):
            XorMaskScheme((0, 0xFFFFFFFF))
        with pytest.raises(PartitionSchemeError, match="sign bit"):
            XorMaskScheme((0, 0x7FFFFFFF, 0x80000001))

    def test_too_few_partitions_rejected(self):
        with pytest.raises(PartitionSchemeError):
            OrbitScheme(1)

    def test_index_out_of_range_rejected(self):
        scheme = OrbitScheme(3)
        with pytest.raises(PartitionSchemeError):
            scheme.base_of(3)
        with pytest.raises(PartitionSchemeError):
            scheme.translate(-1, 0)


class TestAddressSpaceRebase:
    """The AddressSpace regression pins from the scheme rebase."""

    #: The ISSUE's regression test: base offsets per partition, per scheme.
    EXPECTED_BASES = {
        ("high-bit", 2): (0x00000000, 0x80000000),
        ("orbit", 2): (0x00000000, 0x80000000),
        ("orbit", 3): (0x00000000, 0x40000000, 0x80000000),
        ("orbit", 4): (0x00000000, 0x40000000, 0x80000000, 0xC0000000),
        ("orbit", 5): (
            0x00000000,
            0x20000000,
            0x40000000,
            0x60000000,
            0x80000000,
        ),
        ("extended-orbit", 2): (0x00000000, 0x80010000),
        ("extended-orbit", 3): (0x00000000, 0x40010000, 0x80020000),
    }

    @pytest.mark.parametrize("key", sorted(EXPECTED_BASES))
    def test_partition_base_offsets_pinned(self, key):
        kind, count = key
        scheme = create_scheme(kind, count)
        bases = tuple(
            AddressSpace(scheme=scheme, index=index).partition_base()
            for index in range(count)
        )
        assert bases == self.EXPECTED_BASES[key]

    def test_partition_zero_base_is_always_zero(self):
        """The once-dead conditional's contract: partition 0 (and the
        unpartitioned space) add no offset, whatever the scheme's offset."""
        assert AddressSpace().partition_base() == 0
        for scheme in (HighBitScheme(), OrbitScheme(5), ExtendedOrbitScheme(3, offset=0x123)):
            assert AddressSpace(scheme=scheme, index=0).partition_base() == 0

    def test_legacy_partition_flag_is_gone(self):
        with pytest.raises(TypeError):
            AddressSpace(partition=1)
        with pytest.raises(TypeError):
            AddressSpace(partition=0, base_offset=0x10000)

    def test_unpartitioned_space_rejects_nonzero_index(self):
        with pytest.raises(ValueError):
            AddressSpace(index=1)

    def test_mask_scheme_cannot_back_an_address_space(self):
        with pytest.raises(ValueError, match="carve"):
            AddressSpace(scheme=XorMaskScheme.for_uids(3), index=1)

    def test_region_overhanging_the_partition_is_rejected_at_map_time(self):
        """A nominal base legal under the wide N=2 split must be rejected by
        a narrower scheme when it maps, not fault later mid-workload."""
        wide = AddressSpace(scheme=HighBitScheme(), index=0)
        wide.map_region(MemoryRegion("x", 0x50000000, 64))  # fits in 2^31
        narrow = AddressSpace(scheme=OrbitScheme(3), index=0)
        with pytest.raises(ValueError, match="capacity"):
            narrow.map_region(MemoryRegion("x", 0x50000000, 64))  # > 2^30

    def test_region_straddling_the_capacity_boundary_is_rejected(self):
        scheme = OrbitScheme(4)  # capacity 2^30 per partition
        space = AddressSpace(scheme=scheme, index=2)
        space.map_region(MemoryRegion("edge", scheme.nominal_capacity - 64, 64))
        with pytest.raises(ValueError, match="capacity"):
            AddressSpace(scheme=scheme, index=2).map_region(
                MemoryRegion("straddle", scheme.nominal_capacity - 32, 64)
            )

    @pytest.mark.parametrize("count", (3, 4, 5))
    def test_injected_address_valid_in_exactly_one_of_n_variants(self, count):
        scheme = OrbitScheme(count)
        spaces = [AddressSpace(scheme=scheme, index=i) for i in range(count)]
        for space in spaces:
            space.map_region(MemoryRegion("data", 0x1000, 64))
        injected = spaces[1].translate(0x1010)  # variant 1's concrete address
        outcomes = []
        for space in spaces:
            try:
                space.dereference(injected)
                outcomes.append("ok")
            except SegmentationFault:
                outcomes.append("fault")
        assert outcomes.count("ok") == 1
        assert outcomes.count("fault") == count - 1


class TestVariationsOnSchemes:
    """The variation layer is a thin wrapper over the scheme protocol."""

    @pytest.mark.parametrize("count", (2, 3, 5))
    def test_orbit_partitioning_spaces_are_pairwise_disjoint(self, count):
        variation = OrbitAddressPartitioning(count)
        bases = [variation.make_address_space(i).partition_base() for i in range(count)]
        assert len(set(bases)) == count

    def test_address_partitioning_defaults_to_the_paper_scheme(self):
        assert AddressPartitioning().scheme.kind == "high-bit"
        assert AddressPartitioning(3).scheme.kind == "orbit"

    def test_scheme_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="partitions"):
            AddressPartitioning(2, scheme=OrbitScheme(3))

    def test_mask_scheme_rejected_for_address_partitioning(self):
        with pytest.raises(ValueError, match="region-carving"):
            AddressPartitioning(3, scheme=XorMaskScheme.for_uids(3))

    @pytest.mark.parametrize("count", (2, 3, 4))
    def test_extended_partitioning_is_n_ary(self, count):
        variation = ExtendedAddressPartitioning(offset=0x10000, num_variants=count)
        bases = [variation.make_address_space(i).partition_base() for i in range(count)]
        assert len(set(base & 0x00FFFFFF for base in bases)) == count, (
            "the Bruschi slide must change the low 3 bytes per variant"
        )

    def test_uid_orbit_masks_come_from_the_shared_scheme(self):
        variation = OrbitUIDVariation(4)
        assert isinstance(variation.scheme, XorMaskScheme)
        assert variation.masks == variation.scheme.masks
        for index in range(4):
            assert variation.encode(index, 0) == variation.scheme.translate(index, 0)

    def test_uid_orbit_accepts_a_custom_scheme(self):
        scheme = XorMaskScheme((0, 0x0000FFFF, 0x00FF00FF))
        variation = OrbitUIDVariation(3, scheme=scheme)
        assert variation.masks == (0, 0x0000FFFF, 0x00FF00FF)

    def test_uid_orbit_scheme_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="masks"):
            OrbitUIDVariation(3, scheme=XorMaskScheme.for_uids(4))


class TestAddressOrbitRegistryAndSpecs:
    """Registry and spec round-trips for the new address-orbit entry."""

    def test_registry_resolves_name_and_alias(self):
        assert "address-orbit" in registry
        by_name = registry.create("address-orbit", {"num_variants": 4})
        by_alias = registry.create("address-orbit-partitioning", {"num_variants": 4})
        assert type(by_name) is type(by_alias) is OrbitAddressPartitioning
        assert by_name.num_variants == 4

    def test_builders_forward_num_variants_into_the_scheme(self):
        for count in (3, 5, 7):
            variations = build_variations(address_orbit_spec(count))
            assert len(variations) == 1
            assert variations[0].num_variants == count
            assert variations[0].scheme.num_partitions == count

    @pytest.mark.parametrize(
        "spec",
        [
            ADDRESS_ORBIT_3_SPEC,
            COMBINED_ORBIT_3_SPEC,
            address_orbit_spec(5),
            combined_orbit_spec(4),
        ],
        ids=lambda spec: spec.name,
    )
    def test_spec_json_round_trip(self, spec):
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_combined_spec_builds_both_families(self):
        variations = build_variations(COMBINED_ORBIT_3_SPEC)
        assert [type(v) for v in variations] == [OrbitAddressPartitioning, OrbitUIDVariation]
        assert all(v.num_variants == 3 for v in variations)


class TestMemoryAttacksAtN3:
    """The attack library against N >= 3 partitions (end to end)."""

    @pytest.mark.parametrize(
        "spec",
        [ADDRESS_ORBIT_3_SPEC, COMBINED_ORBIT_3_SPEC, address_orbit_spec(4)],
        ids=lambda spec: spec.name,
    )
    def test_every_standard_address_attack_detected(self, spec):
        from repro.attacks.memory_attacks import (
            run_address_attack_nvariant,
            standard_address_attacks,
        )

        for attack in standard_address_attacks():
            outcome = run_address_attack_nvariant(attack, spec)
            assert outcome.detected, outcome.describe()
            assert not outcome.goal_reached

    def test_combined_orbit_detects_uid_attacks_too(self):
        from repro.attacks.outcomes import OutcomeKind
        from repro.attacks.uid_attacks import run_uid_attack, standard_uid_attacks

        for attack in standard_uid_attacks():
            if attack.name in ("low-bit-flip", "high-bit-flip"):
                continue  # the documented bit-granular exclusions
            outcome = run_uid_attack(attack, COMBINED_ORBIT_3_SPEC)
            assert outcome.kind is OutcomeKind.DETECTED, outcome.describe()


class TestCorruptionModelAtN:
    """corruption.py's analytical model, generalised to any variant count."""

    @pytest.mark.parametrize("count", (2, 3, 5))
    def test_full_word_overwrite_detected_by_any_orbit(self, count):
        scheme = XorMaskScheme.for_uids(count)
        originals = tuple(scheme.translate(i, 33) for i in range(count))
        post = corruption_outcomes(originals, CorruptionSpec(kind="full-word", payload=0))
        assert post == (0,) * count
        inverses = [f.inverse for f in scheme.reexpressions(domain="uid")]
        assert detectable_by_disjoint_inverses(post, inverses)

    @pytest.mark.parametrize("count", (3, 4))
    def test_partial_overwrite_detected_at_n(self, count):
        scheme = XorMaskScheme.for_uids(count)
        originals = tuple(scheme.translate(i, 33) for i in range(count))
        spec = CorruptionSpec(kind="partial-bytes", payload=0, byte_count=2)
        post = corruption_outcomes(originals, spec)
        inverses = [f.inverse for f in scheme.reexpressions(domain="uid")]
        assert detectable_by_disjoint_inverses(post, inverses)

    def test_identical_corruption_without_diversity_is_missed(self):
        """N identical variants (mask 0 everywhere is illegal, so emulate
        with identity inverses): same post value decodes identically."""
        post = (0, 0, 0)
        identity = lambda value: value  # noqa: E731 - three references needed
        assert not detectable_by_disjoint_inverses(post, [identity] * 3)
