"""The multi-process master/worker tier: pool mechanics without the attack layer.

These tests exercise :mod:`repro.engine.procpool` with tiny module-level
runners (resolved inside the forked workers via their ``"module:function"``
references), so they pin the engine-layer contract -- job validation,
lifecycle, submission-order marshalling, work stealing, halt semantics, and
failure propagation -- independently of :mod:`repro.api.campaign`'s cell
payloads.  The cross-backend byte-parity sweep lives in
``test_campaign_parallel.py`` (``make check-procs``).
"""

import math
import os
import time

import pytest

from repro.engine.campaign import CampaignHaltPolicy
from repro.engine.procpool import (
    ProcessCampaignExecutor,
    ProcessJob,
    ProcessWorkerPool,
    WorkerError,
    resolve_runner,
    run_process_jobs,
)
from repro.engine.session import SessionState


# ---------------------------------------------------------------------------
# Worker-side runners (must be importable module-level functions)
# ---------------------------------------------------------------------------


def echo_runner(payload):
    """Complete immediately with the payload's value and cost."""
    if payload.get("sleep"):
        time.sleep(payload["sleep"])
    return {
        "state": SessionState.COMPLETED.value,
        "rounds": payload.get("rounds", 1),
        "virtual_elapsed": payload.get("cost", 10),
        "value": payload.get("value"),
    }


def halting_runner(payload):
    """Finish in the HALTED terminal state (a detected attack cell)."""
    return {
        "state": SessionState.HALTED.value,
        "rounds": 1,
        "virtual_elapsed": payload.get("cost", 5),
        "value": payload.get("value", "alarm"),
    }


def failing_runner(payload):
    """Raise inside the worker."""
    raise RuntimeError(f"boom: {payload.get('value')}")


def incomplete_runner(payload):
    """Violate the result-key contract."""
    return {"state": None, "value": None}


def dying_runner(payload):
    """Kill the worker process outright (no result ever ships)."""
    os._exit(3)


def _job(name, runner="test_procpool:echo_runner", **payload):
    return ProcessJob(name=name, runner=runner, payload=payload)


# ---------------------------------------------------------------------------
# Job validation and runner resolution (no processes involved)
# ---------------------------------------------------------------------------


class TestJobAndRunner:
    def test_runner_reference_must_have_module_and_function(self):
        with pytest.raises(ValueError, match="module:function"):
            ProcessJob(name="bad", runner="no-colon-here")
        with pytest.raises(ValueError, match="module:function"):
            resolve_runner(":dangling")
        with pytest.raises(ValueError, match="module:function"):
            resolve_runner("dangling:")

    def test_resolve_runner_imports_the_callable(self):
        assert resolve_runner("test_procpool:echo_runner") is echo_runner

    def test_resolve_runner_rejects_non_callables(self):
        with pytest.raises(ValueError, match="did not resolve to a callable"):
            resolve_runner("test_procpool:DEFAULT_NOT_CALLABLE")

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            ProcessCampaignExecutor(workers=0)
        with pytest.raises(ValueError):
            ProcessCampaignExecutor(rounds_per_turn=0)
        with pytest.raises(ValueError):
            ProcessWorkerPool(0)


DEFAULT_NOT_CALLABLE = "just data"


# ---------------------------------------------------------------------------
# Pool lifecycle and the master loop
# ---------------------------------------------------------------------------


class TestProcessWorkerPool:
    def test_run_requires_a_started_pool(self):
        pool = ProcessWorkerPool(1)
        assert not pool.started
        with pytest.raises(WorkerError, match="not started"):
            pool.run([_job("a")])

    def test_pool_is_reusable_across_runs(self):
        with ProcessWorkerPool(2) as pool:
            assert pool.started
            first = pool.run([_job("a", value=1), _job("b", value=2)])
            second = pool.run([_job("c", value=3)])
        assert not pool.started
        assert [r.value for r in first.jobs] == [1, 2]
        assert [r.value for r in second.jobs] == [3]

    def test_results_come_back_in_submission_order(self):
        """Completion order is scrambled by sleeps; report order must not be."""
        jobs = [
            _job("slow", value="slow", sleep=0.15),
            _job("fast-1", value="fast-1"),
            _job("fast-2", value="fast-2"),
            _job("fast-3", value="fast-3"),
        ]
        result = run_process_jobs(jobs, workers=2)
        assert [r.value for r in result.jobs] == ["slow", "fast-1", "fast-2", "fast-3"]
        assert [r.index for r in result.jobs] == [0, 1, 2, 3]
        assert result.backend == "process"

    def test_idle_workers_steal_from_loaded_backlogs(self):
        """Round-robin sharding gives worker 0 all the slow jobs; worker 1
        drains its own queue and must steal the rest."""
        jobs = []
        for index in range(6):
            # Even indices shard to worker 0, odd to worker 1.
            sleep = 0.12 if index % 2 == 0 else 0.0
            jobs.append(_job(f"job-{index}", value=index, sleep=sleep, cost=7))
        result = run_process_jobs(jobs, workers=2)
        assert result.steals > 0
        assert [r.value for r in result.jobs] == list(range(6))
        assert len(result.completed_jobs) == 6
        assert sum(result.worker_elapsed) == 6 * 7

    def test_worker_exception_propagates_with_traceback(self):
        with pytest.raises(WorkerError, match="boom: 42"):
            run_process_jobs([_job("ok"), _job("bad", runner="test_procpool:failing_runner", value=42)], workers=1)

    def test_result_key_contract_is_enforced(self):
        with pytest.raises(WorkerError, match="missing keys"):
            run_process_jobs([_job("bad", runner="test_procpool:incomplete_runner")], workers=1)

    def test_dead_worker_is_detected_not_waited_on(self):
        with pytest.raises(WorkerError, match="died mid-campaign"):
            run_process_jobs([_job("dies", runner="test_procpool:dying_runner")], workers=1)

    def test_wedged_fleet_times_out(self):
        with pytest.raises(WorkerError, match="wedged"):
            run_process_jobs([_job("slow", sleep=5.0)], workers=1, job_timeout=0.5)


class TestProcessCampaignExecutor:
    def test_empty_jobs_short_circuit_without_forking(self):
        result = ProcessCampaignExecutor([], workers=4).run()
        assert result.jobs == []
        assert result.backend == "process"
        assert result.parallelism == 4
        assert math.isnan(result.speedup())

    def test_fleet_clamped_to_jobs_but_reports_requested_workers(self):
        result = run_process_jobs([_job("a", cost=3), _job("b", cost=4)], workers=8)
        assert result.parallelism == 8
        assert len(result.worker_elapsed) == 8
        # Only two workers can have run anything.
        assert sum(1 for elapsed in result.worker_elapsed if elapsed) <= 2
        assert result.virtual_elapsed_sequential == 7

    def test_borrowed_pool_is_neither_started_nor_closed(self):
        with ProcessWorkerPool(2) as pool:
            result = run_process_jobs([_job("a", value="a")], workers=5, pool=pool)
            assert pool.started
        assert result.jobs[0].value == "a"
        # The borrowed pool's size bounds execution; the request is recorded.
        assert result.parallelism == 5

    def test_halt_campaign_skips_queued_jobs(self):
        jobs = [
            _job("halts", runner="test_procpool:halting_runner"),
            _job("never-1"),
            _job("never-2"),
        ]
        result = run_process_jobs(
            jobs, workers=1, halt_policy=CampaignHaltPolicy.HALT_CAMPAIGN
        )
        assert result.jobs[0].state is SessionState.HALTED
        assert result.jobs[0].value == "alarm"
        assert [r.skipped for r in result.jobs] == [False, True, True]
        assert all(r.value is None for r in result.skipped_jobs)

    def test_halt_campaign_truncates_in_flight_cells(self):
        """A sibling already running when the halt lands loses its value."""
        jobs = [
            _job("halts", runner="test_procpool:halting_runner"),
            _job("in-flight", value="should-drop", sleep=0.3),
            _job("queued-1"),
            _job("queued-2"),
        ]
        result = run_process_jobs(
            jobs, workers=2, halt_policy=CampaignHaltPolicy.HALT_CAMPAIGN
        )
        assert result.jobs[0].state is SessionState.HALTED
        truncated = result.truncated_jobs
        assert [r.name for r in truncated] == ["in-flight"]
        assert all(r.value is None for r in truncated)
        # Everything still queued when the halt landed was skipped.
        assert {r.name for r in result.skipped_jobs} == {"queued-1", "queued-2"}

    def test_per_cell_policy_ignores_halts(self):
        jobs = [_job("halts", runner="test_procpool:halting_runner"), _job("runs", value="ran")]
        result = run_process_jobs(jobs, workers=1)
        assert result.jobs[0].state is SessionState.HALTED
        assert result.jobs[1].value == "ran"
        assert result.skipped_jobs == [] and result.truncated_jobs == []
