"""Seed-derivation stability and partition-boundary (EFAULT-edge) properties.

Two foundations the scenario corpus leans on get pinned here.
:func:`~repro.api.seeding.derive_seed` must be *stable across releases* --
a corpus generated at seed S claims to regenerate byte-identically, which
dies silently if the derivation ever changes -- so its exact values are
snapshot-pinned alongside hypothesis properties for determinism and
distinctness.  And :func:`~repro.memory.partition.boundary_values` must
enumerate real guarantee edges: one below every partition's first concrete
value and one past its last, ``untranslate`` must land outside the nominal
capacity -- the EFAULT edge where a variant's dereference faults -- for
every region-carving scheme at every N in 2..8.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.seeding import derive_seed
from repro.kernel.errors import SegmentationFault
from repro.memory.address_space import AddressSpace
from repro.memory.partition import (
    GLOBAL_EDGE_VALUES,
    VALUE_MASK,
    XorMaskScheme,
    boundary_values,
    create_scheme,
)
from repro.memory.memory_model import MemoryRegion

COUNTS = tuple(range(2, 9))

#: Region-carving scheme builders swept over N (high-bit is N=2 only).
CARVING_SCHEMES = [
    pytest.param(n, kind, param_id, id=f"{param_id}-n{n}")
    for n in COUNTS
    for kind, param_id in (
        ("orbit", "orbit"),
        ("extended-orbit", "extended-orbit"),
        ("keyed-orbit", "keyed-orbit"),
        ("keyed-address", "keyed-address"),
    )
] + [pytest.param(2, "high-bit", "high-bit", id="high-bit-n2")]


def _build(kind: str, n: int):
    if kind.startswith("keyed"):
        return create_scheme(kind, n, seed=derive_seed(20080625, "boundary", kind, n))
    return create_scheme(kind, n)


_labels = st.lists(
    st.one_of(st.integers(), st.text(max_size=12)), min_size=0, max_size=4
)


class TestDeriveSeed:
    """The corpus's determinism rests on this exact function."""

    def test_pinned_snapshot_values(self):
        # These integers must never change: committed corpora, keyed-spec
        # masks and BENCH baselines all flow from them.
        assert derive_seed(20080625) == 4984890044155200635
        assert derive_seed(20080625, "keyed-uid", 2) == 241059225242527006
        assert derive_seed(0) == 3456079177858693020
        assert derive_seed(1, "a", "b") == 8130363559398102941

    @settings(max_examples=200)
    @given(root=st.integers(min_value=0, max_value=2**63 - 1), labels=_labels)
    def test_deterministic_and_63_bit(self, root, labels):
        first = derive_seed(root, *labels)
        assert first == derive_seed(root, *labels)
        assert 0 <= first < 2**63

    @settings(max_examples=200)
    @given(
        root=st.integers(min_value=0, max_value=2**32),
        a=_labels,
        b=_labels,
    )
    def test_distinct_label_paths_give_distinct_seeds(self, root, a, b):
        if list(map(str, a)) == list(map(str, b)):
            assert derive_seed(root, *a) == derive_seed(root, *b)
        else:
            assert derive_seed(root, *a) != derive_seed(root, *b)

    @settings(max_examples=100)
    @given(
        roots=st.sets(st.integers(min_value=0, max_value=2**63 - 1), min_size=2, max_size=2),
        labels=_labels,
    )
    def test_distinct_roots_give_distinct_seeds(self, roots, labels):
        first, second = sorted(roots)
        assert derive_seed(first, *labels) != derive_seed(second, *labels)


class TestPartitionBoundaries:
    """boundary_values enumerates the EFAULT edge of every carving scheme."""

    @pytest.mark.parametrize("n,kind,_id", CARVING_SCHEMES)
    def test_untranslate_misses_at_every_partition_edge(self, n, kind, _id):
        scheme = _build(kind, n)
        capacity = scheme.nominal_capacity
        by_label = {entry.label: entry for entry in boundary_values(scheme)}
        for index in range(n):
            first = by_label.get(f"p{index}-first")
            last = by_label.get(f"p{index}-last")
            if first is not None:
                # In-bounds side: the placement invariant holds at the edge.
                assert scheme.partition_of(first.value) == index
                assert 0 <= scheme.untranslate(index, first.value) < capacity
            if last is not None:
                assert scheme.partition_of(last.value) == index
                assert 0 <= scheme.untranslate(index, last.value) < capacity
            for edge in (f"p{index}-below", f"p{index}-past"):
                entry = by_label.get(edge)
                if entry is None:
                    continue  # deduped into a neighbour's first/last
                # The EFAULT edge: one step out, variant *index*'s inverse
                # map lands outside the nominal capacity and a dereference
                # must fault.
                assert scheme.untranslate(index, entry.value) >= capacity, edge

    @pytest.mark.parametrize("n", COUNTS)
    def test_mask_scheme_edges_are_the_masks(self, n):
        scheme = XorMaskScheme.for_uids(n)
        entries = boundary_values(scheme)
        by_label = {entry.label: entry.value for entry in entries}
        for index, mask in enumerate(scheme.masks):
            label = f"p{index}-mask"
            if label in by_label:  # mask 0 dedupes into the global "zero"
                assert by_label[label] == mask
        # Every global 32-bit edge value is present (whatever label won the
        # dedupe -- mask 0 and the "zero" edge share a concrete value).
        values = {entry.value for entry in entries}
        assert {value for _, value in GLOBAL_EDGE_VALUES} <= values

    @pytest.mark.parametrize("n", COUNTS)
    def test_boundary_enumeration_is_deterministic(self, n):
        scheme = create_scheme("orbit", n)
        assert boundary_values(scheme) == boundary_values(create_scheme("orbit", n))

    @pytest.mark.parametrize("n", COUNTS)
    def test_past_boundary_dereference_faults_in_the_address_space(self, n):
        scheme = create_scheme("orbit", n)
        capacity = scheme.nominal_capacity
        for index in range(n):
            space = AddressSpace(scheme=scheme, index=index)
            space.map_region(MemoryRegion("edge", capacity - 64, 64))
            # The last in-capacity word reads; one past the edge faults.
            space.dereference(scheme.translate(index, capacity - 4))
            with pytest.raises(SegmentationFault):
                space.dereference((scheme.base_of(index) + capacity) & VALUE_MASK)
