"""Concurrent multi-session engine: determinism, halt policies, fresh stats.

The engine's claim is that interleaving changes *scheduling*, never
*behaviour*: N sessions run concurrently must produce exactly the alarms and
HTTP responses of the same N sessions run back-to-back, and one session's
alarm must stop only that session under the per-session halt policy.
"""

import dataclasses

import pytest

from repro.apps.clients.webbench import WebBenchWorkload, drive_engine
from repro.apps.httpd.server import make_httpd_factory
from repro.attacks.payloads import benign_request, uid_overwrite_payload
from repro.core.nvariant import NVariantSystem
from repro.core.variations.address import AddressPartitioning
from repro.core.variations.uid import UIDVariation
from repro.engine import (
    HaltPolicy,
    MultiSessionEngine,
    NVariantSession,
    SessionState,
    run_sessions,
)
from repro.kernel.host import HTTP_PORT, build_standard_host


def _variations():
    return [AddressPartitioning(), UIDVariation()]


def _httpd_session(name, payloads, *, max_requests=None):
    """A 2-variant transformed httpd session on its own host, pre-loaded."""
    kernel = build_standard_host()
    for payload in payloads:
        kernel.client_connect(HTTP_PORT, payload)
    factory = make_httpd_factory(
        transformed=True, max_requests=max_requests if max_requests is not None else len(payloads)
    )
    session = NVariantSession(kernel, factory, _variations(), name=name)
    return kernel, session


def _benign_payloads(count, path="/index.html"):
    return [benign_request(path) for _ in range(count)]


def _responses(kernel):
    return [conn.response_bytes() for conn in kernel.network.connections]


def _alarm_signature(result):
    return [(alarm.alarm_type, alarm.syscall) for alarm in result.alarms]


class TestInterleavingDeterminism:
    def test_concurrent_sessions_match_sequential_runs(self):
        paths = ["/index.html", "/news.html", "/docs/faq.html", "/products.html"]
        sequential = []
        for index, path in enumerate(paths):
            kernel, session = _httpd_session(f"seq-{index}", _benign_payloads(3, path))
            result = session.run()
            sequential.append((_alarm_signature(result), _responses(kernel)))

        concurrent_sessions = []
        concurrent_kernels = []
        for index, path in enumerate(paths):
            kernel, session = _httpd_session(f"con-{index}", _benign_payloads(3, path))
            concurrent_kernels.append(kernel)
            concurrent_sessions.append(session)
        engine_result = run_sessions(concurrent_sessions)

        assert engine_result.total_alarms == 0
        for index, entry in enumerate(engine_result.sessions):
            assert entry.state is SessionState.COMPLETED
            expected_alarms, expected_responses = sequential[index]
            assert _alarm_signature(entry.result) == expected_alarms
            assert _responses(concurrent_kernels[index]) == expected_responses

    def test_unequal_session_lengths_all_complete(self):
        sessions = []
        kernels = []
        for index, count in enumerate((1, 4, 9)):
            kernel, session = _httpd_session(f"len-{index}", _benign_payloads(count))
            kernels.append(kernel)
            sessions.append(session)
        result = run_sessions(sessions)
        assert [entry.state for entry in result.sessions] == [SessionState.COMPLETED] * 3
        assert result.total_alarms == 0
        for kernel, count in zip(kernels, (1, 4, 9)):
            responses = _responses(kernel)
            assert len(responses) == count
            assert all(raw.startswith(b"HTTP/1.0 200") for raw in responses)

    def test_attack_detected_identically_under_interleaving(self):
        attack_payloads = [benign_request(), uid_overwrite_payload(0)]
        _, alone = _httpd_session("alone", attack_payloads)
        alone_result = alone.run()
        assert alone_result.attack_detected

        _, attacked = _httpd_session("attacked", attack_payloads)
        benign = [_httpd_session(f"b-{i}", _benign_payloads(3))[1] for i in range(3)]
        engine_result = run_sessions([attacked] + benign)
        assert (
            _alarm_signature(engine_result.session("attacked").result)
            == _alarm_signature(alone_result)
        )


class TestHaltPolicies:
    def _mixed_fleet(self):
        attack_kernel, attack_session = _httpd_session(
            "victim", [benign_request(), uid_overwrite_payload(0)]
        )
        benign_kernel, benign_session = _httpd_session("bystander", _benign_payloads(6))
        return attack_kernel, attack_session, benign_kernel, benign_session

    def test_per_session_halt_stops_only_the_alarming_session(self):
        attack_kernel, attack_session, benign_kernel, benign_session = self._mixed_fleet()
        result = run_sessions([attack_session, benign_session])

        victim = result.session("victim")
        bystander = result.session("bystander")
        assert victim.state is SessionState.HALTED
        assert victim.alarms >= 1
        assert bystander.state is SessionState.COMPLETED
        assert bystander.alarms == 0
        responses = _responses(benign_kernel)
        assert len(responses) == 6
        assert all(raw.startswith(b"HTTP/1.0 200") for raw in responses)

    def test_halt_all_policy_stops_the_whole_fleet(self):
        _, attack_session, _, benign_session = self._mixed_fleet()
        result = run_sessions(
            [attack_session, benign_session], halt_policy=HaltPolicy.HALT_ALL
        )
        assert result.session("victim").state is SessionState.HALTED
        assert result.session("bystander").state is SessionState.HALTED
        assert result.session("bystander").alarms == 0


class TestMonitorStatsIsolation:
    def test_each_session_gets_fresh_stats(self):
        """Two identical sessions report identical (not accumulated) counters."""
        _, first = _httpd_session("first", _benign_payloads(2))
        _, second = _httpd_session("second", _benign_payloads(2))
        result = run_sessions([first, second])
        stats_a = result.session("first").result.monitor.stats
        stats_b = result.session("second").result.monitor.stats
        assert stats_a.lockstep_points > 0
        assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)

    def test_run_resets_stale_monitor_counters(self):
        """Regression: stale MonitorStats must not leak into a run's result."""
        kernel = build_standard_host()
        kernel.client_connect(HTTP_PORT, benign_request())
        system = NVariantSystem(
            kernel, make_httpd_factory(transformed=True, max_requests=1), _variations()
        )
        system.monitor.stats.lockstep_points = 123_456  # stale from a previous run
        system.monitor.stats.alarms_raised = 99
        result = system.run()
        assert result.completed_normally
        assert 0 < result.monitor.stats.lockstep_points < 123_456
        assert result.monitor.stats.alarms_raised == 0

    def test_monitor_reset_clears_alarms_and_counters(self):
        _, session = _httpd_session("reset", [benign_request(), uid_overwrite_payload(0)])
        session.run()
        monitor = session.monitor
        assert monitor.attack_detected and monitor.stats.alarms_raised > 0
        monitor.reset()
        assert not monitor.attack_detected
        assert monitor.stats.lockstep_points == 0
        assert monitor.stats.alarms_raised == 0


class TestServerMultiplexing:
    def test_pipeline_longer_than_one_recv_window_is_fully_served(self):
        """Regression: a keep-alive pipeline larger than the server's recv
        window (max_request_size + 4096 bytes) must be drained, not silently
        truncated mid-request."""
        from repro.apps.clients.webbench import drive_standalone

        measurement = drive_standalone(
            WebBenchWorkload(total_requests=200, requests_per_connection=200),
            transformed=False,
        )
        assert measurement.requests_completed == 200
        assert measurement.status_counts == {200: 200}

    def test_drained_accept_queue_is_not_repolled(self):
        """Regression: once the accept queue is empty the multiplexed loop
        must stop issuing failing accept calls on every scheduling turn."""
        from repro.apps.clients.webbench import drive_standalone

        kernel = build_standard_host()
        drive_standalone(
            WebBenchWorkload(total_requests=12, requests_per_connection=3),
            transformed=False,
            multiplex=8,
            kernel=kernel,
        )
        # 4 successful accepts (one per connection) + exactly 1 failed accept
        # that closes admission.
        assert kernel.stats.syscall_breakdown["accept"] == 5

    def test_truncated_trailing_fragment_is_not_completed(self):
        """split_requests must not synthesise the header terminator for a
        truncated trailing fragment."""
        from repro.apps.httpd.http import split_requests

        pipeline = benign_request("/a.html") + b"GET /b.html HTTP/1.0"
        parts = split_requests(pipeline)
        assert parts[0] == benign_request("/a.html")
        assert parts[-1] == b"GET /b.html HTTP/1.0"


@pytest.mark.slow
class TestCampaignSchedulerStress:
    """Fairness and fleet-halt behaviour of the campaign worker pool at scale."""

    def _benign_job(self, index, requests=3):
        from repro.engine.campaign import CampaignJob

        def start():
            _, session = _httpd_session(f"stress-{index}", _benign_payloads(requests))
            return session

        return CampaignJob(name=f"stress-{index}", start=start, finish=lambda s: s.state)

    def _attack_job(self, index):
        from repro.engine.campaign import CampaignJob

        def start():
            _, session = _httpd_session(
                f"attack-{index}", [benign_request(), uid_overwrite_payload(0)]
            )
            return session

        return CampaignJob(name=f"attack-{index}", start=start, finish=lambda s: s.state)

    def test_32_interleaved_campaign_sessions_complete_without_starvation(self):
        from repro.engine.campaign import CampaignScheduler

        jobs = [self._benign_job(i, requests=1 + i % 4) for i in range(32)]
        result = CampaignScheduler(jobs, parallelism=32, rounds_per_turn=2).run()

        assert len(result.completed_jobs) == 32 and not result.skipped_jobs
        assert all(job.value is SessionState.COMPLETED for job in result.jobs)
        assert result.max_live_sessions == 32
        # Fairness: round-robin never skips a live session for a whole turn,
        # so no session's round count can lag a sibling admitted at the same
        # time by more than one rounds_per_turn batch.
        assert result.max_wait_turns == 0
        # Scheduler efficiency: turns are bounded by the longest job's rounds
        # divided by the batch size (plus the final bookkeeping turn).
        longest = max(job.rounds for job in result.jobs)
        assert result.scheduler_turns <= (longest + 1) // 2 + 2

    def test_worker_pool_drains_a_deep_backlog(self):
        from repro.engine.campaign import CampaignScheduler

        jobs = [self._benign_job(i) for i in range(40)]
        result = CampaignScheduler(jobs, parallelism=8).run()
        assert len(result.completed_jobs) == 40
        assert result.max_live_sessions == 8
        assert result.max_wait_turns == 0
        # Eight workers sharing identical jobs land close to an 8x win.
        assert result.speedup() > 6.0

    def test_fleet_wide_halt_stops_stragglers_and_skips_backlog(self):
        from repro.engine.campaign import CampaignHaltPolicy, CampaignScheduler

        # One attack session among long-running benign siblings, plus a
        # backlog that must never start once the campaign halts.
        jobs = (
            [self._benign_job(i, requests=9) for i in range(6)]
            + [self._attack_job(0)]
            + [self._benign_job(100 + i, requests=9) for i in range(8)]
        )
        result = CampaignScheduler(
            jobs,
            parallelism=8,
            rounds_per_turn=1,
            halt_policy=CampaignHaltPolicy.HALT_CAMPAIGN,
        ).run()

        states = [job.state for job in result.jobs if not job.skipped]
        assert SessionState.HALTED in states
        # Stragglers live at the halt are stopped, not run to completion: the
        # long benign sessions admitted alongside the attack must be halted,
        # marked truncated, and carry no fabricated value.
        siblings = [job for job in result.jobs[:6] if not job.skipped]
        assert siblings
        assert all(job.state is SessionState.HALTED for job in siblings)
        assert all(job.truncated and job.value is None for job in siblings)
        # The attack session itself halted on its own alarm: a real outcome.
        attack_job = next(job for job in result.jobs if job.name == "attack-0")
        assert not attack_job.truncated
        assert attack_job.value is SessionState.HALTED
        # The backlog past the worker pool is skipped entirely.
        assert result.skipped_jobs
        assert all(job.state is None for job in result.skipped_jobs)


class TestEngineMechanics:
    def test_stepping_matches_single_shot_run(self):
        _, stepped = _httpd_session("stepped", _benign_payloads(2))
        while not stepped.done:
            stepped.step()
        _, oneshot = _httpd_session("oneshot", _benign_payloads(2))
        oneshot_result = oneshot.run()
        assert stepped.result().lockstep_rounds == oneshot_result.lockstep_rounds
        assert stepped.state is SessionState.COMPLETED

    def test_virtual_elapsed_is_max_over_sessions(self):
        sessions = [_httpd_session(f"v-{i}", _benign_payloads(i + 1))[1] for i in range(3)]
        result = run_sessions(sessions)
        assert result.virtual_elapsed == max(s.virtual_elapsed for s in result.sessions)
        assert result.virtual_elapsed_sequential == sum(
            s.virtual_elapsed for s in result.sessions
        )
        assert result.virtual_elapsed < result.virtual_elapsed_sequential

    def test_rerunning_a_finished_session_raises(self):
        """A terminal session's programs are consumed; a repeated run() must
        raise rather than silently return the stale result."""
        _, session = _httpd_session("once", _benign_payloads(1))
        session.run()
        with pytest.raises(RuntimeError, match="already completed"):
            session.run()

    def test_sessions_sharing_a_kernel_meter_only_their_own_ticks(self):
        """virtual_elapsed counts ticks consumed inside the session's own
        rounds, so co-scheduled sessions on one kernel never double-count."""

        def factory(context):
            def program():
                for _ in range(5):
                    yield from context.libc.getpid()
                yield from context.libc.exit(0)

            return program()

        kernel = build_standard_host()
        clock_before = kernel.clock
        sessions = [
            NVariantSession(kernel, factory, [], name=f"shared-{i}") for i in range(2)
        ]
        result = run_sessions(sessions)
        consumed = kernel.clock - clock_before
        assert result.virtual_elapsed_sequential == consumed
        assert all(s.virtual_elapsed > 0 for s in result.sessions)

    def test_duplicate_session_names_rejected(self):
        _, a = _httpd_session("dup", _benign_payloads(1))
        _, b = _httpd_session("dup", _benign_payloads(1))
        engine = MultiSessionEngine([a])
        with pytest.raises(ValueError):
            engine.add_session(b)

    def test_empty_engine_returns_empty_result(self):
        result = MultiSessionEngine().run()
        assert result.sessions == [] and result.total_alarms == 0

    def test_drive_engine_scales_throughput(self):
        from repro.api.spec import ADDRESS_UID_SPEC, FleetSpec, WorkloadSpec

        single = drive_engine(
            FleetSpec(system=ADDRESS_UID_SPEC, num_sessions=1,
                      workload=WorkloadSpec(total_requests=6))
        )
        fleet = drive_engine(
            FleetSpec(system=ADDRESS_UID_SPEC, num_sessions=4,
                      workload=WorkloadSpec(total_requests=24))
        )
        assert single.completed_ok and fleet.completed_ok
        assert fleet.speedup() > 3.0
