"""Unit tests for the credential model (uid_t validation and setuid semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.credentials import (
    Credentials,
    MAX_VALID_UID,
    ROOT_UID,
    root_credentials,
    user_credentials,
    validate_gid,
    validate_uid,
)
from repro.kernel.errors import Errno, KernelError

valid_uids = st.integers(min_value=0, max_value=MAX_VALID_UID)


class TestValidateUid:
    def test_accepts_zero(self):
        assert validate_uid(0) == 0

    def test_accepts_max(self):
        assert validate_uid(MAX_VALID_UID) == MAX_VALID_UID

    def test_rejects_negative(self):
        with pytest.raises(KernelError) as info:
            validate_uid(-1)
        assert info.value.errno is Errno.EINVAL

    def test_rejects_sign_bit(self):
        with pytest.raises(KernelError):
            validate_uid(0x80000000)

    def test_rejects_full_flip_root_representation(self):
        # The reason the paper could not use XOR 0xFFFFFFFF (Section 3.2).
        with pytest.raises(KernelError):
            validate_uid(0xFFFFFFFF)

    def test_rejects_bool(self):
        with pytest.raises(KernelError):
            validate_uid(True)

    def test_rejects_non_integer(self):
        with pytest.raises(KernelError):
            validate_uid("root")

    def test_gid_rules_match(self):
        assert validate_gid(33) == 33
        with pytest.raises(KernelError):
            validate_gid(-5)

    @given(valid_uids)
    def test_accepts_whole_valid_domain(self, uid):
        assert validate_uid(uid) == uid


class TestCredentialConstruction:
    def test_root_defaults(self):
        creds = root_credentials()
        assert creds.ruid == creds.euid == creds.suid == ROOT_UID
        assert creds.is_privileged()

    def test_user_credentials(self):
        creds = user_credentials(1000, 1000, groups=(33,))
        assert creds.euid == 1000
        assert not creds.is_privileged()
        assert creds.in_group(33)
        assert creds.in_group(1000)
        assert not creds.in_group(0)

    def test_invalid_uid_rejected_at_construction(self):
        with pytest.raises(KernelError):
            Credentials(ruid=-2)

    def test_copy_is_independent(self):
        creds = root_credentials()
        clone = creds.copy()
        clone.setuid(1000)
        assert creds.euid == ROOT_UID
        assert clone.euid == 1000

    def test_as_tuple_is_order_insensitive_for_groups(self):
        a = Credentials(groups=(3, 1, 2))
        b = Credentials(groups=(1, 2, 3))
        assert a.as_tuple() == b.as_tuple()


class TestSetuidSemantics:
    def test_root_setuid_drops_all_three(self):
        creds = root_credentials()
        creds.setuid(33)
        assert (creds.ruid, creds.euid, creds.suid) == (33, 33, 33)

    def test_drop_is_irrevocable(self):
        creds = root_credentials()
        creds.setuid(33)
        with pytest.raises(KernelError) as info:
            creds.setuid(0)
        assert info.value.errno is Errno.EPERM

    def test_unprivileged_can_switch_to_saved(self):
        creds = Credentials(ruid=1000, euid=1000, suid=1001)
        creds.setuid(1001)
        assert creds.euid == 1001

    def test_unprivileged_cannot_become_arbitrary(self):
        creds = user_credentials(1000, 1000)
        with pytest.raises(KernelError):
            creds.setuid(0)

    def test_seteuid_preserves_saved_for_reescalation(self):
        creds = root_credentials()
        creds.seteuid(33)
        assert creds.euid == 33
        assert creds.suid == ROOT_UID
        creds.seteuid(0)
        assert creds.is_privileged()

    def test_seteuid_unprivileged_restricted(self):
        creds = user_credentials(1000, 1000)
        with pytest.raises(KernelError):
            creds.seteuid(0)

    def test_setreuid_updates_saved(self):
        creds = root_credentials()
        creds.setreuid(1000, 1000)
        assert creds.suid == 1000

    def test_setreuid_minus_one_keeps_field(self):
        creds = root_credentials()
        creds.setreuid(-1, 33)
        assert creds.ruid == ROOT_UID
        assert creds.euid == 33

    def test_setresuid_full_control_for_root(self):
        creds = root_credentials()
        creds.setresuid(1, 2, 3)
        assert (creds.ruid, creds.euid, creds.suid) == (1, 2, 3)

    def test_setresuid_unprivileged_limited_to_current_ids(self):
        creds = Credentials(ruid=1000, euid=1001, suid=1002)
        creds.setresuid(1000, 1002, -1)
        assert creds.euid == 1002
        with pytest.raises(KernelError):
            creds.setresuid(0, -1, -1)

    def test_setgid_and_setegid(self):
        creds = root_credentials()
        creds.setegid(33)
        assert creds.egid == 33
        creds.setgid(34)
        assert (creds.rgid, creds.egid, creds.sgid) == (34, 34, 34)

    def test_setgroups_requires_privilege(self):
        creds = user_credentials(1000, 1000)
        with pytest.raises(KernelError):
            creds.setgroups((1, 2))

    @given(valid_uids)
    def test_root_can_drop_to_any_valid_uid(self, uid):
        creds = root_credentials()
        creds.setuid(uid)
        assert creds.euid == uid
        assert creds.is_privileged() == (uid == ROOT_UID)
