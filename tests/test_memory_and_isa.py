"""Tests for the memory substrate and the miniature ISA with tagging."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Instruction, Opcode, assemble, decode_stream, encode_stream
from repro.isa.interpreter import Interpreter, MachineState
from repro.isa.tagging import inject_untagged, retag_stream, tag_stream, untag_stream
from repro.kernel.errors import IllegalInstructionFault, SegmentationFault
from repro.memory.address_space import AddressSpace, PARTITION_BIT
from repro.memory.partition import ExtendedOrbitScheme, HighBitScheme
from repro.memory.corruption import (
    CorruptionSpec,
    apply_corruption,
    corruption_outcomes,
    detectable_by_disjoint_inverses,
    overflow_buffer,
    overflow_payload,
)
from repro.memory.memory_model import MemoryRegion, StackFrame

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestMemoryRegion:
    def test_word_roundtrip(self):
        region = MemoryRegion("r", 0x1000, 64)
        region.write_word(0x1000, 0xDEADBEEF)
        assert region.read_word(0x1000) == 0xDEADBEEF

    def test_out_of_bounds_access_faults(self):
        region = MemoryRegion("r", 0x1000, 16)
        with pytest.raises(SegmentationFault):
            region.read(0x1010, 4)
        with pytest.raises(SegmentationFault):
            region.write(0x0FFF, b"x")

    def test_unchecked_copy_clamped_to_region(self):
        region = MemoryRegion("r", 0, 8)
        written = region.unchecked_copy(4, b"ABCDEFGH")
        assert written == 4
        assert bytes(region.data) == b"\x00" * 4 + b"ABCD"

    def test_relocate_preserves_contents(self):
        region = MemoryRegion("r", 0, 8)
        region.write(0, b"hi")
        moved = region.relocate(0x100)
        assert moved.read(0x100, 2) == b"hi"

    def test_stack_frame_layout_is_allocation_ordered(self):
        region = MemoryRegion("frame", 0, 128)
        frame = StackFrame(region)
        buf = frame.alloc_buffer("buf", 16)
        uid = frame.alloc_word("uid", 33)
        assert uid.offset == buf.offset + 16
        assert uid.get() == 33
        assert frame.layout()[0][0] == "buf"

    def test_variable_bounds_check(self):
        region = MemoryRegion("frame", 0, 8)
        frame = StackFrame(region)
        frame.alloc_word("a")
        frame.alloc_word("b")
        with pytest.raises(ValueError):
            frame.alloc_word("c")


class TestAddressSpacePartitioning:
    def test_unpartitioned_accepts_any_mapped_address(self):
        space = AddressSpace()
        region = space.map_region(MemoryRegion("data", 0x1000, 64))
        assert space.load_word(region.base) == 0

    def test_partition_translation_matches_table1(self):
        scheme = HighBitScheme()
        low = AddressSpace(scheme=scheme, index=0)
        high = AddressSpace(scheme=scheme, index=1)
        assert low.translate(0x1000) == 0x1000
        assert high.translate(0x1000) == 0x80001000
        assert high.untranslate(0x80001000) == 0x1000

    def test_access_outside_partition_faults(self):
        high = AddressSpace(scheme=HighBitScheme(), index=1)
        high.map_region(MemoryRegion("data", 0x1000, 64))
        with pytest.raises(SegmentationFault):
            high.load_bytes(0x1000, 4)  # low-partition absolute address

    def test_injected_absolute_address_valid_in_at_most_one_variant(self):
        scheme = HighBitScheme()
        spaces = [AddressSpace(scheme=scheme, index=i) for i in range(2)]
        for space in spaces:
            space.map_region(MemoryRegion("data", 0x1000, 64))
        injected = 0x1010
        outcomes = []
        for space in spaces:
            try:
                space.dereference(injected)
                outcomes.append("ok")
            except SegmentationFault:
                outcomes.append("fault")
        assert outcomes.count("fault") >= 1

    def test_extended_offset_changes_low_bytes(self):
        space = AddressSpace(scheme=ExtendedOrbitScheme(2, offset=0x12345), index=1)
        assert space.translate(0x1000) == (0x1000 + PARTITION_BIT + 0x12345) & 0xFFFFFFFF

    def test_overlapping_regions_rejected(self):
        space = AddressSpace()
        space.map_region(MemoryRegion("a", 0x1000, 64))
        with pytest.raises(ValueError):
            space.map_region(MemoryRegion("b", 0x1020, 64))

    def test_unmapped_address_faults(self):
        space = AddressSpace(scheme=HighBitScheme(), index=0)
        with pytest.raises(SegmentationFault):
            space.load_word(0x5000)


class TestCorruptionPrimitives:
    def _uid_var(self, initial=33):
        region = MemoryRegion("frame", 0, 64)
        frame = StackFrame(region)
        return frame.alloc_word("uid", initial)

    def test_full_word_overwrite(self):
        var = self._uid_var()
        apply_corruption(var, CorruptionSpec(kind="full-word", payload=0))
        assert var.get() == 0

    def test_partial_overwrite_keeps_high_bytes(self):
        var = self._uid_var(0x11223344)
        apply_corruption(var, CorruptionSpec(kind="partial-bytes", payload=0xAA, byte_count=1))
        assert var.get() == 0x112233AA

    def test_bit_flip(self):
        var = self._uid_var(0)
        apply_corruption(var, CorruptionSpec(kind="bit-flip", payload=31))
        assert var.get() == 0x80000000

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            CorruptionSpec(kind="laser", payload=1)
        with pytest.raises(ValueError):
            CorruptionSpec(kind="partial-bytes", payload=0, byte_count=5)
        with pytest.raises(ValueError):
            CorruptionSpec(kind="bit-flip", payload=32)

    def test_overflow_buffer_reaches_adjacent_word(self):
        region = MemoryRegion("frame", 0, 128)
        frame = StackFrame(region)
        buf = frame.alloc_buffer("buf", 16)
        uid = frame.alloc_word("uid", 33)
        overflow_buffer(region, buf, overflow_payload(16, 0))
        assert uid.get() == 0

    def test_corruption_outcomes_model_matches_memory(self):
        spec = CorruptionSpec(kind="partial-bytes", payload=0, byte_count=2)
        originals = (33, 33 ^ 0x7FFFFFFF)
        predicted = corruption_outcomes(originals, spec)
        for original, expected in zip(originals, predicted):
            var = self._uid_var(original)
            apply_corruption(var, spec)
            assert var.get() == expected

    @given(words)
    def test_full_overwrite_always_detected_by_disjoint_inverses(self, payload):
        spec = CorruptionSpec(kind="full-word", payload=payload)
        post = corruption_outcomes((33, 33 ^ 0x7FFFFFFF), spec)
        inverses = (lambda v: v, lambda v: v ^ 0x7FFFFFFF)
        assert detectable_by_disjoint_inverses(post, inverses)

    @given(st.integers(min_value=0, max_value=0xFFFFFF), st.integers(min_value=1, max_value=3))
    def test_partial_overwrite_detected(self, payload, byte_count):
        spec = CorruptionSpec(kind="partial-bytes", payload=payload, byte_count=byte_count)
        post = corruption_outcomes((33, 33 ^ 0x7FFFFFFF), spec)
        inverses = (lambda v: v, lambda v: v ^ 0x7FFFFFFF)
        assert detectable_by_disjoint_inverses(post, inverses)

    def test_sign_bit_flip_is_the_blind_spot(self):
        spec = CorruptionSpec(kind="bit-flip", payload=31)
        post = corruption_outcomes((33, 33 ^ 0x7FFFFFFF), spec)
        inverses = (lambda v: v, lambda v: v ^ 0x7FFFFFFF)
        assert not detectable_by_disjoint_inverses(post, inverses)


class TestInstructionEncoding:
    def test_encode_decode_roundtrip(self):
        instruction = Instruction(Opcode.LOADI, 3, 0xABC)
        assert Instruction.decode(instruction.encode()) == instruction

    def test_stream_roundtrip(self):
        program = assemble([(Opcode.LOADI, 1, 5), (Opcode.ADD, 1, 1), (Opcode.HALT,)])
        assert decode_stream(encode_stream(program)) == program

    def test_operand_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOADI, 0x1000, 0)

    @given(st.sampled_from(list(Opcode)), st.integers(0, 0xFFF), st.integers(0, 0xFFF))
    def test_roundtrip_property(self, opcode, a, b):
        instruction = Instruction(opcode, a, b)
        assert Instruction.decode(instruction.encode()) == instruction


class TestInterpreter:
    def test_arithmetic_program(self):
        program = assemble(
            [(Opcode.LOADI, 1, 40), (Opcode.LOADI, 2, 2), (Opcode.ADD, 1, 2), (Opcode.HALT,)]
        )
        state = Interpreter().run(program)
        assert state.registers[1] == 42

    def test_store_and_load(self):
        program = assemble(
            [
                (Opcode.LOADI, 1, 7),
                (Opcode.LOADI, 2, 64),
                (Opcode.STORE, 2, 1),
                (Opcode.LOAD, 3, 2),
                (Opcode.HALT,),
            ]
        )
        state = Interpreter().run(program)
        assert state.registers[3] == 7

    def test_jump_and_jz(self):
        program = assemble(
            [
                (Opcode.LOADI, 1, 0),
                (Opcode.JZ, 3, 1),
                (Opcode.LOADI, 2, 99),
                (Opcode.HALT,),
            ]
        )
        state = Interpreter().run(program)
        assert state.registers[2] == 0

    def test_syscall_logged_and_handled(self):
        seen = []
        interpreter = Interpreter(syscall_handler=lambda n, args: seen.append((n, args)) or 7)
        program = assemble([(Opcode.LOADI, 0, 59), (Opcode.SYSCALL,), (Opcode.HALT,)])
        state = interpreter.run(program)
        assert seen and seen[0][0] == 59
        assert state.registers[0] == 7

    def test_out_of_range_memory_faults(self):
        program = assemble([(Opcode.LOADI, 1, 0xFFF), (Opcode.LOADI, 2, 0xFFF), (Opcode.ADD, 1, 2), (Opcode.STORE, 1, 2), (Opcode.HALT,)])
        with pytest.raises(SegmentationFault):
            Interpreter().run(program)


class TestTagging:
    def test_tag_untag_roundtrip(self):
        program = assemble([(Opcode.NOP,), (Opcode.HALT,)])
        for variant in range(2):
            assert untag_stream(tag_stream(program, variant), variant) == program

    def test_wrong_tag_raises(self):
        program = assemble([(Opcode.NOP,), (Opcode.HALT,)])
        tagged_for_zero = tag_stream(program, 0)
        with pytest.raises(IllegalInstructionFault):
            untag_stream(tagged_for_zero, 1)

    def test_retag_translates_between_variants(self):
        program = assemble([(Opcode.LOADI, 1, 9), (Opcode.HALT,)])
        retagged = retag_stream(tag_stream(program, 0), 0, 1)
        assert untag_stream(retagged, 1) == program

    def test_injected_untagged_bytes_fault_in_some_variant(self):
        program = assemble([(Opcode.NOP,)] * 4 + [(Opcode.HALT,)])
        payload = assemble([(Opcode.LOADI, 0, 59), (Opcode.SYSCALL,)])
        faults = 0
        for variant in range(2):
            corrupted = inject_untagged(tag_stream(program, variant), payload, 5)
            try:
                untag_stream(corrupted, variant)
            except IllegalInstructionFault:
                faults += 1
        assert faults >= 1

    def test_run_tagged_executes_clean_stream(self):
        program = assemble([(Opcode.LOADI, 1, 11), (Opcode.HALT,)])
        state = Interpreter().run_tagged(tag_stream(program, 1), 1)
        assert state.registers[1] == 11

    def test_truncated_tagged_stream_rejected(self):
        with pytest.raises(IllegalInstructionFault):
            untag_stream(b"\x00\x01\x02", 0)
