"""Tests for the first-class experiment API: spec, registry, report, CLI.

Covers the contracts the experiment layer adds:

* :class:`ExperimentSpec` is frozen data that round-trips through dicts/JSON
  and rejects unknown keys, like every other spec;
* the registry lists all eight paper experiments, resolves names to validated
  runs, and turns unknown names / unknown or mistyped parameters into typed
  errors;
* :class:`ExperimentReport` has a stable JSON schema and renders through the
  shared text/markdown renderers (no experiment keeps a bespoke formatter);
* the redesign is behaviour-preserving: a registry run produces the same
  claims and rows as the experiment module's own ``run()`` entry point;
* the CLI runs every experiment (``experiment <name>``) and the generic
  ``{"scenario": "experiment"}`` kind end-to-end.
"""

import json
from pathlib import Path

import pytest

from repro.api.cli import ScenarioError, load_scenario, main as cli_main, run_scenario
from repro.api.experiments import (
    ExperimentParameter,
    ExperimentParameterError,
    ExperimentRegistry,
    ExperimentReport,
    ReportKeyValues,
    ReportTable,
    UnknownExperimentError,
    experiments,
)
from repro.api.spec import ExperimentSpec

#: Every experiment the registry must expose (the paper's evaluation plus
#: the PR-5 N-scaling sweep).
EXPECTED_EXPERIMENTS = (
    "ablations",
    "apps",
    "corpus",
    "detection",
    "entropy",
    "figure1",
    "figure2",
    "loadtest",
    "nscaling",
    "section4",
    "table1",
    "table2",
    "table3",
)

#: Fast parameters for end-to-end runs (cheaper than each default spec).
FAST_PARAMS = {
    "table1": {"sample_count": 128},
    "table3": {"requests": 10},
    "figure1": {"benign_requests": 4},
    "ablations": {"user_space_uses": 3, "requests": 2},
    "apps": {"backend": "virtual", "requests": 6},
    "nscaling": {"min_variants": 2, "max_variants": 3, "requests": 6},
    "entropy": {"max_variants": 3, "max_key_bits": 4, "trials": 20},
    "corpus": {"records": 40, "workers": 4, "backend": "virtual"},
}


def _fast_spec(name: str) -> ExperimentSpec:
    return ExperimentSpec(name=name, params=FAST_PARAMS.get(name, {}))


class TestExperimentSpec:
    def test_round_trips_through_dict_and_json(self):
        spec = ExperimentSpec.of("table3", requests=20)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.params_dict() == {"requests": 20}

    def test_params_are_canonicalized_and_hashable(self):
        a = ExperimentSpec("ablations", params={"requests": 2, "user_space_uses": 3})
        b = ExperimentSpec("ablations", params={"user_space_uses": 3, "requests": 2})
        assert a == b
        assert len({a, b}) == 1

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec keys"):
            ExperimentSpec.from_dict({"name": "table3", "parms": {"requests": 20}})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="needs a 'name'"):
            ExperimentSpec.from_dict({"params": {}})

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError):
            ExperimentSpec("table3", params={"requests": [1, 2]})

    def test_empty_params_omitted_from_dict(self):
        assert ExperimentSpec("figure2").to_dict() == {"name": "figure2"}


class TestRegistry:
    def test_every_expected_experiment_registered(self):
        assert tuple(experiments.names()) == EXPECTED_EXPERIMENTS
        for name in EXPECTED_EXPERIMENTS:
            assert name in experiments

    def test_unknown_experiment_is_a_typed_error(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            experiments.run("no-such-experiment")
        assert "table3" in str(excinfo.value)  # error lists the known names

    def test_unknown_parameter_is_a_typed_error(self):
        with pytest.raises(ExperimentParameterError, match="unknown parameters"):
            experiments.run(ExperimentSpec.of("table3", request_count=10))

    def test_mistyped_parameter_is_a_typed_error(self):
        with pytest.raises(ExperimentParameterError, match="must be int"):
            experiments.run(ExperimentSpec.of("table3", requests="lots"))
        # bool is not an int here, even though Python subclasses it.
        with pytest.raises(ExperimentParameterError, match="must be int"):
            experiments.run(ExperimentSpec.of("table3", requests=True))

    def test_parameterless_experiment_rejects_any_parameter(self):
        with pytest.raises(ExperimentParameterError, match=r"accepted: \(none\)"):
            experiments.run(ExperimentSpec.of("figure2", requests=4))

    def test_smoke_specs_cover_every_experiment(self):
        for name in experiments.names():
            spec = experiments.smoke_spec(name)
            assert spec.name == name
            experiments.validate(spec)  # smoke params must themselves be legal

    def test_declared_parameters_match_runner_signatures(self):
        """The registry's typed parameter declarations cannot drift from the
        actual keyword defaults of each registered runner."""
        import inspect

        for entry in experiments:
            signature = inspect.signature(entry.resolve())
            accepted = {
                p.name: p.default
                for p in signature.parameters.values()
                if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
            }
            assert sorted(accepted) == sorted(entry.parameter_names()), entry.name
            for parameter in entry.parameters:
                assert accepted[parameter.name] == parameter.default, (
                    entry.name,
                    parameter.name,
                )
                assert parameter.accepts(parameter.default), (entry.name, parameter.name)

    def test_runner_must_return_a_report(self):
        scratch = ExperimentRegistry()
        scratch.register("broken", dict, description="not an experiment")
        with pytest.raises(ValueError, match="not an ExperimentReport"):
            scratch.run("broken")

    def test_loader_strings_resolve_lazily(self):
        scratch = ExperimentRegistry()
        entry = scratch.register(
            "lazy", "repro.analysis.experiments.figure2:experiment"
        )
        assert entry.resolve().__name__ == "experiment"

    def test_registry_run_stamps_spec_and_telemetry(self):
        report = experiments.run(_fast_spec("section4"))
        assert report.spec == _fast_spec("section4")
        assert report.telemetry["wall_seconds"] >= 0


class TestReport:
    def test_json_schema_is_stable(self):
        report = experiments.run(_fast_spec("section4"))
        payload = json.loads(report.to_json())
        assert sorted(payload) == [
            "claims",
            "experiment",
            "ok",
            "params",
            "sections",
            "telemetry",
            "title",
        ]
        assert payload["experiment"] == "section4"
        assert payload["ok"] is True
        for section in payload["sections"]:
            assert section["kind"] in ("table", "key-values")
            if section["kind"] == "table":
                assert sorted(section) == ["headers", "kind", "rows", "title"]
                for row in section["rows"]:
                    assert len(row) == len(section["headers"])
            else:
                assert sorted(section) == ["kind", "pairs", "title"]

    def test_text_and_markdown_renderers(self):
        report = experiments.run(_fast_spec("table1"))
        text = report.format()
        markdown = report.format(style="markdown")
        assert "Table 1. Reexpression Functions" in text
        assert "[ok]" in text
        assert "| Variation |" in markdown
        assert "- [x]" in markdown
        with pytest.raises(ValueError, match="style must be one of"):
            report.format(style="html")

    def test_failed_claims_gate_ok(self):
        report = ExperimentReport(
            title="t", claims={"holds": True, "breaks": False}
        )
        assert not report.ok
        assert report.failed_claims == ["breaks"]
        assert "[FAIL] breaks" in report.format()

    def test_table_section_validates_row_width(self):
        with pytest.raises(ValueError, match="columns"):
            ReportTable(title="t", headers=("a", "b"), rows=(("only",),))

    def test_rows_helper_collects_table_rows_in_order(self):
        report = ExperimentReport(
            title="t",
            sections=(
                ReportTable(title="x", headers=("h",), rows=(("1",), ("2",))),
                ReportKeyValues(title="kv", pairs=(("k", "v"),)),
                ReportTable(title="y", headers=("h",), rows=(("3",),)),
            ),
        )
        assert report.rows() == [("1",), ("2",), ("3",)]


class TestParity:
    """The registry path reproduces the module entry points exactly."""

    @pytest.mark.parametrize("name", EXPECTED_EXPERIMENTS)
    def test_registry_run_matches_module_run(self, name):
        import importlib

        spec = _fast_spec(name)
        via_registry = experiments.run(spec)
        module = importlib.import_module(f"repro.analysis.experiments.{name}")
        via_module = module.run(**spec.params_dict()).to_report()
        assert via_registry.claims == via_module.claims
        assert via_registry.rows() == via_module.rows()
        assert [s.to_dict() for s in via_registry.sections] == [
            s.to_dict() for s in via_module.sections
        ]

    def test_no_experiment_keeps_a_bespoke_format_renderer(self):
        """All output flows through ExperimentReport's renderers."""
        import importlib

        for name in EXPECTED_EXPERIMENTS:
            module = importlib.import_module(f"repro.analysis.experiments.{name}")
            report = experiments.run(experiments.smoke_spec(name))
            result_type = type(report.result)
            assert not hasattr(result_type, "format"), (name, result_type)
            assert hasattr(result_type, "to_report"), (name, result_type)
            assert module.experiment.__module__ == module.__name__


class TestCLI:
    def _write_scenario(self, tmp_path, data):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_experiments_listing_names_every_entry(self, capsys):
        assert cli_main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_EXPERIMENTS:
            assert name in out

    def test_experiments_names_are_script_friendly(self, capsys):
        assert cli_main(["experiments", "--names"]) == 0
        assert capsys.readouterr().out.split() == list(EXPECTED_EXPERIMENTS)

    @pytest.mark.parametrize("name", EXPECTED_EXPERIMENTS)
    def test_every_experiment_runs_via_cli(self, name, capsys):
        arguments = ["experiment", name, "--smoke", "--json"]
        for key, value in FAST_PARAMS.get(name, {}).items():
            arguments += ["--set", f"{key}={value}"]
        assert cli_main(arguments) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == name
        assert payload["ok"] is True

    @pytest.mark.parametrize("name", EXPECTED_EXPERIMENTS)
    def test_every_experiment_runs_via_scenario_json(self, name, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {
                "scenario": "experiment",
                "experiment": name,
                "params": {**experiments.smoke_spec(name).params_dict(), **FAST_PARAMS.get(name, {})},
                "output": "json",
            },
        )
        assert cli_main(["run", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == name
        assert payload["ok"] is True
        assert payload["claims"]

    def test_set_overrides_parse_json_scalars(self, capsys):
        assert cli_main(["experiment", "table3", "--set", "requests=12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"] == {"requests": 12}

    def test_unknown_experiment_is_a_clean_error(self, capsys):
        assert cli_main(["experiment", "mystery"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_parameter_is_a_clean_error(self, capsys):
        assert cli_main(["experiment", "table3", "--set", "cycles=9"]) == 2
        assert "unknown parameters" in capsys.readouterr().err

    def test_non_scalar_set_value_is_a_clean_error(self, capsys):
        assert cli_main(["experiment", "table3", "--set", "requests=[1,2]"]) == 2
        err = capsys.readouterr().err
        assert "bad experiment parameters" in err
        assert "JSON scalar" in err

    def test_non_scalar_scenario_param_names_experiments(self, tmp_path, capsys):
        """The spec-kind label in the error points at experiments, not variations."""
        path = self._write_scenario(
            tmp_path,
            {"scenario": "experiment", "experiment": "table3", "params": {"requests": [1]}},
        )
        assert cli_main(["run", str(path)]) == 2
        assert "experiment parameter 'requests'" in capsys.readouterr().err

    def test_experiment_scenario_requires_experiment_key(self, tmp_path, capsys):
        path = self._write_scenario(tmp_path, {"scenario": "experiment"})
        assert cli_main(["run", str(path)]) == 2
        assert "need an 'experiment' key" in capsys.readouterr().err

    def test_experiment_scenario_rejects_unknown_keys(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {"scenario": "experiment", "experiment": "figure2", "systems": []},
        )
        assert cli_main(["run", str(path)]) == 2
        assert "unknown experiment scenario keys: systems" in capsys.readouterr().err

    def test_markdown_output_for_experiment_scenarios_only(self, tmp_path, capsys):
        path = self._write_scenario(
            tmp_path,
            {"scenario": "experiment", "experiment": "section4", "output": "markdown"},
        )
        assert cli_main(["run", str(path)]) == 0
        assert "| Change category |" in capsys.readouterr().out
        matrix = self._write_scenario(
            tmp_path, {"scenario": "detection-matrix", "output": "markdown"}
        )
        assert cli_main(["run", str(matrix)]) == 2
        assert "output must be one of" in capsys.readouterr().err

    def test_example_experiment_scenarios_load_and_resolve(self):
        scenarios = Path(__file__).resolve().parents[1] / "examples" / "scenarios"
        for name in ("table3.json", "ablations.json"):
            data = load_scenario(scenarios / name)
            assert data["scenario"] == "experiment"
            spec = ExperimentSpec.from_dict(
                {"name": data["experiment"], "params": data.get("params", {})}
            )
            experiments.validate(spec)

    def test_failed_claims_exit_nonzero(self, monkeypatch, capsys):
        """A run whose claims do not hold is a CI failure, not a success."""

        def forced_failure():
            return ExperimentReport(title="forced failure", claims={"holds": False})

        scratch = ExperimentRegistry()
        entry = scratch.register("forced", forced_failure)
        monkeypatch.setitem(experiments._entries, "forced", entry)
        assert cli_main(["experiment", "forced"]) == 1
        err = capsys.readouterr().err
        assert "failed 1 claim(s)" in err
