"""The fd-orbit variation: descriptor-space data diversity.

File descriptors ride the same N-ary partition-scheme protocol as the
address and UID families: variant *i* holds every descriptor re-expressed
into the *i*-th top-bits slice, arguments are decoded ahead of the kernel,
and an fd value injected identically into every variant decodes to N
pairwise-different descriptors -- an argument divergence at first use.
"""

import pytest

from repro.api.builders import build_variations
from repro.api.registry import registry
from repro.api.spec import SystemSpec
from repro.core.alarm import AlarmType
from repro.core.nvariant import NVariantSystem, nvexec
from repro.core.variations import (
    AddressPartitioning,
    FdOrbitVariation,
    OrbitAddressPartitioning,
    OrbitUIDVariation,
    UIDVariation,
)
from repro.core.variations.fdspace import FD_ARGUMENT_SYSCALLS, FD_RESULT_SYSCALLS
from repro.kernel.filesystem import O_RDONLY
from repro.kernel.host import build_standard_host
from repro.kernel.syscalls import Syscall, request
from repro.memory.partition import (
    FdOrbitScheme,
    SCHEMES,
    create_scheme,
    scheme_kinds,
)

ALL_N = range(2, 9)


class TestFdOrbitScheme:
    def test_registered_kind(self):
        assert "fd-orbit" in scheme_kinds()
        assert SCHEMES["fd-orbit"] is FdOrbitScheme

    @pytest.mark.parametrize("n", ALL_N)
    def test_round_trip_and_disjoint_inverses(self, n):
        scheme = create_scheme("fd-orbit", n)
        for fd in (0, 1, 2, 3, 17, 255):
            for index in range(n):
                assert scheme.untranslate(index, scheme.translate(index, fd)) == fd
            assert scheme.disjoint_at(fd)

    @pytest.mark.parametrize("n", ALL_N)
    def test_real_descriptors_place_in_their_partition(self, n):
        scheme = FdOrbitScheme(n)
        for index in range(n):
            assert scheme.partition_of(scheme.translate(index, 5)) == index

    def test_variant_zero_keeps_real_descriptors(self):
        scheme = FdOrbitScheme(4)
        assert scheme.translate(0, 7) == 7

    def test_reexpression_domain_is_fd(self):
        scheme = FdOrbitScheme(2)
        assert scheme.reexpression(1).domain == "fd"


class TestFdOrbitVariation:
    @pytest.mark.parametrize("n", ALL_N)
    def test_encode_decode_round_trip(self, n):
        variation = FdOrbitVariation(n)
        for index in range(n):
            for fd in (0, 3, 42):
                assert variation.decode(index, variation.encode(index, fd)) == fd

    def test_footprints_cover_exactly_the_fd_calls(self):
        assert Syscall.WRITE in FD_ARGUMENT_SYSCALLS
        assert Syscall.ACCEPT in FD_ARGUMENT_SYSCALLS
        assert Syscall.GETDENTS not in FD_ARGUMENT_SYSCALLS  # takes a path
        assert FD_RESULT_SYSCALLS == {Syscall.OPEN, Syscall.SOCKET, Syscall.ACCEPT}
        assert FdOrbitVariation.canonical_syscalls == FD_ARGUMENT_SYSCALLS
        assert FdOrbitVariation.transform_syscalls == FD_ARGUMENT_SYSCALLS

    def test_negative_sentinels_are_never_decoded(self):
        variation = FdOrbitVariation(2)
        transformed = variation.transform_request(1, request(Syscall.CLOSE, -1))
        assert transformed.args == (-1,)

    def test_scheme_partition_count_must_match(self):
        with pytest.raises(ValueError):
            FdOrbitVariation(3, scheme=FdOrbitScheme(2))

    def test_registered_in_variation_registry(self):
        assert "fd-orbit" in registry
        variation = registry.create("fd-orbit", {"num_variants": 5})
        assert isinstance(variation, FdOrbitVariation)
        assert variation.num_variants == 5

    def test_spec_injects_variant_count(self):
        spec = SystemSpec(name="t", num_variants=4, variations=("fd-orbit",))
        (variation,) = build_variations(spec)
        assert variation.num_variants == 4


def _benign_fd_factory(ctx):
    """Exercises every fd path: open/read/lseek/fstat/close and the socket
    family (bind/listen/accept/recv/send/shutdown) on a queued connection."""

    def program():
        opened = yield from ctx.libc.open("/etc/passwd", O_RDONLY)
        yield from ctx.libc.read(opened.value, 64)
        yield from ctx.libc.lseek(opened.value, 0)
        yield from ctx.libc.fstat(opened.value)
        yield from ctx.libc.close(opened.value)
        sock = yield from ctx.libc.socket()
        yield from ctx.libc.bind(sock.value, 8080)
        yield from ctx.libc.listen(sock.value)
        conn = yield from ctx.libc.accept(sock.value)
        yield from ctx.libc.recv(conn.value, 64)
        yield from ctx.libc.send(conn.value, b"ok")
        yield from ctx.libc.shutdown(conn.value)
        yield from ctx.libc.close(conn.value)
        yield from ctx.libc.close(sock.value)
        yield from ctx.libc.exit(0)

    return program()


class TestFdOrbitEngine:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_benign_fd_traffic_stays_equivalent(self, n):
        kernel = build_standard_host()
        kernel.client_connect(8080, b"hello")
        result = nvexec(kernel, _benign_fd_factory, [FdOrbitVariation(n)], num_variants=n)
        assert result.completed_normally, result.alarms
        assert not result.attack_detected

    def test_injected_concrete_fd_is_detected(self):
        """The attack the variation exists for: an fd value delivered
        identically to every variant decodes differently and alarms."""

        def attack_factory(ctx):
            def program():
                opened = yield from ctx.libc.open("/etc/passwd", O_RDONLY)
                yield from ctx.libc.close(opened.value)
                # Raw concrete value, NOT the variant's own representation --
                # what an overflow that overwrites a stored descriptor plants.
                yield from ctx.libc.write(3, b"pwned")
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), attack_factory, [FdOrbitVariation(2)])
        assert result.attack_detected
        alarm = result.first_alarm()
        assert alarm.alarm_type is AlarmType.ARGUMENT_MISMATCH
        assert alarm.syscall == "write"

    def test_without_fd_diversity_the_injection_passes_unnoticed(self):
        """The undefended contrast cell: identical injected fds compare equal."""

        def attack_factory(ctx):
            def program():
                opened = yield from ctx.libc.open("/etc/passwd", O_RDONLY)
                yield from ctx.libc.close(opened.value)
                yield from ctx.libc.write(3, b"pwned")
                yield from ctx.libc.exit(0)

            return program()

        result = nvexec(build_standard_host(), attack_factory, [])
        assert not result.attack_detected

    @pytest.mark.parametrize("n", [2, 3])
    def test_stacks_with_uid_and_address_families(self, n):
        if n == 2:
            stack = [FdOrbitVariation(2), UIDVariation(), AddressPartitioning()]
        else:
            stack = [
                FdOrbitVariation(n),
                OrbitUIDVariation(n),
                OrbitAddressPartitioning(n),
            ]
        kernel = build_standard_host()
        kernel.client_connect(8080, b"hello")
        result = nvexec(kernel, _benign_fd_factory, stack, num_variants=n)
        assert result.completed_normally, result.alarms
        assert not result.attack_detected

    def test_wide_table_composes_with_fd_orbit(self):
        kernel = build_standard_host()
        kernel.client_connect(8080, b"hello")
        system = NVariantSystem(
            kernel,
            _benign_fd_factory,
            [FdOrbitVariation(2)],
            interposition="wide",
        )
        result = system.run()
        assert result.completed_normally, result.alarms
