"""Integration-style tests for the syscall dispatcher and network stack."""

import pytest

from repro.kernel.errors import Errno, KernelError
from repro.kernel.filesystem import O_CREAT, O_RDONLY, O_WRONLY, R_OK
from repro.kernel.host import build_standard_host
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.network import NetworkStack
from repro.kernel.syscalls import Syscall, request


@pytest.fixture
def kernel():
    return build_standard_host()


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("tester")


def call(kernel, proc, name, *args):
    return kernel.execute(proc, request(name, *args))


class TestFileSyscalls:
    def test_open_read_close(self, kernel, proc):
        fd = call(kernel, proc, Syscall.OPEN, "/etc/passwd", O_RDONLY).value
        data = call(kernel, proc, Syscall.READ, fd, 4096).value
        assert b"www-data" in data
        assert call(kernel, proc, Syscall.CLOSE, fd).ok

    def test_open_missing_file_returns_enoent(self, kernel, proc):
        result = call(kernel, proc, Syscall.OPEN, "/etc/nothing", O_RDONLY)
        assert not result.ok
        assert result.errno is Errno.ENOENT

    def test_open_creates_with_caller_ownership(self, kernel, proc):
        proc.credentials.setuid(1000)
        result = call(kernel, proc, Syscall.OPEN, "/tmp/scratch", O_WRONLY | O_CREAT)
        assert result.ok
        assert kernel.fs.stat("/tmp/scratch").uid == 1000

    def test_permission_denied_after_privilege_drop(self, kernel, proc):
        proc.credentials.setuid(33)
        result = call(kernel, proc, Syscall.OPEN, "/etc/shadow", O_RDONLY)
        assert result.errno is Errno.EACCES

    def test_write_and_stat(self, kernel, proc):
        fd = call(kernel, proc, Syscall.OPEN, "/var/log/httpd/error_log", O_WRONLY).value
        written = call(kernel, proc, Syscall.WRITE, fd, b"boom\n").value
        assert written == 5
        assert call(kernel, proc, Syscall.FSTAT, fd).value[4] == 5

    def test_access_and_getdents(self, kernel, proc):
        assert call(kernel, proc, Syscall.ACCESS, "/etc/passwd", R_OK).ok
        names = call(kernel, proc, Syscall.GETDENTS, "/etc").value
        assert "passwd" in names

    def test_bad_descriptor_read(self, kernel, proc):
        assert call(kernel, proc, Syscall.READ, 77, 10).errno is Errno.EBADF

    def test_unlink_requires_writable_parent(self, kernel, proc):
        proc.credentials.setuid(1001)
        assert call(kernel, proc, Syscall.UNLINK, "/etc/passwd").errno is Errno.EACCES

    def test_chown_requires_privilege(self, kernel, proc):
        proc.credentials.setuid(1000)
        assert call(kernel, proc, Syscall.CHOWN, "/tmp", 1000, 1000).errno is Errno.EPERM

    def test_unknown_syscall_arguments_return_einval(self, kernel, proc):
        assert call(kernel, proc, Syscall.OPEN).errno is Errno.EINVAL


class TestCredentialSyscalls:
    def test_getuid_family(self, kernel, proc):
        assert call(kernel, proc, Syscall.GETUID).value == 0
        assert call(kernel, proc, Syscall.GETEUID).value == 0

    def test_setuid_updates_process(self, kernel, proc):
        assert call(kernel, proc, Syscall.SETUID, 33).ok
        assert proc.credentials.euid == 33
        assert call(kernel, proc, Syscall.SETUID, 0).errno is Errno.EPERM

    def test_seteuid_round_trip(self, kernel, proc):
        call(kernel, proc, Syscall.SETEUID, 33)
        assert proc.credentials.euid == 33
        call(kernel, proc, Syscall.SETEUID, 0)
        assert proc.credentials.is_privileged()

    def test_detection_calls_single_variant_semantics(self, kernel, proc):
        assert call(kernel, proc, Syscall.UID_VALUE, 42).value == 42
        assert call(kernel, proc, Syscall.COND_CHK, True).value is True
        assert call(kernel, proc, Syscall.CC_EQ, 5, 5).value is True
        assert call(kernel, proc, Syscall.CC_NEQ, 5, 5).value is False
        assert call(kernel, proc, Syscall.CC_LT, 3, 5).value is True
        assert call(kernel, proc, Syscall.CC_LEQ, 5, 5).value is True
        assert call(kernel, proc, Syscall.CC_GT, 3, 5).value is False
        assert call(kernel, proc, Syscall.CC_GEQ, 5, 3).value is True

    def test_exit_marks_process_dead(self, kernel, proc):
        call(kernel, proc, Syscall.EXIT, 7)
        assert not proc.alive
        assert proc.exit_code == 7
        assert call(kernel, proc, Syscall.GETPID).errno is Errno.ESRCH

    def test_fork_unsupported(self, kernel, proc):
        assert call(kernel, proc, Syscall.FORK).errno is Errno.ENOSYS


class TestSocketSyscalls:
    def test_bind_listen_accept_recv_send(self, kernel, proc):
        sock = call(kernel, proc, Syscall.SOCKET).value
        assert call(kernel, proc, Syscall.BIND, sock, 80).ok
        assert call(kernel, proc, Syscall.LISTEN, sock, 16).ok
        connection = kernel.client_connect(80, b"ping")
        conn_fd = call(kernel, proc, Syscall.ACCEPT, sock).value
        assert call(kernel, proc, Syscall.RECV, conn_fd, 100).value == b"ping"
        call(kernel, proc, Syscall.SEND, conn_fd, b"pong")
        assert connection.response_bytes() == b"pong"

    def test_privileged_port_requires_root(self, kernel, proc):
        proc.credentials.setuid(33)
        sock = call(kernel, proc, Syscall.SOCKET).value
        assert call(kernel, proc, Syscall.BIND, sock, 80).errno is Errno.EACCES

    def test_accept_with_empty_backlog_returns_eagain(self, kernel, proc):
        sock = call(kernel, proc, Syscall.SOCKET).value
        call(kernel, proc, Syscall.BIND, sock, 8080)
        assert call(kernel, proc, Syscall.ACCEPT, sock).errno is Errno.EAGAIN

    def test_double_bind_rejected(self, kernel, proc):
        s1 = call(kernel, proc, Syscall.SOCKET).value
        s2 = call(kernel, proc, Syscall.SOCKET).value
        call(kernel, proc, Syscall.BIND, s1, 8081)
        assert call(kernel, proc, Syscall.BIND, s2, 8081).errno is Errno.EADDRINUSE


class TestNetworkStack:
    def test_connect_before_bind_is_adopted(self):
        network = NetworkStack()
        connection = network.connect(9999, b"early")
        listener = network.bind(9999)
        assert listener.has_pending()
        assert listener.accept() is connection

    def test_connect_queues_request_bytes(self):
        network = NetworkStack()
        network.bind(80)
        connection = network.connect(80, b"GET /")
        assert connection.recv(100) == b"GET /"
        assert connection.recv(10) == b""

    def test_backlog_limit(self):
        network = NetworkStack()
        listener = network.bind(80, backlog=1)
        network.connect(80, b"a")
        with pytest.raises(KernelError) as info:
            network.connect(80, b"b")
        assert info.value.errno is Errno.ECONNREFUSED
        assert listener.has_pending()

    def test_send_after_server_close_raises_epipe(self):
        network = NetworkStack()
        network.bind(80)
        connection = network.connect(80, b"x")
        connection.closed_by_server = True
        with pytest.raises(KernelError) as info:
            connection.send(b"late")
        assert info.value.errno is Errno.EPIPE


class TestKernelBookkeeping:
    def test_stats_count_syscalls(self, kernel, proc):
        before = kernel.stats.syscall_count
        call(kernel, proc, Syscall.GETPID)
        call(kernel, proc, Syscall.TIME)
        assert kernel.stats.syscall_count == before + 2
        assert kernel.stats.syscall_breakdown["getpid"] >= 1

    def test_clock_advances(self, kernel, proc):
        t0 = call(kernel, proc, Syscall.TIME).value
        call(kernel, proc, Syscall.NANOSLEEP, 10)
        t1 = call(kernel, proc, Syscall.TIME).value
        assert t1 > t0

    def test_getrandom_is_deterministic_per_kernel(self):
        k1, k2 = SimulatedKernel(), SimulatedKernel()
        p1, p2 = k1.spawn_process(), k2.spawn_process()
        r1 = k1.execute(p1, request(Syscall.GETRANDOM, 16)).value
        r2 = k2.execute(p2, request(Syscall.GETRANDOM, 16)).value
        assert r1 == r2 and len(r1) == 16

    def test_kill_posts_fatal_signal(self, kernel):
        killer = kernel.spawn_process("killer")
        victim = kernel.spawn_process("victim")
        result = kernel.execute(killer, request(Syscall.KILL, victim.pid, 9))
        assert result.ok
        assert not victim.alive
