"""Tests for the attack library and end-to-end attack/defence integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.code_injection import run_code_injection_tagged, run_code_injection_untagged
from repro.attacks.memory_attacks import (
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome, OutcomeKind, classify
from repro.attacks.payloads import (
    OverflowSpec,
    benign_request,
    traversal_path,
    uid_overwrite_payload,
)
from repro.api.campaign import run_campaign
from repro.api.spec import (
    ADDRESS_PARTITIONING_SPEC,
    SINGLE_PROCESS_SPEC,
    UID_DIVERSITY_SPEC,
)
from repro.attacks.uid_attacks import (
    UIDAttack,
    run_remote_attack_nvariant,
    run_remote_attack_single,
    run_uid_attack,
    standard_uid_attacks,
)
from repro.apps.httpd.http import parse_request
from repro.apps.httpd.vulnerable import ANNOTATION_BUFFER_SIZE, VULNERABLE_HEADER
from repro.memory.corruption import CorruptionSpec


class TestPayloads:
    def test_traversal_path_escapes_docroot(self):
        assert traversal_path("/etc/shadow").endswith("etc/shadow")
        assert traversal_path().count("../") == 3

    def test_overflow_spec_fills_buffer_then_writes_word(self):
        value = OverflowSpec(fields=(0x41424344,)).header_value()
        assert len(value) == ANNOTATION_BUFFER_SIZE + 4
        assert value[:ANNOTATION_BUFFER_SIZE] == "A" * ANNOTATION_BUFFER_SIZE
        assert value[ANNOTATION_BUFFER_SIZE:] == "DCBA"  # little endian

    def test_partial_bytes_trims_last_word(self):
        value = OverflowSpec(fields=(0,), partial_bytes=2).header_value()
        assert len(value) == ANNOTATION_BUFFER_SIZE + 2

    def test_overflow_spec_validation(self):
        with pytest.raises(ValueError):
            OverflowSpec(fields=()).header_value()
        with pytest.raises(ValueError):
            OverflowSpec(fields=(0,), partial_bytes=9).header_value()

    def test_uid_overwrite_payload_is_parseable_http(self):
        request = parse_request(uid_overwrite_payload(0))
        assert request.header(VULNERABLE_HEADER)
        assert ".." in request.path

    def test_benign_request_rejects_oversized_annotation(self):
        with pytest.raises(ValueError):
            benign_request(annotation="A" * 200)

    def test_uid_attack_requires_exactly_one_mechanism(self):
        with pytest.raises(ValueError):
            UIDAttack(name="x", description="bad", payload=b"a", corruption=CorruptionSpec("bit-flip", 0))
        with pytest.raises(ValueError):
            UIDAttack(name="x", description="bad")


class TestOutcomeClassification:
    def test_classify_matrix(self):
        assert classify(goal_reached=True, detected=False) is OutcomeKind.UNDETECTED_COMPROMISE
        assert classify(goal_reached=True, detected=True) is OutcomeKind.DETECTED
        assert classify(goal_reached=False, detected=False) is OutcomeKind.NO_EFFECT
        assert classify(goal_reached=False, detected=False, crashed=True) is OutcomeKind.CRASHED

    def test_security_failure_flag(self):
        outcome = AttackOutcome(
            attack="a", configuration="c", kind=OutcomeKind.UNDETECTED_COMPROMISE,
            goal_reached=True, detected=False,
        )
        assert outcome.is_security_failure
        assert "undetected" in outcome.describe()


class TestUIDAttackEndToEnd:
    def test_root_overwrite_succeeds_against_single_process(self):
        attack = next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite")
        outcome = run_remote_attack_single(attack)
        assert outcome.kind is OutcomeKind.UNDETECTED_COMPROMISE
        assert outcome.goal_reached

    def test_root_overwrite_detected_by_uid_variation(self):
        attack = next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite")
        outcome = run_remote_attack_nvariant(attack, UID_DIVERSITY_SPEC)
        assert outcome.kind is OutcomeKind.DETECTED
        assert not outcome.goal_reached

    def test_partial_overwrites_detected_by_uid_variation(self):
        for name in ("partial-1-byte-overwrite", "partial-2-byte-overwrite", "partial-3-byte-overwrite"):
            attack = next(a for a in standard_uid_attacks() if a.name == name)
            outcome = run_uid_attack(attack, UID_DIVERSITY_SPEC)
            assert outcome.kind is OutcomeKind.DETECTED, name

    def test_bit_flips_are_outside_the_guarantee(self):
        for name in ("low-bit-flip", "high-bit-flip"):
            attack = next(a for a in standard_uid_attacks() if a.name == name)
            outcome = run_uid_attack(attack, UID_DIVERSITY_SPEC)
            assert outcome.kind is not OutcomeKind.DETECTED, name

    def test_address_partitioning_does_not_stop_uid_attack(self):
        attack = next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite")
        outcome = run_remote_attack_nvariant(attack, ADDRESS_PARTITIONING_SPEC)
        assert outcome.kind is OutcomeKind.UNDETECTED_COMPROMISE

    def test_masquerade_attack_reads_victim_file_when_undetected(self):
        attack = next(a for a in standard_uid_attacks() if a.name == "full-word-user-overwrite")
        single = run_remote_attack_single(attack)
        assert single.goal_reached
        protected = run_remote_attack_nvariant(attack, UID_DIVERSITY_SPEC)
        assert protected.detected

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=0x7FFFFFFF))
    def test_any_injected_complete_uid_is_detected(self, injected_uid):
        attack = UIDAttack(
            name=f"inject-{injected_uid}",
            description="property-based complete-value injection",
            payload=uid_overwrite_payload(injected_uid),
        )
        outcome = run_remote_attack_nvariant(attack, UID_DIVERSITY_SPEC)
        assert outcome.detected


class TestAddressAndCodeInjection:
    def test_address_attack_matrix(self):
        for attack in standard_address_attacks():
            single = run_address_attack_single(attack)
            redundant = run_address_attack_nvariant(attack)
            assert redundant.detected
            assert not redundant.goal_reached
            assert single.detected is False

    def test_code_injection_untagged_vs_tagged(self):
        baseline = run_code_injection_untagged()
        protected = run_code_injection_tagged()
        assert baseline.kind is OutcomeKind.UNDETECTED_COMPROMISE
        assert protected.kind is OutcomeKind.DETECTED


class TestCampaignRunner:
    def test_campaign_report_summaries(self):
        specs = (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC)
        attacks = [a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite"]
        report = run_campaign(specs, attacks)
        assert len(report.outcomes) == 2
        assert report.detection_rate("2-variant-uid") == 1.0
        assert report.detection_rate("single-process") == 0.0
        assert report.matrix()["full-word-root-overwrite"]["2-variant-uid"] == "detected"
        assert "undetected compromises" in report.describe()

    def test_legacy_campaign_shims_are_gone(self):
        """The one-release deprecation window closed: the shims must not
        resurface (scenarios are the only way to describe configurations)."""
        import repro.attacks as attacks_package

        assert not hasattr(attacks_package, "CampaignConfiguration")
        assert not hasattr(attacks_package, "run_uid_campaign")
        assert not hasattr(attacks_package, "run_address_campaign")
        with pytest.raises(ModuleNotFoundError):
            import repro.attacks.runner  # noqa: F401
