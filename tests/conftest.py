"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.variations.address import AddressPartitioning
from repro.core.variations.uid import UIDVariation
from repro.kernel.host import build_standard_host
from repro.kernel.libc import Libc


@pytest.fixture
def kernel():
    """A freshly built standard host kernel."""
    return build_standard_host()


@pytest.fixture
def libc():
    """A libc helper instance."""
    return Libc()


@pytest.fixture
def uid_variation():
    """The paper's UID variation (XOR 0x7FFFFFFF)."""
    return UIDVariation()


@pytest.fixture
def address_partitioning():
    """The address-space partitioning variation."""
    return AddressPartitioning()
