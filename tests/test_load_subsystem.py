"""The open-loop load primitives: arrivals, admission, latency, engine intake.

Three properties carry the subsystem's weight.  Arrival processes are
*seeded open-loop generators*: the same derived seed renders the same
schedule regardless of how fast anything drains, and every registered kind
emits strictly increasing positive ticks at (approximately) the quoted
rate.  Admission policies are pure decision logic whose telemetry must
balance -- offered splits exactly into admitted and shed, occupancy never
leaks.  And the engine's ``offer`` intake is the policy's enforcement
point: a full queue really refuses (or evicts) sessions, and departures
flow back into the policy's occupancy.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import uid_orbit_spec
from repro.engine import MultiSessionEngine, SessionState
from repro.load import (
    AcceptAllPolicy,
    BoundedQueuePolicy,
    LatencyHistogram,
    LoadError,
    TokenBucketPolicy,
    UnknownAdmissionError,
    UnknownArrivalError,
    admission_kinds,
    arrival_kinds,
    build_serving_session,
    create_admission_policy,
    create_arrival_process,
    run_loadtest,
)


class TestArrivalProcesses:
    def test_registered_kinds(self):
        assert arrival_kinds() == ["bursty", "constant", "poisson", "ramp"]

    @pytest.mark.parametrize("kind", ["bursty", "constant", "poisson", "ramp"])
    def test_schedules_are_increasing_positive_ticks(self, kind):
        process = create_arrival_process(kind, 10.0, rng=random.Random(7))
        ticks = process.schedule(50)
        assert len(ticks) == 50
        assert ticks[0] >= 1
        assert all(b > a for a, b in zip(ticks, ticks[1:]))
        assert all(isinstance(t, int) for t in ticks)

    @pytest.mark.parametrize("kind", ["bursty", "constant", "poisson", "ramp"])
    def test_same_seed_same_schedule(self, kind):
        first = create_arrival_process(kind, 8.0, rng=random.Random(99)).schedule(40)
        second = create_arrival_process(kind, 8.0, rng=random.Random(99)).schedule(40)
        assert first == second

    def test_different_seeds_differ(self):
        first = create_arrival_process("poisson", 8.0, rng=random.Random(1)).schedule(30)
        second = create_arrival_process("poisson", 8.0, rng=random.Random(2)).schedule(30)
        assert first != second

    def test_constant_schedule_matches_rate_exactly(self):
        # 8 req/ktick -> 125-tick gaps, no randomness involved.
        ticks = create_arrival_process("constant", 8.0).schedule(4)
        assert ticks == [125, 250, 375, 500]

    @pytest.mark.parametrize("kind", ["bursty", "poisson"])
    def test_long_run_rate_approximates_quoted_rate(self, kind):
        process = create_arrival_process(kind, 10.0, rng=random.Random(5))
        ticks = process.schedule(400)
        achieved = 400 / (ticks[-1] / 1000.0)
        assert achieved == pytest.approx(10.0, rel=0.35)

    def test_ramp_is_deterministic_and_accelerates(self):
        ticks = create_arrival_process("ramp", 10.0, rng=random.Random(3)).schedule(20)
        again = create_arrival_process("ramp", 10.0, rng=random.Random(4)).schedule(20)
        assert ticks == again  # the rng is never consulted
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert gaps[0] > gaps[-1]

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(UnknownArrivalError) as excinfo:
            create_arrival_process("sawtooth", 8.0)
        message = str(excinfo.value)
        assert "unknown arrival process 'sawtooth'" in message
        for kind in arrival_kinds():
            assert kind in message

    def test_bad_parameters_raise_load_error(self):
        with pytest.raises(LoadError, match="bad parameters"):
            create_arrival_process("poisson", 8.0, warp=9)
        with pytest.raises(LoadError, match="positive number"):
            create_arrival_process("poisson", 0)
        with pytest.raises(LoadError, match="positive number"):
            create_arrival_process("poisson", True)
        with pytest.raises(LoadError, match="burst_factor"):
            create_arrival_process("bursty", 8.0, burst_factor=1.0)
        with pytest.raises(LoadError, match="ramp_from"):
            create_arrival_process("ramp", 8.0, ramp_from=-1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(LoadError, match="count"):
            create_arrival_process("constant", 8.0).schedule(-1)

    @given(seed=st.integers(0, 2**32), rate=st.floats(0.5, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_bursty_always_terminates_increasing(self, seed, rate):
        # The MMPP sampler redraws inside fresh ON periods; it must never
        # wedge, whatever the rate/seed combination.
        ticks = create_arrival_process("bursty", rate, rng=random.Random(seed)).schedule(25)
        assert len(ticks) == 25
        assert all(b > a for a, b in zip(ticks, ticks[1:]))


class TestAdmissionPolicies:
    def test_registered_kinds(self):
        assert admission_kinds() == ["accept-all", "bounded-queue", "token-bucket"]

    def test_accept_all_never_sheds_and_counts(self):
        policy = AcceptAllPolicy()
        for now in range(10):
            assert policy.offer(now).admitted
        assert policy.stats.to_dict() == {
            "admitted": 10,
            "offered": 10,
            "queue_high_water": 10,
            "queued": 10,
            "shed": 0,
        }
        for _ in range(10):
            policy.released()
        assert policy.stats.queued == 0
        assert policy.stats.queue_high_water == 10

    def test_bounded_newest_sheds_at_capacity(self):
        policy = BoundedQueuePolicy(capacity=2, drop="newest")
        assert policy.offer(0).admitted
        assert policy.offer(1).admitted
        refused = policy.offer(2)
        assert not refused.admitted and not refused.evict_oldest
        assert policy.stats.shed == 1
        policy.released()  # one completes
        assert policy.offer(3).admitted
        assert policy.stats.queue_high_water == 2

    def test_bounded_oldest_asks_caller_to_evict(self):
        policy = BoundedQueuePolicy(capacity=2, drop="oldest")
        policy.offer(0)
        policy.offer(1)
        decision = policy.offer(2)
        assert decision.admitted and decision.evict_oldest
        policy.released()  # the caller evicts its oldest entry
        assert policy.stats.queued == 2
        assert policy.stats.shed == 1
        assert policy.stats.admitted == 3
        assert policy.stats.queue_high_water == 2

    def test_token_bucket_sheds_on_rate_and_refills(self):
        policy = TokenBucketPolicy(rate=1000.0, burst=2.0)  # 1 token per tick
        assert policy.offer(0).admitted
        assert policy.offer(0).admitted
        assert not policy.offer(0).admitted  # burst spent, same instant
        assert policy.offer(3).admitted  # refilled while time passed
        assert policy.stats.shed == 1

    def test_released_underflow_raises(self):
        policy = AcceptAllPolicy()
        with pytest.raises(LoadError, match="released more work"):
            policy.released()

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(UnknownAdmissionError) as excinfo:
            create_admission_policy("coin-flip")
        message = str(excinfo.value)
        assert "unknown admission policy 'coin-flip'" in message
        for kind in admission_kinds():
            assert kind in message

    def test_bad_parameters_raise_load_error(self):
        with pytest.raises(LoadError, match="bad parameters"):
            create_admission_policy("accept-all", capacity=3)
        with pytest.raises(LoadError, match="capacity"):
            create_admission_policy("bounded-queue", capacity=0)
        with pytest.raises(LoadError, match="drop"):
            create_admission_policy("bounded-queue", drop="middle")
        with pytest.raises(LoadError, match="token rate"):
            create_admission_policy("token-bucket", rate=0)
        with pytest.raises(LoadError, match="burst"):
            create_admission_policy("token-bucket", burst=0.5)

    @given(
        capacity=st.integers(1, 6),
        offers=st.lists(st.integers(0, 5), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_telemetry_always_balances(self, capacity, offers):
        # offered == admitted - (drop-oldest re-admissions) + shed is policy
        # specific; what must hold universally: occupancy stays within
        # capacity after each eviction and counters never go negative.
        policy = BoundedQueuePolicy(capacity=capacity, drop="newest")
        releases = 0
        for step, release_count in enumerate(offers):
            policy.offer(step)
            for _ in range(min(release_count, policy.stats.queued)):
                policy.released()
                releases += 1
        stats = policy.stats
        assert stats.offered == len(offers)
        assert stats.admitted + stats.shed == stats.offered
        assert stats.queued == stats.admitted - releases
        assert 0 <= stats.queued <= capacity
        assert stats.queue_high_water <= capacity


class TestLatencyHistogram:
    def test_empty_statistics_are_nan_and_json_null(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        for value in (histogram.mean, histogram.min, histogram.max, histogram.p50,
                      histogram.p99, histogram.p999):
            assert math.isnan(value)
        payload = histogram.to_dict()
        assert payload["count"] == 0
        assert all(payload[key] is None for key in ("mean", "min", "max", "p50",
                                                    "p90", "p99", "p999"))

    def test_nearest_rank_percentiles(self):
        histogram = LatencyHistogram()
        for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            histogram.add(value)
        assert histogram.p50 == 50.0
        assert histogram.p90 == 90.0
        assert histogram.p99 == 100.0
        assert histogram.p999 == 100.0
        assert histogram.percentile(10) == 10.0
        assert histogram.mean == 55.0
        assert histogram.min == 10.0 and histogram.max == 100.0

    def test_single_sample_dominates_every_percentile(self):
        histogram = LatencyHistogram()
        histogram.add(42)
        assert histogram.p50 == histogram.p999 == 42.0

    def test_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError, match="sojourn"):
            histogram.add(-1)
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(0)
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(101)

    @given(samples=st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_order_statistics(self, samples):
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.add(sample)
        ordered = sorted(samples)
        assert histogram.min == ordered[0]
        assert histogram.max == ordered[-1]
        assert histogram.p50 in ordered
        assert histogram.p50 <= histogram.p90 <= histogram.p99 <= histogram.p999


def _fresh_session(name, requests=1):
    """A fresh (never-stepped) serving session with *requests* queued."""
    from repro.attacks.payloads import benign_request

    session = build_serving_session(
        uid_orbit_spec(2), "httpd", name=name, max_requests=requests
    )
    for _ in range(requests):
        session.kernel.client_connect(80, benign_request())
    return session


class TestEngineIntake:
    def test_offer_without_intake_admits(self):
        engine = MultiSessionEngine([], name="open")
        assert engine.offer(_fresh_session("s1"))
        assert [s.name for s in engine.sessions] == ["s1"]

    def test_offer_sheds_when_bounded_queue_full(self):
        policy = BoundedQueuePolicy(capacity=2, drop="newest")
        engine = MultiSessionEngine([], name="bounded", intake=policy)
        assert engine.offer(_fresh_session("s1"))
        assert engine.offer(_fresh_session("s2"))
        assert not engine.offer(_fresh_session("s3"))
        assert [s.name for s in engine.sessions] == ["s1", "s2"]
        assert policy.stats.shed == 1

    def test_offer_evicts_oldest_unstarted_session(self):
        policy = BoundedQueuePolicy(capacity=2, drop="oldest")
        engine = MultiSessionEngine([], name="evicting", intake=policy)
        engine.offer(_fresh_session("s1"))
        engine.offer(_fresh_session("s2"))
        assert engine.offer(_fresh_session("s3"))
        assert [s.name for s in engine.sessions] == ["s2", "s3"]
        assert policy.stats.queued == 2

    def test_completed_sessions_release_their_slot(self):
        policy = BoundedQueuePolicy(capacity=1, drop="newest")
        engine = MultiSessionEngine([], name="draining", intake=policy)
        assert engine.offer(_fresh_session("s1"))
        assert not engine.offer(_fresh_session("blocked"))
        engine.run()
        assert engine.sessions[0].state is SessionState.COMPLETED
        assert policy.stats.queued == 0
        assert engine.offer(_fresh_session("s2"))


class TestDriverAccounting:
    def test_unknown_attack_kind_raises(self):
        with pytest.raises(LoadError, match="unknown attack kind"):
            run_loadtest(uid_orbit_spec(2), requests=2, attacks=("rm-rf",), seed=1)

    def test_requests_and_multiplex_validation(self):
        with pytest.raises(LoadError, match="requests"):
            run_loadtest(uid_orbit_spec(2), requests=-1, seed=1)
        with pytest.raises(LoadError, match="multiplex"):
            run_loadtest(uid_orbit_spec(2), requests=2, multiplex=0, seed=1)

    def test_seeded_runs_are_identical(self):
        first = run_loadtest(uid_orbit_spec(2), requests=8, rate=20.0, seed=77)
        second = run_loadtest(uid_orbit_spec(2), requests=8, rate=20.0, seed=77)
        assert first.to_dict() == second.to_dict()

    def test_accounting_balances_under_shedding(self):
        result = run_loadtest(
            uid_orbit_spec(2),
            requests=16,
            rate=200.0,
            seed=5,
            admission="bounded-queue",
            admission_params={"capacity": 2, "drop": "oldest"},
        )
        assert result.offered == 16
        assert result.completed + result.evicted + result.aborted == result.admitted
        assert result.shed > 0
        assert result.queue_high_water <= 2
        assert result.alarms == 0
        assert result.latency.count == result.completed
