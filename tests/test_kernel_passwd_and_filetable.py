"""Unit tests for passwd/group parsing, diversification and descriptor tables."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.errors import Errno, KernelError
from repro.kernel.filesystem import Inode, O_APPEND, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.filetable import FileDescriptorTable, OpenFile
from repro.kernel.passwd import (
    GroupEntry,
    PasswdEntry,
    UserDatabase,
    default_group_entries,
    default_passwd_entries,
    diversify_group,
    diversify_passwd,
    format_group,
    format_passwd,
    parse_group,
    parse_passwd,
)

UID_MASK = 0x7FFFFFFF


class TestPasswdParsing:
    def test_roundtrip_defaults(self):
        entries = default_passwd_entries()
        assert parse_passwd(format_passwd(entries)) == entries

    def test_group_roundtrip_defaults(self):
        entries = default_group_entries()
        assert parse_group(format_group(entries)) == entries

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# comment\n\nroot:x:0:0:root:/root:/bin/sh\n"
        entries = parse_passwd(text)
        assert len(entries) == 1 and entries[0].name == "root"

    def test_malformed_line_raises(self):
        with pytest.raises(KernelError) as info:
            parse_passwd("root:x:0\n")
        assert info.value.errno is Errno.EINVAL

    def test_malformed_group_raises(self):
        with pytest.raises(KernelError):
            parse_group("wheel:x\n")

    def test_user_database_lookups(self):
        db = UserDatabase(default_passwd_entries(), default_group_entries())
        assert db.getpwnam("www-data").uid == 33
        assert db.getpwuid(0).name == "root"
        assert db.getgrnam("www-data").gid == 33
        assert db.getgrgid(1000).name == "alice"

    def test_user_database_missing_raises_keyerror(self):
        db = UserDatabase(default_passwd_entries())
        with pytest.raises(KeyError):
            db.getpwnam("nosuchuser")
        with pytest.raises(KeyError):
            db.getpwuid(4242)

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdefgh", min_size=1, max_size=8),
                st.integers(min_value=0, max_value=UID_MASK),
                st.integers(min_value=0, max_value=UID_MASK),
            ),
            max_size=8,
        )
    )
    def test_parse_format_roundtrip_property(self, rows):
        entries = [
            PasswdEntry(name, "x", uid, gid, "", f"/home/{name}", "/bin/sh")
            for name, uid, gid in rows
        ]
        assert parse_passwd(format_passwd(entries)) == entries


class TestDiversification:
    def test_diversify_passwd_transforms_uid_and_gid(self):
        entries = default_passwd_entries()
        varied = diversify_passwd(entries, lambda u: u ^ UID_MASK)
        for original, transformed in zip(entries, varied):
            assert transformed.uid == original.uid ^ UID_MASK
            assert transformed.gid == original.gid ^ UID_MASK
            assert transformed.name == original.name

    def test_diversify_group_transforms_gid_only(self):
        entries = default_group_entries()
        varied = diversify_group(entries, lambda g: g ^ UID_MASK)
        for original, transformed in zip(entries, varied):
            assert transformed.gid == original.gid ^ UID_MASK
            assert transformed.members == original.members

    def test_identity_diversification_is_noop(self):
        entries = default_passwd_entries()
        assert diversify_passwd(entries, lambda u: u) == entries

    def test_root_representation_in_variant_one(self):
        varied = diversify_passwd(default_passwd_entries(), lambda u: u ^ UID_MASK)
        root = next(e for e in varied if e.name == "root")
        assert root.uid == 0x7FFFFFFF  # "0x7FFFFFFF represents root"


def _inode(content=b"hello"):
    node = Inode(mode=0o644, uid=0, gid=0, is_directory=False)
    node.data = bytearray(content)
    return node


class TestOpenFile:
    def test_read_advances_offset(self):
        handle = OpenFile(inode=_inode(b"hello world"), flags=O_RDONLY)
        assert handle.read(5) == b"hello"
        assert handle.read(6) == b" world"
        assert handle.read(5) == b""

    def test_write_requires_writable_flags(self):
        handle = OpenFile(inode=_inode(), flags=O_RDONLY)
        with pytest.raises(KernelError) as info:
            handle.write(b"x")
        assert info.value.errno is Errno.EBADF

    def test_read_requires_readable_flags(self):
        handle = OpenFile(inode=_inode(), flags=O_WRONLY)
        with pytest.raises(KernelError):
            handle.read(1)

    def test_write_extends_file(self):
        node = _inode(b"")
        handle = OpenFile(inode=node, flags=O_RDWR)
        handle.write(b"abc")
        assert bytes(node.data) == b"abc"

    def test_append_mode_writes_at_end(self):
        node = _inode(b"log:")
        handle = OpenFile(inode=node, flags=O_WRONLY | O_APPEND)
        handle.offset = 0
        handle.write(b"entry")
        assert bytes(node.data) == b"log:entry"

    def test_seek_modes(self):
        handle = OpenFile(inode=_inode(b"0123456789"), flags=O_RDONLY)
        assert handle.seek(4, 0) == 4
        assert handle.seek(2, 1) == 6
        assert handle.seek(-1, 2) == 9
        with pytest.raises(KernelError):
            handle.seek(-100, 1)
        with pytest.raises(KernelError):
            handle.seek(0, 7)


class TestFileDescriptorTable:
    def test_allocates_lowest_free_descriptor(self):
        table = FileDescriptorTable()
        fd0 = table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        fd1 = table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        assert (fd0, fd1) == (0, 1)
        table.close(fd0)
        fd2 = table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        assert fd2 == 0

    def test_install_keeps_slot_alignment(self):
        table = FileDescriptorTable()
        entry = OpenFile(inode=_inode(), flags=O_RDONLY)
        table.install(5, entry)
        assert table.get(5) is entry

    def test_get_unknown_fd_raises_ebadf(self):
        table = FileDescriptorTable()
        with pytest.raises(KernelError) as info:
            table.get(3)
        assert info.value.errno is Errno.EBADF

    def test_close_all(self):
        table = FileDescriptorTable()
        for _ in range(4):
            table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        table.close_all()
        assert len(table) == 0

    def test_descriptor_exhaustion_raises_emfile(self):
        table = FileDescriptorTable(max_descriptors=2)
        table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        with pytest.raises(KernelError) as info:
            table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        assert info.value.errno is Errno.EMFILE

    def test_get_socket_type_mismatch(self):
        table = FileDescriptorTable()
        fd = table.allocate(OpenFile(inode=_inode(), flags=O_RDONLY))
        with pytest.raises(KernelError) as info:
            table.get_socket(fd)
        assert info.value.errno is Errno.ENOTSOCK
