"""Unit tests for the virtual filesystem and its permission model."""

import pytest

from repro.kernel.credentials import root_credentials, user_credentials
from repro.kernel.errors import Errno, KernelError
from repro.kernel.filesystem import FileSystem, R_OK, W_OK, X_OK


@pytest.fixture
def fs():
    filesystem = FileSystem()
    filesystem.mkdir("/etc")
    filesystem.mkdir("/home")
    filesystem.mkdir("/home/alice", uid=1000, gid=1000, mode=0o750)
    filesystem.create_file("/etc/passwd", "root:x:0:0:::\n", mode=0o644)
    filesystem.create_file("/etc/shadow", "secret", mode=0o600)
    filesystem.create_file("/home/alice/diary.txt", "dear diary", mode=0o600, uid=1000, gid=1000)
    return filesystem


class TestPathResolution:
    def test_root_exists(self, fs):
        assert fs.exists("/")

    def test_lookup_nested(self, fs):
        assert fs.read_file("/etc/passwd").startswith(b"root:x")

    def test_missing_file_raises_enoent(self, fs):
        with pytest.raises(KernelError) as info:
            fs.lookup("/etc/missing")
        assert info.value.errno is Errno.ENOENT

    def test_file_as_directory_raises_enotdir(self, fs):
        with pytest.raises(KernelError) as info:
            fs.lookup("/etc/passwd/x")
        assert info.value.errno is Errno.ENOTDIR

    def test_relative_path_rejected(self, fs):
        with pytest.raises(KernelError) as info:
            fs.lookup("etc/passwd")
        assert info.value.errno is Errno.EINVAL

    def test_normalisation_of_dotdot(self, fs):
        # The VFS itself normalises; the traversal bug lives in the server's
        # path joining, not here.
        assert fs.read_file("/home/alice/../../etc/passwd").startswith(b"root:x")

    def test_listdir_sorted(self, fs):
        assert fs.listdir("/etc") == ["passwd", "shadow"]

    def test_listdir_on_file_raises(self, fs):
        with pytest.raises(KernelError):
            fs.listdir("/etc/passwd")

    def test_walk_covers_subtree(self, fs):
        paths = [path for path, _ in fs.walk("/etc")]
        assert "/etc/passwd" in paths and "/etc/shadow" in paths


class TestMutation:
    def test_create_and_read_file(self, fs):
        fs.create_file("/etc/hosts", "localhost\n")
        assert fs.read_file("/etc/hosts") == b"localhost\n"

    def test_write_file_replaces_content(self, fs):
        fs.write_file("/etc/passwd", b"new")
        assert fs.read_file("/etc/passwd") == b"new"

    def test_mkdir_parents(self, fs):
        fs.mkdir("/var/log/httpd", parents=True)
        assert fs.exists("/var/log/httpd")

    def test_mkdir_existing_raises_eexist(self, fs):
        with pytest.raises(KernelError) as info:
            fs.mkdir("/etc")
        assert info.value.errno is Errno.EEXIST

    def test_unlink(self, fs):
        fs.unlink("/etc/shadow")
        assert not fs.exists("/etc/shadow")

    def test_unlink_nonempty_directory_raises(self, fs):
        with pytest.raises(KernelError) as info:
            fs.unlink("/home/alice")
        assert info.value.errno is Errno.ENOTEMPTY

    def test_rename(self, fs):
        fs.rename("/etc/passwd", "/etc/passwd.bak")
        assert fs.exists("/etc/passwd.bak")
        assert not fs.exists("/etc/passwd")

    def test_chown_and_chmod(self, fs):
        fs.chown("/etc/shadow", 1000, 1000)
        fs.chmod("/etc/shadow", 0o400)
        stat = fs.stat("/etc/shadow")
        assert stat.uid == 1000
        assert stat.mode & 0o777 == 0o400

    def test_stat_size(self, fs):
        assert fs.stat("/home/alice/diary.txt").size == len(b"dear diary")


class TestPermissions:
    def test_root_reads_everything(self, fs):
        assert fs.access("/etc/shadow", root_credentials(), R_OK)

    def test_owner_reads_private_file(self, fs):
        alice = user_credentials(1000, 1000)
        assert fs.access("/home/alice/diary.txt", alice, R_OK)

    def test_other_user_denied_private_file(self, fs):
        bob = user_credentials(1001, 1001)
        assert not fs.access("/home/alice/diary.txt", bob, R_OK)
        assert not fs.access("/etc/shadow", bob, R_OK)

    def test_world_readable_file(self, fs):
        bob = user_credentials(1001, 1001)
        assert fs.access("/etc/passwd", bob, R_OK)
        assert not fs.access("/etc/passwd", bob, W_OK)

    def test_group_permissions(self, fs):
        fs.create_file("/etc/groupfile", "x", mode=0o640, uid=0, gid=33)
        www = user_credentials(33, 33)
        other = user_credentials(1001, 1001)
        assert fs.access("/etc/groupfile", www, R_OK)
        assert not fs.access("/etc/groupfile", other, R_OK)

    def test_supplementary_group_grants_access(self, fs):
        fs.create_file("/etc/groupfile", "x", mode=0o640, uid=0, gid=33)
        member = user_credentials(1001, 1001, groups=(33,))
        assert fs.access("/etc/groupfile", member, R_OK)

    def test_root_execute_requires_some_x_bit(self, fs):
        fs.create_file("/bin-script", "x", mode=0o644)
        assert not fs.access("/bin-script", root_credentials(), X_OK)
        fs.chmod("/bin-script", 0o755)
        assert fs.access("/bin-script", root_credentials(), X_OK)

    def test_directory_permissions_checked_for_traversal_mode(self, fs):
        bob = user_credentials(1001, 1001)
        assert not fs.access("/home/alice", bob, W_OK)
