"""The benchmark trajectory diff tool: tolerance and wall-clock noise gating.

``benchmarks/bench_diff.py`` is a standalone script (not on the package
path), so it is loaded by file location.  These tests pin the noise
controls the CI gate relies on: ``wall_``-prefixed metrics never enter the
diff, ``--rtol`` suppresses jitter-sized numeric moves, and claim flips
still fail loudly through both filters.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_DIFF = Path(__file__).resolve().parents[1] / "benchmarks" / "bench_diff.py"
_spec = importlib.util.spec_from_file_location("bench_diff", _BENCH_DIFF)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


class TestWallClockExclusion:
    def test_wall_prefix_matches_leaf_component_only(self):
        assert bench_diff.is_wall_clock("wall_seconds")
        assert bench_diff.is_wall_clock("rows.0.wall_speedup")
        assert bench_diff.is_wall_clock("telemetry.wall_host_cpus")
        assert not bench_diff.is_wall_clock("rows.0.virtual_elapsed")
        assert not bench_diff.is_wall_clock("firewall_rules")  # no dot-leaf match

    def test_wall_metrics_never_reach_the_diff(self):
        baseline = {"wall_seconds": 1.0, "cells": 10}
        current = {"wall_seconds": 9.0, "cells": 10}
        lines, flips = bench_diff.diff_benchmark(baseline, current)
        assert lines == [] and flips == 0

    def test_wall_metric_appearing_or_vanishing_is_silent(self):
        lines, flips = bench_diff.diff_benchmark({"wall_seconds": 1.0}, {"cells": 3})
        assert flips == 0
        assert all("wall_seconds" not in line for line in lines)


class TestRelativeTolerance:
    def test_rtol_suppresses_jitter_sized_moves(self):
        baseline = {"speedup": 4.0}
        current = {"speedup": 4.1}
        lines, _ = bench_diff.diff_benchmark(baseline, current, rtol=0.05)
        assert lines == []
        lines, _ = bench_diff.diff_benchmark(baseline, current, rtol=0.01)
        assert len(lines) == 1 and "speedup" in lines[0]

    def test_rtol_zero_keeps_every_numeric_move(self):
        lines, _ = bench_diff.diff_benchmark({"n": 1.0}, {"n": 1.000001})
        assert len(lines) == 1

    def test_rtol_is_absolute_against_a_zero_baseline(self):
        lines, _ = bench_diff.diff_benchmark({"n": 0}, {"n": 0.01}, rtol=0.05)
        assert lines == []
        lines, _ = bench_diff.diff_benchmark({"n": 0}, {"n": 0.5}, rtol=0.05)
        assert len(lines) == 1

    def test_rtol_never_suppresses_claim_flips(self):
        baseline = {"claims.detected": True, "speedup": 4.0}
        current = {"claims.detected": False, "speedup": 4.0}
        lines, flips = bench_diff.diff_benchmark(baseline, current, rtol=0.5)
        assert flips == 1
        assert any("claims.detected" in line for line in lines)


class TestMainGate:
    def _write(self, directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_fail_on_flip_with_rtol(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        results = tmp_path / "results"
        self._write(baseline, "demo", {"ok": True, "speedup": 4.0, "wall_seconds": 1.0})
        self._write(results, "demo", {"ok": True, "speedup": 4.05, "wall_seconds": 7.0})
        argv = [
            "--baseline", str(baseline), "--results", str(results),
            "--fail-on-flip", "--rtol", "0.05",
        ]
        assert bench_diff.main(argv) == 0
        assert "unchanged" in capsys.readouterr().out

        self._write(results, "demo", {"ok": False, "speedup": 4.05, "wall_seconds": 7.0})
        assert bench_diff.main(argv) == 1

    def test_missing_baseline_names_file_and_regeneration_target(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        results = tmp_path / "results"
        self._write(baseline, "old", {"ok": True})
        self._write(results, "old", {"ok": True})
        self._write(results, "fresh", {"ok": True, "cells": 3})
        argv = ["--baseline", str(baseline), "--results", str(results), "--fail-on-flip"]
        assert bench_diff.main(argv) == 0  # a new benchmark is not a flip
        out = capsys.readouterr().out
        assert "missing baseline file" in out
        assert str(baseline / "BENCH_fresh.json") in out
        assert "make bench-smoke" in out
        assert "commit benchmarks/baseline/BENCH_fresh.json" in out

    def test_missing_baseline_still_catches_born_failing_claims(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        results = tmp_path / "results"
        baseline.mkdir()
        self._write(results, "fresh", {"ok": False, "claims.holds": False})
        argv = ["--baseline", str(baseline), "--results", str(results), "--fail-on-flip"]
        assert bench_diff.main(argv) == 1
        out = capsys.readouterr().out
        assert "born failing" in out

    def test_negative_rtol_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            bench_diff.main(["--rtol", "-1"])
        assert excinfo.value.code == 2
