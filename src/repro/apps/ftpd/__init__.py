"""The mini-ftpd: the second serving workload.

A command/data-channel file server with the same planted vulnerability
surface as the mini-httpd (see :mod:`repro.apps.ftpd.server`), used to show
the framework's protections are application-independent.
"""

from repro.apps.ftpd.config import FtpConfig, parse_ftp_config
from repro.apps.ftpd.server import (
    MiniFtpd,
    build_ftpd_program,
    make_ftpd_factory,
)

__all__ = [
    "FtpConfig",
    "MiniFtpd",
    "build_ftpd_program",
    "make_ftpd_factory",
    "parse_ftp_config",
]
