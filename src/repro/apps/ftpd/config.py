"""Server configuration: a miniature ``ftpd.conf``.

Same shape as :mod:`repro.apps.httpd.config`: the directives that matter are
``User``/``Group`` (the account the server drops to per transfer) and the log
paths whose root-only ownership makes privilege handling observable.
"""

from __future__ import annotations

import dataclasses

from repro.kernel.host import (
    FTP_DATA_PORT,
    FTP_ERROR_LOG,
    FTP_PORT,
    FTP_ROOT,
    FTP_TRANSFER_LOG,
)


@dataclasses.dataclass
class FtpConfig:
    """Parsed ftpd configuration."""

    listen_port: int = FTP_PORT
    data_port: int = FTP_DATA_PORT
    user: str = "daemon"
    group: str = "daemon"
    ftp_root: str = FTP_ROOT
    error_log: str = FTP_ERROR_LOG
    transfer_log: str = FTP_TRANSFER_LOG
    admin_user: str = "root"
    max_command_size: int = 8192

    def validate(self) -> None:
        """Sanity-check the configuration values."""
        for label, port in (("Listen", self.listen_port), ("DataPort", self.data_port)):
            if not 0 < port < 65536:
                raise ValueError(f"invalid {label} port {port}")
        if self.listen_port == self.data_port:
            raise ValueError("command and data ports must differ")
        if not self.ftp_root.startswith("/"):
            raise ValueError("FtpRoot must be an absolute path")
        if not self.user:
            raise ValueError("User directive must not be empty")
        if not self.group:
            raise ValueError("Group directive must not be empty")


#: Directive name -> (attribute, parser)
_DIRECTIVES = {
    "listen": ("listen_port", int),
    "dataport": ("data_port", int),
    "user": ("user", str),
    "group": ("group", str),
    "ftproot": ("ftp_root", str),
    "errorlog": ("error_log", str),
    "transferlog": ("transfer_log", str),
    "adminuser": ("admin_user", str),
    "maxcommandsize": ("max_command_size", int),
}


def parse_ftp_config(text: str) -> FtpConfig:
    """Parse ``ftpd.conf`` contents into an :class:`FtpConfig`.

    Unknown directives are ignored; malformed values raise ``ValueError`` so
    misconfiguration surfaces at startup rather than at privilege-drop time.
    """
    config = FtpConfig()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed directive on line {line_number}: {raw_line!r}")
        directive, value = parts[0].lower(), parts[1].strip()
        entry = _DIRECTIVES.get(directive)
        if entry is None:
            continue
        attribute, parser = entry
        try:
            setattr(config, attribute, parser(value))
        except ValueError as error:
            raise ValueError(f"bad value for {parts[0]} on line {line_number}: {error}") from error
    config.validate()
    return config
