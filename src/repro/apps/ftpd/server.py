"""The mini wu-ftpd: the second serving workload.

A single-process command/data-channel file server written against the same
simulated system-call interface as the mini-httpd, demonstrating that the
framework's protections are properties of the *system*, not of one
application.  Its privilege lifecycle is the same pattern the paper targets:
the server starts as root, maps its configured ``User``/``Group`` to numeric
ids via ``/etc/passwd``, caches those ids in memory, and *per transfer* drops
its effective uid to the worker id, reads the file, and escalates back to
root for logging.

Crucially the cached ids live in the **identical** vulnerable memory layout
as the httpd's (:func:`repro.apps.httpd.vulnerable.build_server_state` is
reused verbatim): a fixed 64-byte annotation buffer copied into without
bounds checks (``SITE ANNOTATE``, the FTP analogue of the ``X-Annotation``
header) sits directly in front of the worker uid/gid, admin uid and banner
pointer.  The same overflow payload bytes therefore corrupt the same fields
in both applications, which is what makes the cross-app detection-parity
experiments meaningful.

Protocol (one conversation per command connection, all lines CRLF-framed)::

    client: USER name              server: 331
    client: PASS secret            server: 230
    client: SITE ANNOTATE <value>  server: 200   (vulnerable copy)
    client: RETR <path>            server: 150 + file bytes on the data
                                           channel + 226, or 550
    client: QUIT                   server: 221

Each command connection is paired with one pre-connected data connection
(accepted FIFO from the data port), matching the driver side in
:mod:`repro.apps.clients.ftpbench`.  ``RETR`` resolves its path against the
FTP root without ``..`` sanitisation -- the same deliberate traversal bug as
the httpd -- so a privilege-retention attack has an observable goal.
"""

from __future__ import annotations

import posixpath
from typing import Generator, Optional

from repro.apps.ftpd.config import FtpConfig, parse_ftp_config
from repro.apps.httpd.server import ServedRequest, ServerReport
from repro.apps.httpd.vulnerable import (
    ServerStateLayout,
    build_server_state,
    copy_annotation_header,
    read_banner,
)
from repro.core.nvariant import UIDCodec, VariantContext
from repro.kernel.filesystem import O_APPEND, O_RDONLY, O_WRONLY
from repro.kernel.host import FTPD_CONF
from repro.kernel.libc import Libc
from repro.kernel.passwd import UserDatabase
from repro.kernel.syscalls import SyscallRequest, SyscallResult
from repro.memory.address_space import AddressSpace

ServerProgram = Generator[SyscallRequest, SyscallResult, ServerReport]

#: Greeting sent on every accepted command connection.
GREETING = b"220 mini-ftpd ready\r\n"


def split_commands(raw: bytes) -> list[bytes]:
    """Split a command connection's buffer into its CRLF-framed lines."""
    return [line for line in raw.split(b"\r\n") if line]


class _FtpConnection:
    """One live command connection and its paired data channel."""

    def __init__(self, fd: int, data_fd: Optional[int], pending: list[bytes]):
        self.fd = fd
        self.data_fd = data_fd
        self.pending = pending


class MiniFtpd:
    """One build of the second case-study server.

    Parameters mirror :class:`repro.apps.httpd.server.MiniHttpd`:
    ``transformed`` selects the original or UID-transformed build,
    ``max_requests`` budgets the number of ``RETR`` transfers served, and
    ``multiplex`` bounds how many conversations are interleaved (one transfer
    per live connection per turn).
    """

    def __init__(
        self,
        libc: Libc,
        uid_codec: UIDCodec,
        address_space: AddressSpace,
        *,
        transformed: bool = False,
        max_requests: Optional[int] = None,
        multiplex: int = 1,
        config_path: str = FTPD_CONF,
    ):
        if multiplex < 1:
            raise ValueError("multiplex must be at least 1")
        self.libc = libc
        self.codec = uid_codec if transformed else UIDCodec.identity()
        self.address_space = address_space
        self.transformed = transformed
        self.max_requests = max_requests
        self.multiplex = multiplex
        self.config_path = config_path
        self.config: Optional[FtpConfig] = None
        self.layout: Optional[ServerStateLayout] = None
        self.report = ServerReport()

    # -- small generator helpers ------------------------------------------------

    def _read_whole_file(self, path: str):
        """Open, read fully and close *path*; returns (ok, data bytes)."""
        libc = self.libc
        opened = yield from libc.open(path, O_RDONLY)
        if not opened.ok:
            return False, b""
        fd = opened.value
        chunks = []
        while True:
            chunk = yield from libc.read(fd, 4096)
            if not chunk.ok or not chunk.value:
                break
            chunks.append(chunk.value)
        yield from libc.close(fd)
        return True, b"".join(chunks)

    def _is_root(self):
        """UID comparison against root, in the build-appropriate form."""
        libc = self.libc
        euid = (yield from libc.geteuid()).value
        if self.transformed:
            result = yield from libc.cc_eq(euid, self.codec.root)
            return bool(result.value)
        return euid == 0

    def _expose_uid(self, uid: int):
        """uid_value() exposure of a single UID use (transformed build only)."""
        if self.transformed:
            result = yield from self.libc.uid_value(uid)
            return result.value
        return uid

    # -- startup --------------------------------------------------------------------

    def _startup(self):
        """Read configuration and accounts, build state, bind both sockets.

        Returns ``(cmd_listen_fd, data_listen_fd, error_fd, transfer_fd)`` or
        raises ``RuntimeError`` on unrecoverable misconfiguration.
        """
        libc = self.libc

        ok, conf_bytes = yield from self._read_whole_file(self.config_path)
        if not ok:
            raise RuntimeError(f"cannot read configuration {self.config_path}")
        self.config = parse_ftp_config(conf_bytes.decode())

        ok, passwd_bytes = yield from self._read_whole_file("/etc/passwd")
        if not ok:
            raise RuntimeError("cannot read /etc/passwd")
        ok, group_bytes = yield from self._read_whole_file("/etc/group")
        if not ok:
            raise RuntimeError("cannot read /etc/group")
        database = UserDatabase.from_text(passwd_bytes.decode(), group_bytes.decode())

        worker_entry = database.getpwnam(self.config.user)
        group_entry = database.getgrnam(self.config.group)
        admin_entry = database.getpwnam(self.config.admin_user)

        worker_uid = yield from self._expose_uid(worker_entry.uid)
        worker_gid = group_entry.gid
        admin_uid = yield from self._expose_uid(admin_entry.uid)

        # The httpd's vulnerable layout, reused byte-for-byte: the same
        # overflow payloads reach the same fields in both applications.
        self.layout = build_server_state(
            self.address_space,
            worker_uid=worker_uid,
            worker_gid=worker_gid,
            admin_uid=admin_uid,
        )

        error_fd = (yield from libc.open(self.config.error_log, O_WRONLY | O_APPEND)).value
        transfer_fd = (yield from libc.open(self.config.transfer_log, O_WRONLY | O_APPEND)).value

        cmd_sock = yield from libc.socket()
        cmd_listen_fd = cmd_sock.value
        bound = yield from libc.bind(cmd_listen_fd, self.config.listen_port)
        if not bound.ok:
            raise RuntimeError(f"cannot bind port {self.config.listen_port}: {bound.errno.name}")
        yield from libc.listen(cmd_listen_fd, 128)

        data_sock = yield from libc.socket()
        data_listen_fd = data_sock.value
        bound = yield from libc.bind(data_listen_fd, self.config.data_port)
        if not bound.ok:
            raise RuntimeError(f"cannot bind port {self.config.data_port}: {bound.errno.name}")
        yield from libc.listen(data_listen_fd, 128)
        return cmd_listen_fd, data_listen_fd, error_fd, transfer_fd

    # -- command handling ----------------------------------------------------------------

    def _resolve_path(self, request_path: str) -> str:
        """Map a RETR argument onto the filesystem -- without '..' sanitisation."""
        path = request_path.strip()
        # Deliberately NOT normalising '..' components: the traversal bug that
        # makes a privilege-retention attack observable (same as the httpd).
        return posixpath.join(self.config.ftp_root, path.lstrip("/"))

    def _drop_privileges(self):
        """Per-transfer privilege drop using the cached (possibly corrupted) ids."""
        libc = self.libc
        worker_uid = self.layout.worker_uid.get()
        worker_gid = self.layout.worker_gid.get()
        am_root = yield from self._is_root()
        if am_root:
            yield from libc.setegid(worker_gid)
            yield from libc.seteuid(worker_uid)
        return am_root

    def _restore_privileges(self):
        """Escalate back to root for logging and administrative work."""
        libc = self.libc
        yield from libc.seteuid(self.codec.constant(0))
        yield from libc.setegid(self.codec.constant(0))

    def _log(self, error_fd: int, transfer_fd: int, path: str, status: int, size: int):
        """Write transfer and error log records (as root)."""
        libc = self.libc
        yield from libc.write(transfer_fd, f'client - "{path}" {status} {size}\n')
        if status >= 400:
            if self.transformed:
                # The paper's workaround: drop the UID value from the message
                # so the diversified representations cannot diverge in output.
                message = f"[error] status {status} retrieving {path}\n"
            else:
                euid = (yield from libc.geteuid()).value
                message = f"[error] status {status} retrieving {path} euid={euid}\n"
            yield from libc.write(error_fd, message)

    def _serve_retr(self, connection: _FtpConnection, path: str, error_fd: int, transfer_fd: int):
        """One transfer: banner deref, privilege drop, read, data-channel send."""
        libc = self.libc

        # Touch the banner through its pointer (address-injection detection
        # point under address-space partitioning), then drop privileges using
        # the cached -- possibly overflow-corrupted -- worker uid.
        read_banner(self.address_space, self.layout)
        was_root = yield from self._drop_privileges()

        full_path = self._resolve_path(path)
        content = b""
        opened = yield from libc.open(full_path, O_RDONLY)
        if not opened.ok:
            status = 550
            yield from libc.send(connection.fd, f"550 {path}: not available.\r\n")
        else:
            fd = opened.value
            chunks = []
            while True:
                chunk = yield from libc.read(fd, 8192)
                if not chunk.ok or not chunk.value:
                    break
                chunks.append(chunk.value)
            yield from libc.close(fd)
            content = b"".join(chunks)
            if connection.data_fd is None:
                status = 425
                yield from libc.send(connection.fd, b"425 Can't open data connection.\r\n")
                content = b""
            else:
                status = 226
                yield from libc.send(connection.fd, b"150 Opening data connection.\r\n")
                yield from libc.send(connection.data_fd, content)
                yield from libc.send(connection.fd, b"226 Transfer complete.\r\n")

        euid_during = (yield from libc.geteuid()).value
        if was_root:
            yield from self._restore_privileges()
        yield from self._log(error_fd, transfer_fd, path, status, len(content))

        self.report.requests_handled += 1
        self.report.served.append(
            ServedRequest(
                path=path,
                status=status,
                bytes_sent=len(content),
                euid_during_serve=euid_during,
            )
        )

    def _serve_turn(self, connection: _FtpConnection, error_fd: int, transfer_fd: int):
        """Process commands until one transfer is served; True when finished."""
        libc = self.libc
        while connection.pending:
            line = connection.pending.pop(0)
            if len(line) > self.config.max_command_size:
                yield from libc.send(connection.fd, b"500 Command line too long.\r\n")
                continue
            text = line.decode("latin-1")
            verb, _, argument = text.partition(" ")
            verb = verb.upper()
            if verb == "USER":
                yield from libc.send(connection.fd, b"331 Password required.\r\n")
            elif verb == "PASS":
                yield from libc.send(connection.fd, b"230 Login successful.\r\n")
            elif verb == "SITE":
                subverb, _, value = argument.partition(" ")
                if subverb.upper() == "ANNOTATE":
                    # The vulnerable copy: the FTP analogue of the httpd's
                    # X-Annotation header lands in the same fixed buffer.
                    copy_annotation_header(self.layout, value)
                    yield from libc.send(connection.fd, b"200 Annotation noted.\r\n")
                else:
                    yield from libc.send(connection.fd, b"502 SITE command not implemented.\r\n")
            elif verb == "RETR":
                yield from self._serve_retr(connection, argument, error_fd, transfer_fd)
                # One transfer per turn; the conversation resumes next turn.
                return not connection.pending
            elif verb == "QUIT":
                yield from libc.send(connection.fd, b"221 Goodbye.\r\n")
                return True
            else:
                yield from libc.send(connection.fd, b"502 Command not implemented.\r\n")
        return True

    def _close_connection(self, connection: _FtpConnection):
        libc = self.libc
        if connection.data_fd is not None:
            yield from libc.shutdown(connection.data_fd)
            yield from libc.close(connection.data_fd)
        yield from libc.shutdown(connection.fd)
        yield from libc.close(connection.fd)

    # -- the program ----------------------------------------------------------------------------

    def run(self) -> ServerProgram:
        """The server program: startup, multiplexed conversation loop, shutdown."""
        libc = self.libc
        cmd_listen_fd, data_listen_fd, error_fd, transfer_fd = yield from self._startup()

        active: list[_FtpConnection] = []
        #: Like the httpd: the simulated accept queue never refills once
        #: drained, so a failed accept permanently closes admission.
        accepting = True

        def budget_left() -> bool:
            return self.max_requests is None or self.report.requests_handled < self.max_requests

        while True:
            while accepting and budget_left() and len(active) < self.multiplex:
                accepted = yield from libc.accept(cmd_listen_fd)
                if not accepted.ok:
                    accepting = False
                    break
                conn_fd = accepted.value
                # Drain the conversation: the scripted client has already
                # half-closed, exactly like the httpd's keep-alive pipelines.
                chunks = []
                while True:
                    chunk = (
                        yield from libc.recv(conn_fd, self.config.max_command_size + 4096)
                    ).value
                    if not chunk:
                        break
                    chunks.append(chunk)
                # The paired data channel was pre-connected by the client and
                # is accepted FIFO: n-th command connection, n-th data channel.
                data_accepted = yield from libc.accept(data_listen_fd)
                data_fd = data_accepted.value if data_accepted.ok else None
                yield from libc.send(conn_fd, GREETING)
                active.append(_FtpConnection(conn_fd, data_fd, split_commands(b"".join(chunks))))
            if not active or not budget_left():
                break

            for connection in list(active):
                if not budget_left():
                    break
                finished = yield from self._serve_turn(connection, error_fd, transfer_fd)
                if finished:
                    yield from self._close_connection(connection)
                    active.remove(connection)

        # Budget exhausted with conversations still open: close them unserved.
        for connection in active:
            yield from self._close_connection(connection)

        yield from libc.shutdown(cmd_listen_fd)
        yield from libc.close(cmd_listen_fd)
        yield from libc.shutdown(data_listen_fd)
        yield from libc.close(data_listen_fd)
        yield from libc.close(error_fd)
        yield from libc.close(transfer_fd)
        yield from libc.exit(0)
        return self.report


def build_ftpd_program(
    context: VariantContext,
    *,
    transformed: bool = True,
    max_requests: Optional[int] = None,
    multiplex: int = 1,
    config_path: str = FTPD_CONF,
) -> ServerProgram:
    """Program factory for :func:`repro.core.nvariant.nvexec`."""
    server = MiniFtpd(
        context.libc,
        context.uid_codec,
        context.address_space,
        transformed=transformed,
        max_requests=max_requests,
        multiplex=multiplex,
        config_path=config_path,
    )
    return server.run()


def make_ftpd_factory(
    *,
    transformed: bool = True,
    max_requests: Optional[int] = None,
    multiplex: int = 1,
    config_path: str = FTPD_CONF,
    servers: Optional[list[MiniFtpd]] = None,
):
    """Build a program factory, optionally collecting the MiniFtpd instances."""

    def factory(context: VariantContext) -> ServerProgram:
        server = MiniFtpd(
            context.libc,
            context.uid_codec,
            context.address_space,
            transformed=transformed,
            max_requests=max_requests,
            multiplex=multiplex,
            config_path=config_path,
        )
        if servers is not None:
            servers.append(server)
        return server.run()

    return factory
