"""Server configuration: a miniature ``httpd.conf``.

The case-study server reads its configuration from a file on the simulated
host, exactly as Apache does.  The directives relevant to the paper are
``User`` and ``Group`` -- the names the server maps to numeric ids via
``/etc/passwd`` before dropping privileges -- and the log paths whose
ownership makes privilege handling observable.
"""

from __future__ import annotations

import dataclasses

from repro.kernel.host import ACCESS_LOG, DOCROOT, ERROR_LOG, HTTP_PORT


@dataclasses.dataclass
class ServerConfig:
    """Parsed server configuration."""

    listen_port: int = HTTP_PORT
    user: str = "www-data"
    group: str = "www-data"
    document_root: str = DOCROOT
    error_log: str = ERROR_LOG
    access_log: str = ACCESS_LOG
    admin_user: str = "root"
    max_request_size: int = 8192

    def validate(self) -> None:
        """Sanity-check the configuration values."""
        if not 0 < self.listen_port < 65536:
            raise ValueError(f"invalid Listen port {self.listen_port}")
        if not self.document_root.startswith("/"):
            raise ValueError("DocumentRoot must be an absolute path")
        if not self.user:
            raise ValueError("User directive must not be empty")
        if not self.group:
            raise ValueError("Group directive must not be empty")


#: Directive name -> (attribute, parser)
_DIRECTIVES = {
    "listen": ("listen_port", int),
    "user": ("user", str),
    "group": ("group", str),
    "documentroot": ("document_root", str),
    "errorlog": ("error_log", str),
    "accesslog": ("access_log", str),
    "adminuser": ("admin_user", str),
    "maxrequestsize": ("max_request_size", int),
}


def parse_config(text: str) -> ServerConfig:
    """Parse ``httpd.conf`` contents into a :class:`ServerConfig`.

    Unknown directives are ignored (as Apache does for modules that are not
    loaded); malformed values raise ``ValueError`` so misconfiguration is
    caught at startup rather than at privilege-drop time.
    """
    config = ServerConfig()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed directive on line {line_number}: {raw_line!r}")
        directive, value = parts[0].lower(), parts[1].strip()
        entry = _DIRECTIVES.get(directive)
        if entry is None:
            continue
        attribute, parser = entry
        try:
            setattr(config, attribute, parser(value))
        except ValueError as error:
            raise ValueError(f"bad value for {parts[0]} on line {line_number}: {error}") from error
    config.validate()
    return config
