"""The mini Apache case-study application."""

from repro.apps.httpd.config import ServerConfig, parse_config
from repro.apps.httpd.http import (
    HttpParseError,
    HttpRequest,
    HttpResponse,
    STATUS_REASONS,
    error_response,
    file_response,
    format_request,
    parse_request,
    parse_response,
)
from repro.apps.httpd.server import (
    ADMIN_TOKEN,
    ADMIN_TOKEN_HEADER,
    MiniHttpd,
    ServedRequest,
    ServerReport,
    build_httpd_program,
    make_httpd_factory,
)
from repro.apps.httpd.vulnerable import (
    ANNOTATION_BUFFER_SIZE,
    BANNER_TEXT,
    ServerStateLayout,
    VULNERABLE_HEADER,
    build_server_state,
    copy_annotation_header,
    read_banner,
)

__all__ = [
    "ADMIN_TOKEN",
    "ADMIN_TOKEN_HEADER",
    "ANNOTATION_BUFFER_SIZE",
    "BANNER_TEXT",
    "HttpParseError",
    "HttpRequest",
    "HttpResponse",
    "MiniHttpd",
    "STATUS_REASONS",
    "ServedRequest",
    "ServerConfig",
    "ServerReport",
    "ServerStateLayout",
    "VULNERABLE_HEADER",
    "build_httpd_program",
    "build_server_state",
    "copy_annotation_header",
    "error_response",
    "file_response",
    "format_request",
    "make_httpd_factory",
    "parse_config",
    "parse_request",
    "parse_response",
    "read_banner",
]
