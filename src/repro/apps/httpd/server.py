"""The mini Apache: the paper's case-study server.

A single-process, event-loop static file server written against the simulated
system-call interface.  Its privilege lifecycle mirrors the pattern the paper
targets (Section 3): the server starts as root, reads ``/etc/passwd`` to map
its configured ``User``/``Group`` to numeric ids, caches those ids in memory,
and *per request* drops its effective uid to the worker id, serves the file,
and escalates back to root for logging and administrative work.  The cached
``uid_t`` values sit behind a fixed-size header buffer
(:mod:`repro.apps.httpd.vulnerable`), so a crafted request corrupts exactly
the data the privilege drop consults -- Chen et al.'s non-control-data attack.

Two builds of the server exist, selected by ``transformed``:

* the **original** build uses literal UID constants and ordinary comparisons
  (and, like the paper's unmodified Apache, writes the UID value into error
  log messages);
* the **transformed** build is the output of the Section 3.3 source
  transformation: UID constants are reexpressed through the variant's codec,
  UID comparisons go through the ``cc_*`` detection calls, single UID uses
  are exposed with ``uid_value``, UID-influenced conditionals are wrapped in
  ``cond_chk``, and the UID is removed from log output (the paper's
  workaround for the log-divergence problem).
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Generator, Optional

from repro.apps.httpd.config import ServerConfig, parse_config
from repro.apps.httpd.http import (
    HttpParseError,
    HttpRequest,
    HttpResponse,
    error_response,
    file_response,
    parse_request,
    split_requests,
)
from repro.apps.httpd.vulnerable import (
    ServerStateLayout,
    VULNERABLE_HEADER,
    build_server_state,
    copy_annotation_header,
    read_banner,
)
from repro.core.nvariant import UIDCodec, VariantContext
from repro.kernel.errors import Errno
from repro.kernel.filesystem import O_APPEND, O_RDONLY, O_WRONLY
from repro.kernel.host import HTTPD_CONF
from repro.kernel.libc import Libc
from repro.kernel.passwd import UserDatabase
from repro.kernel.syscalls import SyscallRequest, SyscallResult
from repro.memory.address_space import AddressSpace

ServerProgram = Generator[SyscallRequest, SyscallResult, "ServerReport"]

#: Request header that authorises /admin requests (orthogonal to UIDs).
ADMIN_TOKEN_HEADER = "X-Admin-Token"

#: Expected admin token value.
ADMIN_TOKEN = "letmein"


@dataclasses.dataclass
class ServedRequest:
    """Bookkeeping about one handled request (used by tests and metrics)."""

    path: str
    status: int
    bytes_sent: int
    euid_during_serve: int


@dataclasses.dataclass
class ServerReport:
    """What the server program returns when it exits cleanly."""

    requests_handled: int = 0
    served: list[ServedRequest] = dataclasses.field(default_factory=list)

    def status_counts(self) -> dict[int, int]:
        """Histogram of response status codes."""
        counts: dict[int, int] = {}
        for request in self.served:
            counts[request.status] = counts.get(request.status, 0) + 1
        return counts

    def total_bytes(self) -> int:
        """Total response body bytes sent."""
        return sum(request.bytes_sent for request in self.served)


class MiniHttpd:
    """One build of the case-study web server.

    Parameters
    ----------
    libc, uid_codec, address_space:
        The variant's execution context pieces.  For a plain single-process
        run the codec is the identity and the address space unpartitioned.
    transformed:
        Selects the original or UID-transformed build (see module docstring).
    max_requests:
        Stop after this many served requests (``None`` = serve until the
        accept queue is empty).  Keep-alive connections may carry several
        requests each, so this is a request budget, not a connection count.
    multiplex:
        Maximum number of connections served concurrently.  With the default
        of 1 the server is the original serial accept-serve-close loop; with
        ``M > 1`` it accepts up to M connections and round-robins one request
        from each per turn, which is how one server instance sustains M
        concurrent keep-alive clients.
    config_path:
        Path of the configuration file on the simulated host.
    """

    def __init__(
        self,
        libc: Libc,
        uid_codec: UIDCodec,
        address_space: AddressSpace,
        *,
        transformed: bool = False,
        max_requests: Optional[int] = None,
        multiplex: int = 1,
        config_path: str = HTTPD_CONF,
    ):
        if multiplex < 1:
            raise ValueError("multiplex must be at least 1")
        self.libc = libc
        self.codec = uid_codec if transformed else UIDCodec.identity()
        self.address_space = address_space
        self.transformed = transformed
        self.max_requests = max_requests
        self.multiplex = multiplex
        self.config_path = config_path
        self.config: Optional[ServerConfig] = None
        self.layout: Optional[ServerStateLayout] = None
        self.report = ServerReport()

    # -- small generator helpers ------------------------------------------------

    def _read_whole_file(self, path: str):
        """Open, read fully and close *path*; returns (ok, data bytes)."""
        libc = self.libc
        opened = yield from libc.open(path, O_RDONLY)
        if not opened.ok:
            return False, b""
        fd = opened.value
        chunks = []
        while True:
            chunk = yield from libc.read(fd, 4096)
            if not chunk.ok or not chunk.value:
                break
            chunks.append(chunk.value)
        yield from libc.close(fd)
        return True, b"".join(chunks)

    def _is_root(self):
        """UID comparison against root, in the build-appropriate form."""
        libc = self.libc
        euid = (yield from libc.geteuid()).value
        if self.transformed:
            result = yield from libc.cc_eq(euid, self.codec.root)
            return bool(result.value)
        return euid == 0

    def _uids_equal(self, left: int, right: int):
        """UID equality, through cc_eq in the transformed build."""
        if self.transformed:
            result = yield from self.libc.cc_eq(left, right)
            return bool(result.value)
        return left == right

    def _expose_uid(self, uid: int):
        """uid_value() exposure of a single UID use (transformed build only)."""
        if self.transformed:
            result = yield from self.libc.uid_value(uid)
            return result.value
        return uid

    def _check_condition(self, condition: bool):
        """cond_chk() wrapping of a UID-influenced conditional."""
        if self.transformed:
            result = yield from self.libc.cond_chk(bool(condition))
            return bool(result.value)
        return bool(condition)

    # -- startup --------------------------------------------------------------------

    def _startup(self):
        """Read configuration and account data, build state, bind the socket.

        Returns ``(listen_fd, error_fd, access_fd)`` or raises ``RuntimeError``
        on unrecoverable misconfiguration.
        """
        libc = self.libc

        ok, conf_bytes = yield from self._read_whole_file(self.config_path)
        if not ok:
            raise RuntimeError(f"cannot read configuration {self.config_path}")
        self.config = parse_config(conf_bytes.decode())

        ok, passwd_bytes = yield from self._read_whole_file("/etc/passwd")
        if not ok:
            raise RuntimeError("cannot read /etc/passwd")
        ok, group_bytes = yield from self._read_whole_file("/etc/group")
        if not ok:
            raise RuntimeError("cannot read /etc/group")
        database = UserDatabase.from_text(passwd_bytes.decode(), group_bytes.decode())

        worker_entry = database.getpwnam(self.config.user)
        group_entry = database.getgrnam(self.config.group)
        admin_entry = database.getpwnam(self.config.admin_user)

        # Expose the freshly obtained UID values to the monitor at their first
        # use (Section 3.5: "pw = getpwname(uid_value(uid))").
        worker_uid = yield from self._expose_uid(worker_entry.uid)
        worker_gid = group_entry.gid
        admin_uid = yield from self._expose_uid(admin_entry.uid)

        self.layout = build_server_state(
            self.address_space,
            worker_uid=worker_uid,
            worker_gid=worker_gid,
            admin_uid=admin_uid,
        )

        error_fd = (yield from libc.open(self.config.error_log, O_WRONLY | O_APPEND)).value
        access_fd = (yield from libc.open(self.config.access_log, O_WRONLY | O_APPEND)).value

        sock = yield from libc.socket()
        listen_fd = sock.value
        bound = yield from libc.bind(listen_fd, self.config.listen_port)
        if not bound.ok:
            raise RuntimeError(f"cannot bind port {self.config.listen_port}: {bound.errno.name}")
        yield from libc.listen(listen_fd, 128)
        return listen_fd, error_fd, access_fd

    # -- request handling ----------------------------------------------------------------

    def _resolve_path(self, request_path: str) -> str:
        """Map a request path onto the filesystem -- without '..' sanitisation."""
        path = request_path.split("?", 1)[0]
        if path.endswith("/"):
            path += "index.html"
        # Deliberately NOT normalising '..' components: the traversal bug that
        # makes a privilege-retention attack observable.
        return posixpath.join(self.config.document_root, path.lstrip("/"))

    def _drop_privileges(self):
        """Per-request privilege drop using the cached (possibly corrupted) ids."""
        libc = self.libc
        worker_uid = self.layout.worker_uid.get()
        worker_gid = self.layout.worker_gid.get()
        am_root = yield from self._is_root()
        if am_root:
            yield from libc.setegid(worker_gid)
            yield from libc.seteuid(worker_uid)
        return am_root

    def _restore_privileges(self):
        """Escalate back to root for logging and administrative work."""
        libc = self.libc
        yield from libc.seteuid(self.codec.constant(0))
        yield from libc.setegid(self.codec.constant(0))

    def _serve_admin(self, request: HttpRequest):
        """Handle /admin requests: token check, escalate, read privileged data."""
        libc = self.libc
        if request.header(ADMIN_TOKEN_HEADER) != ADMIN_TOKEN:
            return error_response(403, "admin token required")
        euid = (yield from libc.geteuid()).value
        already_admin = yield from self._uids_equal(euid, self.layout.admin_uid.get())
        needs_escalation = yield from self._check_condition(not already_admin)
        if needs_escalation:
            # Administrative work requires full privileges.
            yield from libc.seteuid(self.codec.constant(0))
        ok, secret = yield from self._read_whole_file("/root/secrets.txt")
        if not ok:
            return error_response(500, "admin data unavailable")
        body = b"<html><body><h1>admin status</h1><pre>" + secret + b"</pre></body></html>"
        return HttpResponse(status=200, body=body)

    def _serve_static(self, request: HttpRequest):
        """Serve a static file with the worker's (dropped) privileges."""
        libc = self.libc
        full_path = self._resolve_path(request.path)
        opened = yield from libc.open(full_path, O_RDONLY)
        if not opened.ok:
            if opened.errno is Errno.EACCES:
                return error_response(403, full_path)
            if opened.errno in (Errno.ENOENT, Errno.ENOTDIR):
                return error_response(404, full_path)
            return error_response(500, opened.errno.name)
        fd = opened.value
        chunks = []
        while True:
            chunk = yield from libc.read(fd, 8192)
            if not chunk.ok or not chunk.value:
                break
            chunks.append(chunk.value)
        yield from libc.close(fd)
        content = b"".join(chunks)
        response = file_response(content, full_path)
        if request.method == "HEAD":
            response = HttpResponse(
                status=200, body=b"", content_type=response.content_type
            )
        return response

    def _handle_request(self, raw: bytes):
        """Process one raw request into a response."""
        libc = self.libc
        try:
            request = parse_request(raw)
        except HttpParseError as error:
            return error_response(400, str(error)), "-"
        if len(raw) > self.config.max_request_size:
            return error_response(413, "request too large"), request.path
        if request.method not in ("GET", "HEAD"):
            return error_response(405, request.method), request.path

        # The vulnerable header copy happens before any privilege operation,
        # exactly where a parsing/logging helper would copy header data in C.
        annotation = request.header(VULNERABLE_HEADER)
        if annotation:
            copy_annotation_header(self.layout, annotation)

        # Touch the banner through its pointer (address-injection detection
        # point under address-space partitioning).
        read_banner(self.address_space, self.layout)

        was_root = yield from self._drop_privileges()

        if request.path.startswith("/admin"):
            response = yield from self._serve_admin(request)
        else:
            response = yield from self._serve_static(request)

        euid_during = (yield from libc.geteuid()).value

        if was_root:
            yield from self._restore_privileges()
        return response, request.path, euid_during

    def _log(self, error_fd: int, access_fd: int, path: str, response: HttpResponse):
        """Write access and error log records (as root)."""
        libc = self.libc
        yield from libc.write(
            access_fd, f"client - \"{path}\" {response.status} {len(response.body)}\n"
        )
        if response.status >= 400:
            if self.transformed:
                # The paper's workaround: drop the UID value from the message
                # so the diversified representations cannot diverge in output.
                message = f"[error] status {response.status} serving {path}\n"
            else:
                euid = (yield from libc.geteuid()).value
                message = f"[error] status {response.status} serving {path} euid={euid}\n"
            yield from libc.write(error_fd, message)

    # -- the program ----------------------------------------------------------------------------

    def _serve_one(self, conn_fd: int, raw_request: bytes, error_fd: int, access_fd: int):
        """Handle one request and send its response on *conn_fd*."""
        libc = self.libc
        outcome = yield from self._handle_request(raw_request)
        if len(outcome) == 3:
            response, path, euid_during = outcome
        else:
            response, path = outcome
            euid_during = (yield from libc.geteuid()).value

        yield from self._log(error_fd, access_fd, path, response)
        yield from libc.send(conn_fd, response.to_bytes())

        self.report.requests_handled += 1
        self.report.served.append(
            ServedRequest(
                path=path,
                status=response.status,
                bytes_sent=len(response.body),
                euid_during_serve=euid_during,
            )
        )

    def run(self) -> ServerProgram:
        """The server program: startup, multiplexed request loop, shutdown.

        Up to ``multiplex`` connections are held open at once; each accepted
        connection's buffer is split into its pipelined keep-alive requests
        and the loop serves one request per live connection per turn, so no
        single slow client monopolises the server.  ``multiplex=1`` degrades
        to the original serial accept-serve-close loop.
        """
        libc = self.libc
        listen_fd, error_fd, access_fd = yield from self._startup()

        #: (conn_fd, unserved pipelined requests) per live connection.
        active: list[tuple[int, list[bytes]]] = []
        #: The simulated accept queue never refills once drained, so a failed
        #: accept permanently closes admission instead of being re-polled on
        #: every scheduling turn.
        accepting = True

        def budget_left() -> bool:
            return self.max_requests is None or self.report.requests_handled < self.max_requests

        while True:
            while accepting and budget_left() and len(active) < self.multiplex:
                accepted = yield from libc.accept(listen_fd)
                if not accepted.ok:
                    accepting = False
                    break
                conn_fd = accepted.value
                # Drain the connection: keep-alive pipelines may exceed one
                # recv window, and the client has already half-closed.
                chunks = []
                while True:
                    chunk = (yield from libc.recv(conn_fd, self.config.max_request_size + 4096)).value
                    if not chunk:
                        break
                    chunks.append(chunk)
                active.append((conn_fd, split_requests(b"".join(chunks))))
            if not active or not budget_left():
                break

            for connection in list(active):
                if not budget_left():
                    break
                conn_fd, pending = connection
                yield from self._serve_one(conn_fd, pending.pop(0), error_fd, access_fd)
                if not pending:
                    yield from libc.shutdown(conn_fd)
                    yield from libc.close(conn_fd)
                    active.remove(connection)

        # Budget exhausted with connections still open: close them unserved.
        for conn_fd, _ in active:
            yield from libc.shutdown(conn_fd)
            yield from libc.close(conn_fd)

        yield from libc.shutdown(listen_fd)
        yield from libc.close(listen_fd)
        yield from libc.close(error_fd)
        yield from libc.close(access_fd)
        yield from libc.exit(0)
        return self.report


def build_httpd_program(
    context: VariantContext,
    *,
    transformed: bool = True,
    max_requests: Optional[int] = None,
    multiplex: int = 1,
    config_path: str = HTTPD_CONF,
) -> ServerProgram:
    """Program factory for :func:`repro.core.nvariant.nvexec`.

    ``transformed=True`` corresponds to the paper's Configuration 4 build;
    ``transformed=False`` runs the unmodified server (used for the 2-variant
    address-partitioning baseline, Configuration 3).
    """
    server = MiniHttpd(
        context.libc,
        context.uid_codec,
        context.address_space,
        transformed=transformed,
        max_requests=max_requests,
        multiplex=multiplex,
        config_path=config_path,
    )
    return server.run()


def make_httpd_factory(
    *,
    transformed: bool = True,
    max_requests: Optional[int] = None,
    multiplex: int = 1,
    config_path: str = HTTPD_CONF,
    servers: Optional[list[MiniHttpd]] = None,
):
    """Build a program factory, optionally collecting the MiniHttpd instances.

    ``servers``, when provided, receives each variant's server object so
    callers (tests, experiment drivers) can inspect per-variant reports after
    the run.
    """

    def factory(context: VariantContext) -> ServerProgram:
        server = MiniHttpd(
            context.libc,
            context.uid_codec,
            context.address_space,
            transformed=transformed,
            max_requests=max_requests,
            multiplex=multiplex,
            config_path=config_path,
        )
        if servers is not None:
            servers.append(server)
        return server.run()

    return factory
