"""Mini-C source of the server's UID-relevant code.

The Python implementation in :mod:`repro.apps.httpd.server` is what actually
executes; this module carries the same privilege-handling logic expressed in
the mini-C subset, playing the role Apache's C source plays in Section 4 of
the paper: it is the input to the automatic UID-variation transformation, and
the change counts the transformer reports on it are the reproduction of the
paper's "73 changes" accounting.

The code deliberately follows Apache's idioms (``unixd_set_user``-style
privilege drops, ``ap_uname2id`` helpers, suexec-like escalation checks, a
log helper that receives UID values) so the transformation exercises every
rule: implicit comparisons, UID constants, comparisons in both orders,
UID-influenced conditionals and UID values passed to ordinary functions.
"""

#: The UID-relevant portion of the mini-httpd, in the mini-C subset.
HTTPD_UID_SOURCE = """
uid_t server_uid = 33;
gid_t server_gid = 33;
uid_t admin_uid = 0;
int restart_pending = 0;

uid_t ap_uname2id(char *name) {
    passwd *entry = getpwnam(name);
    if (entry == NULL) {
        log_error("unknown user", name);
        return 65534;
    }
    return entry->pw_uid;
}

gid_t ap_gname2id(char *name) {
    group *entry = getgrnam(name);
    if (entry == NULL) {
        log_error("unknown group", name);
        return 65534;
    }
    return entry->gr_gid;
}

int unixd_setup_child(void) {
    uid_t target_uid = server_uid;
    gid_t target_gid = server_gid;
    if (!geteuid()) {
        if (setgid(target_gid) < 0) {
            log_error("setgid failed", "child");
            return -1;
        }
        if (setuid(target_uid) < 0) {
            log_error("setuid failed", "child");
            return -1;
        }
    }
    if (geteuid() != target_uid) {
        log_uid_mismatch(geteuid(), target_uid);
        return -1;
    }
    return 0;
}

int drop_privileges(uid_t request_uid, gid_t request_gid) {
    uid_t current = geteuid();
    if (current == 0) {
        if (setegid(request_gid) < 0) {
            return -1;
        }
        if (seteuid(request_uid) < 0) {
            return -1;
        }
    }
    current = geteuid();
    if (current != request_uid) {
        log_uid_mismatch(current, request_uid);
        return -1;
    }
    return 0;
}

int restore_privileges(void) {
    uid_t current = geteuid();
    if (current != 0) {
        if (seteuid(0) < 0) {
            log_error("cannot restore privileges", "worker");
            return -1;
        }
    }
    return 0;
}

int can_access_admin(uid_t request_uid) {
    if (request_uid == admin_uid) {
        return 1;
    }
    if (request_uid == 0) {
        return 1;
    }
    return 0;
}

int suexec_check(uid_t caller_uid, uid_t target_uid) {
    passwd *caller = getpwuid(caller_uid);
    if (caller == NULL) {
        log_error("suexec caller lookup failed", "suexec");
        return -1;
    }
    if (target_uid < 100) {
        log_error("suexec target uid below minimum", caller->pw_name);
        return -1;
    }
    if (caller_uid != 0 && caller_uid != target_uid) {
        return -1;
    }
    if (caller->pw_uid >= 65534) {
        return -1;
    }
    return 0;
}

int handle_request(char *path, uid_t owner_uid) {
    int rc = drop_privileges(server_uid, server_gid);
    if (rc < 0) {
        return 500;
    }
    uid_t current = geteuid();
    if (owner_uid != current && owner_uid != 0) {
        passwd *owner = getpwuid(owner_uid);
        if (owner == NULL) {
            restore_privileges();
            return 404;
        }
        log_owner(path, owner->pw_uid);
    }
    if (can_access_admin(current)) {
        audit_admin_access(path, current);
    }
    int status = serve_file(path);
    restore_privileges();
    return status;
}

void worker_main(void) {
    uid_t startup_uid = geteuid();
    if (startup_uid != 0) {
        log_error("server must start as root", "main");
        return;
    }
    server_uid = ap_uname2id(config_user_name());
    server_gid = ap_gname2id(config_group_name());
    admin_uid = ap_uname2id(config_admin_name());
    if (server_uid == 0) {
        log_error("refusing to serve requests as root", "main");
        return;
    }
    while (!restart_pending) {
        char *path = next_request_path();
        if (path == NULL) {
            return;
        }
        uid_t owner_uid = path_owner(path);
        int status = handle_request(path, owner_uid);
        log_request(path, status, geteuid());
    }
}
"""
