"""The deliberately planted vulnerabilities in the mini-httpd.

The paper's threat model assumes the application contains residual memory
vulnerabilities that let a remote attacker corrupt program data.  The
mini-httpd reproduces the two classes the evaluation needs:

* **Header-copy overflow** -- the server copies the value of the
  ``X-Annotation`` request header into a fixed 64-byte buffer with an
  unchecked copy (a ``strcpy`` analogue).  The buffer sits directly in front
  of the server's cached ``uid_t`` fields and a banner pointer, so an
  over-long header overwrites them.  This is the non-control-data attack of
  Chen et al.: corrupt the UID used when dropping privileges and the original
  program keeps running, but as root.
* **Unsanitised path traversal** -- the request path is joined to the
  document root without removing ``..`` components, so once privileges are
  wrongly retained the attacker can read files outside the docroot (e.g.
  ``/etc/shadow``), which is how the attack's *goal* becomes observable.

The overflow is bounds-checked only against the enclosing memory region, so
it cannot escape the simulated process -- but within the region it behaves
exactly like the real bug.
"""

from __future__ import annotations

import dataclasses

from repro.memory.memory_model import MemoryRegion, MemoryVariable, StackFrame

#: Size of the vulnerable header buffer (bytes).
ANNOTATION_BUFFER_SIZE = 64

#: Name of the request header whose value is copied unchecked.
VULNERABLE_HEADER = "X-Annotation"

#: Nominal base address of the server's state region (variant-neutral).
STATE_REGION_BASE = 0x00400000

#: Nominal base address of the read-only banner region.
BANNER_REGION_BASE = 0x00200000

#: Size of the banner region.
BANNER_REGION_SIZE = 64

#: The banner text the server reads through its banner pointer on every
#: request; an injected absolute pointer makes this dereference fault in the
#: variant whose partition does not contain the injected address.
BANNER_TEXT = b"mini-httpd ready"


@dataclasses.dataclass
class ServerStateLayout:
    """The server's in-memory security-critical state.

    Layout (allocation order fixes adjacency, low addresses first)::

        annotation_buf   64 bytes   <- unchecked header copy lands here
        worker_uid        4 bytes   <- uid used to drop privileges per request
        worker_gid        4 bytes
        admin_uid         4 bytes   <- uid allowed to access /admin
        banner_ptr        4 bytes   <- pointer dereferenced on every request
    """

    region: MemoryRegion
    banner_region: MemoryRegion
    annotation_buf: MemoryVariable
    worker_uid: MemoryVariable
    worker_gid: MemoryVariable
    admin_uid: MemoryVariable
    banner_ptr: MemoryVariable

    def overflow_reach(self) -> dict[str, tuple[int, int]]:
        """Byte distances from the buffer start to each overwritable field.

        Returns ``{field: (start offset, end offset)}`` relative to the start
        of the annotation buffer -- the numbers an attacker uses to size a
        payload, and the numbers the attack library uses to build one.
        """
        base = self.annotation_buf.offset
        fields = {
            "worker_uid": self.worker_uid,
            "worker_gid": self.worker_gid,
            "admin_uid": self.admin_uid,
            "banner_ptr": self.banner_ptr,
        }
        return {
            name: (variable.offset - base, variable.offset - base + variable.size)
            for name, variable in fields.items()
        }


def build_server_state(
    address_space,
    *,
    worker_uid: int,
    worker_gid: int,
    admin_uid: int,
) -> ServerStateLayout:
    """Map and initialise the server's state in *address_space*.

    The regions are declared at nominal addresses and relocated into the
    variant's partition by the address space, so under address partitioning
    the concrete addresses (and hence any legitimate pointer values) differ
    between variants while the layout stays identical.
    """
    banner_region = address_space.map_region(
        MemoryRegion("banner", BANNER_REGION_BASE, BANNER_REGION_SIZE)
    )
    banner_region.write(banner_region.base, BANNER_TEXT)

    state_region = address_space.map_region(MemoryRegion("server-state", STATE_REGION_BASE, 256))
    frame = StackFrame(state_region)
    annotation_buf = frame.alloc_buffer("annotation_buf", ANNOTATION_BUFFER_SIZE)
    worker_uid_var = frame.alloc_word("worker_uid", worker_uid)
    worker_gid_var = frame.alloc_word("worker_gid", worker_gid)
    admin_uid_var = frame.alloc_word("admin_uid", admin_uid)
    banner_ptr_var = frame.alloc_word("banner_ptr", banner_region.base)

    return ServerStateLayout(
        region=state_region,
        banner_region=banner_region,
        annotation_buf=annotation_buf,
        worker_uid=worker_uid_var,
        worker_gid=worker_gid_var,
        admin_uid=admin_uid_var,
        banner_ptr=banner_ptr_var,
    )


def copy_annotation_header(layout: ServerStateLayout, value: str) -> int:
    """The vulnerable copy: write the header value into the fixed buffer.

    No per-buffer bounds check is performed (the region bound still applies),
    so values longer than :data:`ANNOTATION_BUFFER_SIZE` spill into the
    adjacent UID fields and banner pointer.  Returns the number of bytes
    written.
    """
    data = value.encode("latin-1", errors="replace") + b"\x00"
    return layout.region.unchecked_copy(layout.annotation_buf.address, data)


def read_banner(address_space, layout: ServerStateLayout) -> bytes:
    """Dereference the banner pointer (the address-injection detection point)."""
    pointer = layout.banner_ptr.get()
    return address_space.dereference(pointer, len(BANNER_TEXT))
