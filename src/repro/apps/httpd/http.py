"""HTTP/1.0-style request parsing and response formatting.

Only what the case study needs: request line, headers, status codes, and
content-length framing for responses.  The parser is intentionally strict
about structure (so tests can exercise 400 handling) but makes no attempt to
sanitise header *values* -- the vulnerable header-copy path in
:mod:`repro.apps.httpd.vulnerable` receives them verbatim, as a C server's
``strcpy`` would.
"""

from __future__ import annotations

import dataclasses

#: Reason phrases for the status codes the server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Request Entity Too Large",
    500: "Internal Server Error",
}

#: Methods the static-file server accepts.
SUPPORTED_METHODS = ("GET", "HEAD")


class HttpParseError(ValueError):
    """Raised when a request cannot be parsed; the server answers 400."""


@dataclasses.dataclass
class HttpRequest:
    """A parsed client request."""

    method: str
    path: str
    version: str
    headers: dict[str, str]

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


@dataclasses.dataclass
class HttpResponse:
    """A response ready to be serialised onto the wire."""

    status: int
    body: bytes = b""
    content_type: str = "text/html"
    extra_headers: tuple[tuple[str, str], ...] = ()

    @property
    def reason(self) -> str:
        """Reason phrase for the status code."""
        return STATUS_REASONS.get(self.status, "Unknown")

    def to_bytes(self) -> bytes:
        """Serialise status line, headers and body."""
        lines = [
            f"HTTP/1.0 {self.status} {self.reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Server: mini-httpd/1.0",
        ]
        for name, value in self.extra_headers:
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode() + self.body


def parse_request(raw: bytes) -> HttpRequest:
    """Parse the raw request bytes received from a client."""
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 never fails
        raise HttpParseError(f"undecodable request: {error}") from error
    if "\r\n\r\n" in text:
        head = text.split("\r\n\r\n", 1)[0]
    else:
        head = text
    lines = head.split("\r\n")
    if not lines or not lines[0].strip():
        raise HttpParseError("empty request")
    request_line = lines[0].split()
    if len(request_line) != 3:
        raise HttpParseError(f"malformed request line: {lines[0]!r}")
    method, path, version = request_line
    if not path.startswith("/"):
        raise HttpParseError(f"request path must be absolute: {path!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        if ":" not in line:
            raise HttpParseError(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, path=path, version=version, headers=headers)


def error_response(status: int, detail: str = "") -> HttpResponse:
    """Build a minimal HTML error response."""
    reason = STATUS_REASONS.get(status, "Error")
    body = f"<html><body><h1>{status} {reason}</h1><p>{detail}</p></body></html>".encode()
    return HttpResponse(status=status, body=body)


def file_response(content: bytes, path: str) -> HttpResponse:
    """Build a 200 response serving *content* for *path*."""
    content_type = "text/html"
    if path.endswith((".gif", ".jpg", ".png")):
        content_type = "application/octet-stream"
    elif path.endswith(".bin"):
        content_type = "application/octet-stream"
    elif path.endswith(".txt"):
        content_type = "text/plain"
    return HttpResponse(status=200, body=content, content_type=content_type)


def format_request(
    path: str,
    *,
    method: str = "GET",
    headers: dict[str, str] | None = None,
) -> bytes:
    """Client-side helper: serialise a request (used by WebBench and attacks)."""
    lines = [f"{method} {path} HTTP/1.0", "Host: testhost", "User-Agent: webbench/5.0"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def split_requests(raw: bytes) -> list[bytes]:
    """Split a keep-alive connection's buffer into its pipelined requests.

    GET/HEAD requests carry no body, so the blank line terminating the header
    block frames each request.  A trailing fragment without the terminator
    (a truncated pipeline, or garbage input) is passed through as-is -- the
    terminator is never synthesised for it -- so the parser, not the framing,
    decides whether it is servable.
    """
    delimiter = b"\r\n\r\n"
    parts = raw.split(delimiter)
    requests = [part + delimiter for part in parts[:-1] if part]
    if parts[-1]:
        requests.append(parts[-1])
    return requests if requests else [raw]


def split_responses(raw: bytes) -> list[tuple[int, dict[str, str], bytes]]:
    """Split a connection's outbound bytes into its Content-Length-framed responses."""
    responses = []
    remaining = raw
    while remaining:
        status, headers, rest = parse_response(remaining)
        length = int(headers.get("content-length", len(rest)))
        responses.append((status, headers, rest[:length]))
        remaining = rest[length:]
    return responses


def parse_response(raw: bytes) -> tuple[int, dict[str, str], bytes]:
    """Client-side helper: split a raw response into status, headers, body."""
    if b"\r\n\r\n" in raw:
        head, body = raw.split(b"\r\n\r\n", 1)
    else:
        head, body = raw, b""
    lines = head.decode("latin-1").split("\r\n")
    if not lines or len(lines[0].split()) < 2:
        raise HttpParseError(f"malformed status line: {raw[:60]!r}")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return status, headers, body
