"""Application substrates: the case-study web server and its clients."""
