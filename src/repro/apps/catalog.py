"""Registry of serving applications the framework can protect.

The attack library, the experiments and the CLI are application-independent:
every app-specific detail -- which port the clients dial, how a benign
request or an overflow payload is rendered on the wire, how a program
factory is built -- lives in one :class:`ServingApp` record here.  Adding a
third workload means registering one record, not touching the drivers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.apps.ftpd.server import make_ftpd_factory
from repro.apps.httpd.server import make_httpd_factory
from repro.attacks.payloads import (
    banner_pointer_payload,
    benign_request,
    ftp_banner_pointer_payload,
    ftp_benign_request,
    ftp_uid_overwrite_payload,
    uid_overwrite_payload,
)
from repro.kernel.host import FTP_DATA_PORT, FTP_PORT, HTTP_PORT, install_ftp_site
from repro.kernel.kernel import SimulatedKernel


class UnknownAppError(ValueError):
    """Raised when a name does not match any registered serving app."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown app {name!r}; registered apps: {', '.join(app_names())}"
        )
        self.name = name


@dataclasses.dataclass(frozen=True)
class ServingApp:
    """Everything app-specific the app-independent drivers need.

    ``connect`` queues one complete client conversation onto the kernel
    (including any secondary channels -- the ftpd pre-connects its data
    channel here); ``prepare_host`` installs app-specific host state on top
    of the standard image.  The payload builders all return raw wire bytes
    carrying the *same* overflow words across apps, because both servers
    share one vulnerable state layout.
    """

    name: str
    description: str
    port: int
    make_factory: Callable[..., Callable]
    prepare_host: Callable[[SimulatedKernel], None]
    connect: Callable[..., None]
    benign_payload: Callable[..., bytes]
    uid_overwrite: Callable[..., bytes]
    pointer_overwrite: Callable[..., bytes]
    #: A benign path distinct from the default, used as the "second request"
    #: in drivers that must not re-trigger server-side caching effects.
    alternate_path: str


def _connect_httpd(kernel: SimulatedKernel, payload: bytes, *, client: str = "client") -> None:
    kernel.client_connect(HTTP_PORT, payload, client=client)


def _connect_ftpd(kernel: SimulatedKernel, payload: bytes, *, client: str = "client") -> None:
    kernel.client_connect(FTP_PORT, payload, client=client)
    # The paired data channel, pre-connected like a scripted PORT-mode client;
    # the server accepts command and data connections in the same order.
    kernel.client_connect(FTP_DATA_PORT, b"", client=f"{client}-data")


HTTPD_APP = ServingApp(
    name="httpd",
    description="mini Apache: the paper's case-study web server",
    port=HTTP_PORT,
    make_factory=make_httpd_factory,
    prepare_host=lambda kernel: None,
    connect=_connect_httpd,
    benign_payload=benign_request,
    uid_overwrite=uid_overwrite_payload,
    pointer_overwrite=banner_pointer_payload,
    alternate_path="/news.html",
)

FTPD_APP = ServingApp(
    name="ftpd",
    description="mini wu-ftpd: command/data-channel file server",
    port=FTP_PORT,
    make_factory=make_ftpd_factory,
    prepare_host=lambda kernel: install_ftp_site(kernel.fs),
    connect=_connect_ftpd,
    benign_payload=ftp_benign_request,
    uid_overwrite=ftp_uid_overwrite_payload,
    pointer_overwrite=ftp_banner_pointer_payload,
    alternate_path="/pub/readme.txt",
)

_APPS: dict[str, ServingApp] = {}


def register_app(app: ServingApp) -> ServingApp:
    """Register *app* under its name (replacing any previous registration)."""
    _APPS[app.name] = app
    return app


def get_app(name: str) -> ServingApp:
    """Look up a registered app; raises :class:`UnknownAppError` otherwise."""
    try:
        return _APPS[name]
    except KeyError:
        raise UnknownAppError(name) from None


def app_names() -> list[str]:
    """Registered app names, sorted."""
    return sorted(_APPS)


register_app(HTTPD_APP)
register_app(FTPD_APP)
