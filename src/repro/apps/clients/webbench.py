"""WebBench-style workload generation and measurement.

The paper measures Table 3 with WebBench 5.0: client engines issue a mix of
static page requests against the server and report throughput (KB/s) and
latency (ms).  This module reproduces the workload side: a deterministic
static-page request mix, drivers that push the workload through a server
configuration (single process or N-variant), and a measurement record that
captures everything the virtual-time performance model needs to turn the run
into throughput and latency figures.

Because the simulation is single-threaded, "client engines" do not run
concurrently; instead their count parameterises the performance model's
saturation calculation (Little's law over the measured per-request service
demand), which is where the unsaturated/saturated distinction of Table 3 is
made.  True concurrency enters through :func:`drive_engine`, which shards the
workload over many N-variant server sessions interleaved by the cooperative
multi-session engine, and through keep-alive pipelining
(``requests_per_connection``) paired with the server's connection
multiplexing.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional, Sequence

from repro.api.builders import build_engine, build_session
from repro.api.spec import FleetSpec, SystemSpec
from repro.apps.httpd.http import format_request, split_responses
from repro.apps.httpd.server import MiniHttpd, make_httpd_factory
from repro.core.nvariant import NVariantResult, UIDCodec
from repro.engine import EngineResult, NVariantSession, run_sessions
from repro.kernel.host import DOCROOT, HTTP_PORT, build_standard_host
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.libc import Libc
from repro.kernel.scheduler import ProgramRunner


@dataclasses.dataclass(frozen=True)
class RequestMixEntry:
    """One document in the request mix with its relative weight."""

    path: str
    weight: int = 1


#: The default static mix: URL paths relative to the document root, weighted
#: towards the small pages as WebBench's static workload is.
DEFAULT_STATIC_MIX: tuple[RequestMixEntry, ...] = (
    RequestMixEntry("/index.html", 6),
    RequestMixEntry("/news.html", 4),
    RequestMixEntry("/products.html", 3),
    RequestMixEntry("/catalog.html", 2),
    RequestMixEntry("/images/logo.gif", 3),
    RequestMixEntry("/images/banner.jpg", 2),
    RequestMixEntry("/docs/faq.html", 2),
    RequestMixEntry("/docs/manual.html", 1),
    RequestMixEntry("/cgi-data/report.html", 1),
    RequestMixEntry("/downloads/archive.bin", 1),
)


@dataclasses.dataclass
class WebBenchWorkload:
    """A deterministic request sequence in the WebBench style.

    ``requests_per_connection`` models keep-alive clients: with the default
    of 1 every request travels on its own connection (the original WebBench
    behaviour); larger values pipeline that many requests per connection, so
    ``drive_*`` callers can pair the workload with a multiplexing server.
    """

    total_requests: int = 50
    mix: Sequence[RequestMixEntry] = DEFAULT_STATIC_MIX
    client_engines: int = 1
    client_machines: int = 1
    requests_per_connection: int = 1
    extra_headers: dict[str, str] = dataclasses.field(default_factory=dict)

    def request_paths(self) -> list[str]:
        """Expand the weighted mix into the ordered request path sequence."""
        cycle = []
        for entry in self.mix:
            cycle.extend([entry.path] * entry.weight)
        if not cycle:
            raise ValueError("request mix must not be empty")
        paths = list(itertools.islice(itertools.cycle(cycle), self.total_requests))
        return paths

    def request_bytes(self) -> list[bytes]:
        """The raw request payloads, in order."""
        return [
            format_request(path, headers=self.extra_headers) for path in self.request_paths()
        ]

    def connection_payloads(self) -> list[bytes]:
        """Request bytes grouped into per-connection keep-alive pipelines."""
        if self.requests_per_connection < 1:
            raise ValueError("requests_per_connection must be at least 1")
        payloads = self.request_bytes()
        size = self.requests_per_connection
        return [b"".join(payloads[i : i + size]) for i in range(0, len(payloads), size)]

    def split(self, shards: int) -> list["WebBenchWorkload"]:
        """Divide the workload across *shards* independent server replicas.

        The request total is dealt out as evenly as possible (earlier shards
        receive the remainder); every other parameter is inherited.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        base, remainder = divmod(self.total_requests, shards)
        return [
            dataclasses.replace(self, total_requests=base + (1 if i < remainder else 0))
            for i in range(shards)
        ]

    @property
    def concurrent_clients(self) -> int:
        """Total simultaneous client engines (engines x machines)."""
        return self.client_engines * self.client_machines


#: The paper's unsaturated load: a single client machine running one engine.
UNSATURATED_WORKLOAD = WebBenchWorkload(total_requests=60, client_engines=1, client_machines=1)

#: The paper's saturated load: 3 client machines x 5 engines each.
SATURATED_WORKLOAD = WebBenchWorkload(total_requests=120, client_engines=5, client_machines=3)


@dataclasses.dataclass
class WorkloadMeasurement:
    """Everything measured from one workload run, independent of wall clock.

    The virtual-time performance model (:mod:`repro.analysis.perfmodel`)
    converts these counts into throughput and latency under a given load.
    """

    configuration: str
    num_variants: int
    requests_sent: int
    requests_completed: int
    status_counts: dict[int, int]
    response_bytes: int
    syscalls_total: int
    syscalls_per_variant: list[int]
    bytes_read: int
    bytes_written: int
    replicated_calls: int
    per_variant_calls: int
    monitor_checks: int
    detection_calls: int
    alarms: int
    concurrent_clients: int

    @property
    def completed_ok(self) -> bool:
        """True when every request produced a response and no alarm fired."""
        return self.requests_completed == self.requests_sent and self.alarms == 0

    def per_request_syscalls(self) -> float:
        """Average system calls (summed over variants) per completed request.

        With no completed requests there is no average to take, so the result
        is ``nan`` (not measured) rather than ``0.0`` (measured: zero calls
        per request) -- the two mean different things to every consumer that
        compares or thresholds this figure.
        """
        if not self.requests_completed:
            return float("nan")
        return self.syscalls_total / self.requests_completed


def _collect_responses(kernel: SimulatedKernel) -> tuple[int, dict[int, int], int]:
    """Parse every connection's responses; returns (completed, statuses, bytes).

    Keep-alive connections carry one Content-Length-framed response per
    pipelined request, so responses are counted individually rather than per
    connection.
    """
    completed = 0
    statuses: dict[int, int] = {}
    body_bytes = 0
    for connection in kernel.network.connections:
        raw = connection.response_bytes()
        if not raw:
            continue
        for status, _, body in split_responses(raw):
            completed += 1
            statuses[status] = statuses.get(status, 0) + 1
            body_bytes += len(body)
    return completed, statuses, body_bytes


def drive_standalone(
    workload: WebBenchWorkload,
    *,
    transformed: bool = False,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
    configuration: str = "standalone",
) -> WorkloadMeasurement:
    """Run the workload against a single (non-redundant) server process.

    ``transformed=False`` reproduces Configuration 1 of Table 3 (unmodified
    Apache on the N-variant-capable kernel); ``transformed=True`` reproduces
    Configuration 2 (the UID-transformed server running as a single process).
    """
    kernel = kernel if kernel is not None else build_standard_host()
    for payload in workload.connection_payloads():
        kernel.client_connect(HTTP_PORT, payload)

    process = kernel.spawn_process("httpd")
    server = MiniHttpd(
        Libc(),
        UIDCodec.identity(),
        process.address_space,
        transformed=transformed,
        max_requests=workload.total_requests,
        multiplex=multiplex,
    )
    runner = ProgramRunner(kernel)
    run_result = runner.run(process, server.run())

    completed, statuses, body_bytes = _collect_responses(kernel)
    detection_calls = sum(
        kernel.stats.syscall_breakdown.get(name, 0)
        for name in ("uid_value", "cond_chk", "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq")
    )
    return WorkloadMeasurement(
        configuration=configuration,
        num_variants=1,
        requests_sent=workload.total_requests,
        requests_completed=completed,
        status_counts=statuses,
        response_bytes=body_bytes,
        syscalls_total=kernel.stats.syscall_count,
        syscalls_per_variant=[process.stats.syscall_count],
        bytes_read=kernel.stats.bytes_read,
        bytes_written=kernel.stats.bytes_written,
        replicated_calls=0,
        per_variant_calls=kernel.stats.syscall_count,
        monitor_checks=0,
        detection_calls=detection_calls,
        alarms=0 if run_result.exited_normally else 1,
        concurrent_clients=workload.concurrent_clients,
    )


def _prepare_nvariant_session(
    workload: WebBenchWorkload,
    spec: SystemSpec,
    *,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
    name: str = "httpd",
) -> tuple[SimulatedKernel, NVariantSession]:
    """Load the workload onto a (fresh) host and build the server session."""
    kernel = kernel if kernel is not None else build_standard_host()
    for payload in workload.connection_payloads():
        kernel.client_connect(HTTP_PORT, payload)
    factory = make_httpd_factory(
        transformed=spec.transformed,
        max_requests=workload.total_requests,
        multiplex=multiplex,
    )
    return kernel, build_session(spec, kernel, factory, name=name)


def _nvariant_measurement(
    kernel: SimulatedKernel,
    workload: WebBenchWorkload,
    spec: SystemSpec,
    result: NVariantResult,
) -> WorkloadMeasurement:
    """Assemble the measurement record for one finished N-variant run."""
    completed, statuses, body_bytes = _collect_responses(kernel)
    detection_calls = sum(
        kernel.stats.syscall_breakdown.get(name, 0)
        for name in ("uid_value", "cond_chk", "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq")
    )
    return WorkloadMeasurement(
        configuration=spec.name,
        num_variants=spec.num_variants,
        requests_sent=workload.total_requests,
        requests_completed=completed,
        status_counts=statuses,
        response_bytes=body_bytes,
        syscalls_total=sum(v.syscall_count for v in result.variants),
        syscalls_per_variant=[v.syscall_count for v in result.variants],
        bytes_read=kernel.stats.bytes_read,
        bytes_written=kernel.stats.bytes_written,
        replicated_calls=result.wrapper_stats.replicated_calls,
        per_variant_calls=result.wrapper_stats.per_variant_calls,
        monitor_checks=result.monitor.stats.syscalls_compared,
        detection_calls=detection_calls,
        alarms=len(result.alarms),
        concurrent_clients=workload.concurrent_clients,
    )


def drive_nvariant(
    workload: WebBenchWorkload,
    spec: SystemSpec,
    *,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
) -> tuple[WorkloadMeasurement, NVariantResult]:
    """Run the workload against a declaratively specified N-variant server.

    ``ADDRESS_PARTITIONING_SPEC`` reproduces Configuration 3 of Table 3;
    ``ADDRESS_UID_SPEC`` reproduces Configuration 4.  The spec's ``name`` is
    the measurement's configuration label.
    """
    kernel, session = _prepare_nvariant_session(
        workload, spec, multiplex=multiplex, kernel=kernel
    )
    result = session.run()
    return _nvariant_measurement(kernel, workload, spec, result), result


def drive_nvariant_many(
    jobs: Sequence[tuple[WebBenchWorkload, SystemSpec]],
    *,
    multiplex: int = 1,
) -> list[tuple[WorkloadMeasurement, NVariantResult]]:
    """Run several (workload, spec) pairs concurrently on one engine.

    Each job gets its own simulated host, so the interleaving cannot change
    any job's measurement relative to :func:`drive_nvariant` -- the engine's
    interleaving-determinism guarantee.  The experiment drivers (Table 3,
    the ablations) use this to sweep their configurations through the engine
    in one pass instead of looping serially.
    """
    kernels: list[SimulatedKernel] = []
    sessions: list[NVariantSession] = []
    for index, (workload, spec) in enumerate(jobs):
        kernel, session = _prepare_nvariant_session(
            workload, spec, multiplex=multiplex, name=f"many-{index}-{spec.name}"
        )
        kernels.append(kernel)
        sessions.append(session)
    engine_result = run_sessions(sessions, name="nvariant-many")
    return [
        (_nvariant_measurement(kernel, workload, spec, entry.result), entry.result)
        for (workload, spec), kernel, entry in zip(jobs, kernels, engine_result.sessions)
    ]


# ---------------------------------------------------------------------------
# Concurrent multi-session driving (the engine path)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class EngineWorkloadMeasurement:
    """Aggregate measurement of one concurrent multi-session run.

    Sessions model independent N-variant server replicas progressing in
    parallel, so the engine's elapsed virtual time is the maximum over the
    sessions' kernel-clock consumption while the sequential reference is
    their sum -- the ratio between the two is the engine's concurrency win.
    """

    configuration: str
    num_sessions: int
    requests_sent: int
    requests_completed: int
    status_counts: dict[int, int]
    alarms: int
    virtual_elapsed: int
    virtual_elapsed_sequential: int
    engine_result: EngineResult

    @property
    def completed_ok(self) -> bool:
        """True when every request produced a response and no alarm fired."""
        return self.requests_completed == self.requests_sent and self.alarms == 0

    def requests_per_kilotick(self) -> float:
        """Aggregate throughput in requests per 1000 virtual clock ticks.

        ``nan`` when no virtual time elapsed: an empty run measured nothing,
        which is different from measuring a throughput of zero.
        """
        if not self.virtual_elapsed:
            return float("nan")
        return self.requests_completed * 1000.0 / self.virtual_elapsed

    def sequential_requests_per_kilotick(self) -> float:
        """What the same workload sustains run back-to-back on one replica.

        ``nan`` when the sequential reference elapsed no virtual time (see
        :meth:`requests_per_kilotick`).
        """
        if not self.virtual_elapsed_sequential:
            return float("nan")
        return self.requests_completed * 1000.0 / self.virtual_elapsed_sequential

    def speedup(self) -> float:
        """Concurrent over sequential aggregate throughput.

        ``nan`` when either side is unmeasured -- propagating the sentinel is
        what lets consumers distinguish "no measurement" from a genuine 0.0x.
        """
        sequential = self.sequential_requests_per_kilotick()
        concurrent = self.requests_per_kilotick()
        if sequential != sequential or concurrent != concurrent or not sequential:
            return float("nan")
        return concurrent / sequential


def drive_engine(
    fleet: FleetSpec, *, workload: Optional[WebBenchWorkload] = None
) -> EngineWorkloadMeasurement:
    """Drive the fleet a :class:`~repro.api.spec.FleetSpec` describes.

    The fleet's workload shape is expanded into a WebBench workload and split
    over ``fleet.num_sessions`` concurrent N-variant replicas, each running
    the full mini-httpd on its own simulated host (a sharded fleet behind a
    load balancer) with lockstep rounds interleaved by the cooperative
    scheduler.  Sessions are built fresh from ``fleet.system`` per shard, so
    no per-host state is shared.  Pass *workload* to override the expanded
    request sequence (e.g. a custom mix) while keeping the fleet shape.
    """
    if workload is None:
        workload = WebBenchWorkload(**fleet.workload.to_dict())
    shards = workload.split(fleet.num_sessions)
    kernels: list[SimulatedKernel] = []
    sessions: list[NVariantSession] = []
    for index, shard in enumerate(shards):
        kernel = build_standard_host()
        for payload in shard.connection_payloads():
            kernel.client_connect(HTTP_PORT, payload)
        kernels.append(kernel)
        factory = make_httpd_factory(
            transformed=fleet.system.transformed,
            max_requests=shard.total_requests,
            multiplex=fleet.multiplex,
        )
        sessions.append(
            build_session(fleet.system, kernel, factory, name=f"{fleet.name}-s{index}")
        )

    engine = build_engine(fleet, sessions)
    engine_result = engine.run()

    completed = 0
    statuses: dict[int, int] = {}
    for kernel in kernels:
        shard_completed, shard_statuses, _ = _collect_responses(kernel)
        completed += shard_completed
        for status, count in shard_statuses.items():
            statuses[status] = statuses.get(status, 0) + count

    return EngineWorkloadMeasurement(
        configuration=fleet.name,
        num_sessions=fleet.num_sessions,
        requests_sent=workload.total_requests,
        requests_completed=completed,
        status_counts=statuses,
        alarms=engine_result.total_alarms,
        virtual_elapsed=engine_result.virtual_elapsed,
        virtual_elapsed_sequential=engine_result.virtual_elapsed_sequential,
        engine_result=engine_result,
    )
