"""FtpBench: the webbench analogue for the second serving workload.

Drives a deterministic RETR mix against the mini-ftpd -- standalone or under
any N-variant configuration -- and reports the same
:class:`~repro.apps.clients.webbench.WorkloadMeasurement` record, so the
virtual-time performance model consumes both applications' runs unchanged.

Every scripted conversation pre-connects its command channel *and* its data
channel (the simulated PORT-mode client); the server accepts them FIFO, so
the n-th command connection is always paired with the n-th data channel.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional, Sequence

from repro.api.builders import build_session
from repro.api.spec import SystemSpec
from repro.apps.clients.webbench import WorkloadMeasurement
from repro.apps.ftpd.server import MiniFtpd, make_ftpd_factory
from repro.attacks.payloads import FTP_PASSWORD, FTP_USER, format_ftp_commands
from repro.core.nvariant import NVariantResult, UIDCodec
from repro.engine import NVariantSession
from repro.kernel.host import FTP_DATA_PORT, FTP_PORT, build_ftp_host
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.libc import Libc
from repro.kernel.scheduler import ProgramRunner

#: Client label prefix; data channels get a ``-data`` suffix.
CLIENT_LABEL = "ftpbench"


@dataclasses.dataclass(frozen=True)
class FtpMixEntry:
    """One file in the RETR mix with its relative weight."""

    path: str
    weight: int = 1


#: The default transfer mix over the standard FTP site, weighted towards the
#: small files like the webbench static mix is.
DEFAULT_FTP_MIX: tuple[FtpMixEntry, ...] = (
    FtpMixEntry("/welcome.txt", 6),
    FtpMixEntry("/pub/readme.txt", 4),
    FtpMixEntry("/incoming/notes.txt", 3),
    FtpMixEntry("/pub/tools.tar", 2),
    FtpMixEntry("/pub/dataset.bin", 1),
)


@dataclasses.dataclass
class FtpBenchWorkload:
    """A deterministic FTP transfer sequence.

    ``transfers_per_connection`` batches that many RETRs into one
    conversation (one login, several transfers, one QUIT) -- the FTP
    analogue of webbench's keep-alive pipelining.
    """

    total_requests: int = 50
    mix: Sequence[FtpMixEntry] = DEFAULT_FTP_MIX
    client_engines: int = 1
    client_machines: int = 1
    transfers_per_connection: int = 1

    def request_paths(self) -> list[str]:
        """Expand the weighted mix into the ordered RETR path sequence."""
        cycle = []
        for entry in self.mix:
            cycle.extend([entry.path] * entry.weight)
        if not cycle:
            raise ValueError("transfer mix must not be empty")
        return list(itertools.islice(itertools.cycle(cycle), self.total_requests))

    def connection_payloads(self) -> list[bytes]:
        """One command-channel byte blob per scripted conversation."""
        if self.transfers_per_connection < 1:
            raise ValueError("transfers_per_connection must be at least 1")
        paths = self.request_paths()
        size = self.transfers_per_connection
        payloads = []
        for start in range(0, len(paths), size):
            commands = [f"USER {FTP_USER}", f"PASS {FTP_PASSWORD}"]
            commands.extend(f"RETR {path}" for path in paths[start : start + size])
            commands.append("QUIT")
            payloads.append(format_ftp_commands(commands))
        return payloads

    @property
    def concurrent_clients(self) -> int:
        """Total simultaneous client engines (engines x machines)."""
        return self.client_engines * self.client_machines


def _connect_workload(kernel: SimulatedKernel, workload: FtpBenchWorkload) -> None:
    """Queue every conversation (command + paired data channel) on the host."""
    for index, payload in enumerate(workload.connection_payloads()):
        kernel.client_connect(FTP_PORT, payload, client=f"{CLIENT_LABEL}-{index}")
        kernel.client_connect(FTP_DATA_PORT, b"", client=f"{CLIENT_LABEL}-{index}-data")


def _collect_transfers(kernel: SimulatedKernel) -> tuple[int, dict[int, int], int]:
    """Parse the client-side view; returns (completed, statuses, body bytes).

    Completed transfers are the ``226`` replies on command channels; body
    bytes are what actually arrived on the data channels.
    """
    completed = 0
    statuses: dict[int, int] = {}
    body_bytes = 0
    for connection in kernel.network.connections:
        raw = connection.response_bytes()
        if not raw:
            continue
        if connection.client.endswith("-data"):
            body_bytes += len(raw)
            continue
        for line in raw.split(b"\r\n"):
            if len(line) >= 4 and line[:3].isdigit() and line[3:4] == b" ":
                status = int(line[:3])
                statuses[status] = statuses.get(status, 0) + 1
                if status == 226:
                    completed += 1
    return completed, statuses, body_bytes


def _detection_calls(kernel: SimulatedKernel) -> int:
    return sum(
        kernel.stats.syscall_breakdown.get(name, 0)
        for name in ("uid_value", "cond_chk", "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq")
    )


def drive_standalone(
    workload: FtpBenchWorkload,
    *,
    transformed: bool = False,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
    configuration: str = "ftpd-standalone",
) -> WorkloadMeasurement:
    """Run the workload against a single (non-redundant) ftpd process."""
    kernel = kernel if kernel is not None else build_ftp_host()
    _connect_workload(kernel, workload)

    process = kernel.spawn_process("ftpd")
    server = MiniFtpd(
        Libc(),
        UIDCodec.identity(),
        process.address_space,
        transformed=transformed,
        max_requests=workload.total_requests,
        multiplex=multiplex,
    )
    runner = ProgramRunner(kernel)
    run_result = runner.run(process, server.run())

    completed, statuses, body_bytes = _collect_transfers(kernel)
    return WorkloadMeasurement(
        configuration=configuration,
        num_variants=1,
        requests_sent=workload.total_requests,
        requests_completed=completed,
        status_counts=statuses,
        response_bytes=body_bytes,
        syscalls_total=kernel.stats.syscall_count,
        syscalls_per_variant=[process.stats.syscall_count],
        bytes_read=kernel.stats.bytes_read,
        bytes_written=kernel.stats.bytes_written,
        replicated_calls=0,
        per_variant_calls=kernel.stats.syscall_count,
        monitor_checks=0,
        detection_calls=_detection_calls(kernel),
        alarms=0 if run_result.exited_normally else 1,
        concurrent_clients=workload.concurrent_clients,
    )


def prepare_nvariant_session(
    workload: FtpBenchWorkload,
    spec: SystemSpec,
    *,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
    name: str = "ftpd",
) -> tuple[SimulatedKernel, NVariantSession]:
    """Load the workload onto a (fresh) FTP host and build the server session."""
    kernel = kernel if kernel is not None else build_ftp_host()
    _connect_workload(kernel, workload)
    factory = make_ftpd_factory(
        transformed=spec.transformed,
        max_requests=workload.total_requests,
        multiplex=multiplex,
    )
    return kernel, build_session(spec, kernel, factory, name=name)


def drive_nvariant(
    workload: FtpBenchWorkload,
    spec: SystemSpec,
    *,
    multiplex: int = 1,
    kernel: Optional[SimulatedKernel] = None,
) -> tuple[WorkloadMeasurement, NVariantResult]:
    """Run the workload against a declaratively specified N-variant ftpd."""
    kernel, session = prepare_nvariant_session(
        workload, spec, multiplex=multiplex, kernel=kernel
    )
    result = session.run()
    completed, statuses, body_bytes = _collect_transfers(kernel)
    measurement = WorkloadMeasurement(
        configuration=spec.name,
        num_variants=spec.num_variants,
        requests_sent=workload.total_requests,
        requests_completed=completed,
        status_counts=statuses,
        response_bytes=body_bytes,
        syscalls_total=sum(v.syscall_count for v in result.variants),
        syscalls_per_variant=[v.syscall_count for v in result.variants],
        bytes_read=kernel.stats.bytes_read,
        bytes_written=kernel.stats.bytes_written,
        replicated_calls=result.wrapper_stats.replicated_calls,
        per_variant_calls=result.wrapper_stats.per_variant_calls,
        monitor_checks=result.monitor.stats.syscalls_compared,
        detection_calls=_detection_calls(kernel),
        alarms=len(result.alarms),
        concurrent_clients=workload.concurrent_clients,
    )
    return measurement, result
