"""Workload generation: the WebBench-style client side of the evaluation."""

from repro.apps.clients.webbench import (
    DEFAULT_STATIC_MIX,
    EngineWorkloadMeasurement,
    RequestMixEntry,
    SATURATED_WORKLOAD,
    UNSATURATED_WORKLOAD,
    WebBenchWorkload,
    WorkloadMeasurement,
    drive_engine,
    drive_nvariant,
    drive_standalone,
)

__all__ = [
    "DEFAULT_STATIC_MIX",
    "EngineWorkloadMeasurement",
    "RequestMixEntry",
    "SATURATED_WORKLOAD",
    "UNSATURATED_WORKLOAD",
    "WebBenchWorkload",
    "WorkloadMeasurement",
    "drive_engine",
    "drive_nvariant",
    "drive_standalone",
]
