"""Named, parameterised factories for variations.

The declarative scenario layer refers to variations *by name*: a
:class:`~repro.api.spec.SystemSpec` carries ``("uid", {"mask": ...})`` rather
than a class object, so scenarios can live in JSON files and travel between
processes.  The registry is the resolver: it maps a stable public name (plus
the variation's historical ``Variation.name`` as an alias) to a factory that
builds a *fresh* instance per call -- sessions must never share variation
instances, which is why builders always go through :meth:`VariationRegistry.create`
instead of caching objects.

The default :data:`registry` is pre-populated with every Table 1 variation;
new diversity techniques register themselves once and immediately become
expressible in every campaign, benchmark and CLI scenario.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.core.variations.address import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    KeyedAddressPartitioning,
    OrbitAddressPartitioning,
)
from repro.core.variations.base import Variation
from repro.core.variations.fdspace import FdOrbitVariation
from repro.core.variations.instruction import InstructionSetTagging
from repro.core.variations.uid import (
    FullFlipUIDVariation,
    KeyedUIDVariation,
    OrbitUIDVariation,
    UIDVariation,
)


class VariationRegistryError(ValueError):
    """Base class for registry resolution failures."""


class UnknownVariationError(VariationRegistryError):
    """A spec named a variation the registry does not know."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(
            f"unknown variation {name!r}; registered variations: {', '.join(known) or '(none)'}"
        )
        self.name = name
        self.known = known


class VariationParameterError(VariationRegistryError):
    """A spec's parameters were rejected by the variation's factory."""

    def __init__(self, name: str, params: Mapping[str, Any], reason: str):
        super().__init__(f"bad parameters for variation {name!r} ({dict(params)!r}): {reason}")
        self.name = name
        self.params = dict(params)


@dataclasses.dataclass(frozen=True)
class RegisteredVariation:
    """One registry entry: the public name, its factory and documentation."""

    name: str
    factory: Callable[..., Variation]
    description: str = ""
    aliases: tuple[str, ...] = ()

    def parameters(self) -> list[str]:
        """The factory's accepted parameter names (for CLI listings)."""
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):
            return []
        return [
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]


class VariationRegistry:
    """Resolves variation names (and aliases) to fresh variation instances."""

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredVariation] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[..., Variation],
        *,
        description: str = "",
        aliases: tuple[str, ...] = (),
    ) -> RegisteredVariation:
        """Register *factory* under *name* (and optional aliases).

        Re-registering a name replaces the entry, so tests can shadow a
        variation in a scratch registry without mutating class state.
        """
        entry = RegisteredVariation(
            name=name, factory=factory, description=description, aliases=tuple(aliases)
        )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    # -- resolution ------------------------------------------------------------

    def names(self) -> list[str]:
        """The registered public names, sorted."""
        return sorted(self._entries)

    def get(self, name: str) -> RegisteredVariation:
        """Resolve *name* (or an alias) to its entry."""
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise UnknownVariationError(name, self.names()) from None

    def create(self, name: str, params: Optional[Mapping[str, Any]] = None) -> Variation:
        """Build a fresh variation instance from a name and parameters."""
        entry = self.get(name)
        kwargs = dict(params or {})
        try:
            variation = entry.factory(**kwargs)
        except (TypeError, ValueError) as exc:
            raise VariationParameterError(entry.name, kwargs, str(exc)) from exc
        if not isinstance(variation, Variation):
            raise VariationParameterError(
                entry.name, kwargs, f"factory returned {type(variation).__name__}, not a Variation"
            )
        return variation

    def name_of(self, factory: Callable[..., Variation]) -> str:
        """The registered public name whose factory is *factory*.

        Used by the deprecation shim to translate legacy variation *classes*
        into spec names; falls back to the class's own ``name`` attribute when
        that is a registered alias.
        """
        for entry in self._entries.values():
            if entry.factory is factory:
                return entry.name
        class_name = getattr(factory, "name", None)
        if isinstance(class_name, str) and (
            class_name in self._entries or class_name in self._aliases
        ):
            return self._aliases.get(class_name, class_name)
        raise UnknownVariationError(getattr(factory, "__name__", repr(factory)), self.names())

    def describe(self) -> list[dict[str, str]]:
        """Rows for the CLI's ``variations`` listing.

        ``num_variants`` (injected by the builders from the system spec) and
        ``scheme`` (a non-scalar object, library callers only) are omitted:
        neither is settable from a JSON scenario's params.
        """
        hidden = {"num_variants", "scheme"}
        return [
            {
                "name": entry.name,
                "aliases": ", ".join(entry.aliases),
                "parameters": ", ".join(p for p in entry.parameters() if p not in hidden),
                "description": entry.description,
            }
            for _, entry in sorted(self._entries.items())
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[RegisteredVariation]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


#: The default registry: every Table 1 variation, under short stable names
#: with the historical ``Variation.name`` values as aliases.
registry = VariationRegistry()

registry.register(
    "uid",
    UIDVariation,
    description="UID data diversity: R_1 XORs uid_t values with a 31-bit mask (Section 3)",
    aliases=("uid-variation",),
)
registry.register(
    "uid-orbit",
    OrbitUIDVariation,
    description=(
        "N-way UID orbit: variant i XORs uid_t with a distinct 31-bit mask, "
        "generalising the 2-variant re-expression to any variant count"
    ),
    aliases=("uid-orbit-variation",),
)
registry.register(
    "uid-full-flip",
    FullFlipUIDVariation,
    description="Rejected Section 3.2 ablation: XOR 0xFFFFFFFF flips the sign bit too",
    aliases=("uid-variation-full-flip",),
)
registry.register(
    "address",
    AddressPartitioning,
    description=(
        "Disjoint scheme-carved address-space partitions (high-bit split at N=2, "
        "Cox et al. 2006; top-bits orbit beyond)"
    ),
    aliases=("address-partitioning",),
)
registry.register(
    "address-orbit",
    OrbitAddressPartitioning,
    description=(
        "N-way address orbit: variant i owns the i-th top-bits slice of the "
        "address space, generalising the 2-variant partitioning to any variant count"
    ),
    aliases=("address-orbit-partitioning",),
)
registry.register(
    "address-extended",
    ExtendedAddressPartitioning,
    description="Partitioning plus a per-variant offset (Bruschi et al. 2007), N-ary",
    aliases=("extended-address-partitioning",),
)
registry.register(
    "uid-keyed",
    KeyedUIDVariation,
    description=(
        "Keyed UID orbit: secret pairwise-distinct masks drawn from key_bits "
        "of entropy (optionally pinned by seed), rotated on session restart"
    ),
    aliases=("uid-keyed-variation",),
)
registry.register(
    "address-keyed",
    KeyedAddressPartitioning,
    description=(
        "Keyed ASLR-style partitioning: secret slice assignments and slides "
        "drawn from key_bits of entropy (optionally pinned by seed)"
    ),
    aliases=("keyed-address-partitioning",),
)
registry.register(
    "fd-orbit",
    FdOrbitVariation,
    description=(
        "File-descriptor orbit: variant i holds descriptors re-expressed into "
        "the i-th top-bits slice, decoded ahead of the kernel, so an injected "
        "concrete fd value diverges at first use"
    ),
    aliases=("fd-orbit-variation",),
)
registry.register(
    "instruction-tagging",
    InstructionSetTagging,
    description="Per-variant instruction tags checked before execution",
    aliases=("instruction-set-tagging",),
)
