"""The unified campaign runner: attacks x system specs, one engine.

The seed repository grew one ad-hoc campaign per attack family
(``run_uid_campaign``, ``run_address_campaign``), each hand-wiring its own
configurations.  With systems described by :class:`~repro.api.spec.SystemSpec`
there is a single cross product left to run: :func:`run_campaign` takes any
mix of attacks from the library and any list of system specs, expands each
pair into a prepared cell -- a private kernel plus a resumable
:class:`~repro.engine.session.NVariantSession` -- and hands the whole batch to
the engine's :class:`~repro.engine.campaign.CampaignScheduler`.  That
scheduler is the only execution path: ``parallelism=1`` runs the cells
back-to-back in submission order (the historical serial campaign), larger
values interleave up to that many cells round-robin with batched lockstep
rounds, and because every cell owns its own simulated host the per-cell
outcomes are identical either way (the serial-parity property test pins
this).  The legacy ``run_uid_campaign``/``run_address_campaign`` shims were
removed after their one-release deprecation window; this function is the
only campaign entry point.

Attack drivers are imported lazily inside the dispatch functions: the attack
modules themselves build their systems through :mod:`repro.api.builders`, so a
module-level import in either direction would be circular.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro.api.spec import STANDARD_SYSTEM_SPECS, SystemSpec
from repro.engine.campaign import (
    CampaignExecutionResult,
    CampaignHaltPolicy,
    CampaignJob,
    run_jobs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from repro.attacks.memory_attacks import AddressInjectionAttack
    from repro.attacks.outcomes import AttackOutcome, PreparedAttack
    from repro.attacks.uid_attacks import UIDAttack

    Attack = UIDAttack | AddressInjectionAttack


@dataclasses.dataclass
class CampaignReport:
    """All outcomes from one campaign plus summary helpers.

    ``execution`` carries the engine scheduler's accounting (worker elapsed
    virtual times, fairness telemetry) when the report came out of
    :func:`run_campaign`; the outcome list and every summary helper are
    independent of how the campaign was scheduled.
    """

    outcomes: list["AttackOutcome"] = dataclasses.field(default_factory=list)
    execution: Optional[CampaignExecutionResult] = None

    def add(self, outcome: "AttackOutcome") -> None:
        """Append one outcome."""
        self.outcomes.append(outcome)

    def by_configuration(self, configuration: str) -> list["AttackOutcome"]:
        """Outcomes recorded against *configuration*."""
        return [o for o in self.outcomes if o.configuration == configuration]

    def by_attack(self, attack: str) -> list["AttackOutcome"]:
        """Outcomes recorded for *attack* across every configuration."""
        return [o for o in self.outcomes if o.attack == attack]

    def security_failures(self) -> list["AttackOutcome"]:
        """Undetected compromises across the whole campaign."""
        return [o for o in self.outcomes if o.is_security_failure]

    def detection_rate(self, configuration: str) -> float:
        """Fraction of attacks detected in *configuration*."""
        from repro.attacks.outcomes import OutcomeKind

        outcomes = self.by_configuration(configuration)
        if not outcomes:
            return 0.0
        detected = sum(1 for o in outcomes if o.kind is OutcomeKind.DETECTED)
        return detected / len(outcomes)

    def matrix(self) -> dict[str, dict[str, str]]:
        """``{attack: {configuration: outcome kind}}`` for table rendering."""
        table: dict[str, dict[str, str]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.attack, {})[outcome.configuration] = outcome.kind.value
        return table

    def describe(self) -> str:
        """Multi-line report."""
        lines = [o.describe() for o in self.outcomes]
        failures = self.security_failures()
        lines.append("")
        lines.append(f"undetected compromises: {len(failures)}")
        return "\n".join(lines)


def standard_attacks() -> list["Attack"]:
    """Every attack in the library's standard suites (UID + address)."""
    from repro.attacks.memory_attacks import standard_address_attacks
    from repro.attacks.uid_attacks import standard_uid_attacks

    return [*standard_uid_attacks(), *standard_address_attacks()]


def attacks_by_name() -> dict[str, "Attack"]:
    """Name -> attack for every standard attack (the CLI's selection space)."""
    return {attack.name: attack for attack in standard_attacks()}


def prepare_attack(attack: "Attack", spec: SystemSpec) -> "PreparedAttack":
    """Prepare one attack-x-spec cell: a lazy session plus its finalizer."""
    from repro.attacks.memory_attacks import AddressInjectionAttack, prepare_address_attack
    from repro.attacks.uid_attacks import UIDAttack, prepare_uid_attack

    if isinstance(attack, UIDAttack):
        return prepare_uid_attack(attack, spec)
    if isinstance(attack, AddressInjectionAttack):
        return prepare_address_attack(attack, spec)
    raise TypeError(f"unknown attack type {type(attack).__name__}: cannot dispatch {attack!r}")


def run_attack(attack: "Attack", spec: SystemSpec) -> "AttackOutcome":
    """Run one attack against one declaratively specified system."""
    return prepare_attack(attack, spec).run()


def run_campaign(
    specs: Sequence[SystemSpec] = STANDARD_SYSTEM_SPECS,
    attacks: Optional[Iterable["Attack"]] = None,
    *,
    parallelism: int = 1,
    rounds_per_turn: int = 8,
    halt: Union[CampaignHaltPolicy, str] = CampaignHaltPolicy.PER_CELL,
) -> CampaignReport:
    """Run every attack against every system spec and collect the outcomes.

    With no *attacks* the full standard suite (UID corruption plus address
    injection) runs; pass a subset to focus a campaign.  Specs may carry any
    registered variation stack -- this is the generic cross product the
    detection-matrix experiment, the examples and the CLI all share.

    Every cell runs as a resumable session under the engine's campaign
    scheduler.  ``parallelism`` bounds how many cells are interleaved at once
    (1 = the historical serial order, which every other value reproduces
    cell-for-cell since cells share no state); ``rounds_per_turn`` batches
    that many lockstep rounds per scheduling turn; ``halt`` chooses what one
    cell's halt means for the rest of the campaign
    (:class:`~repro.engine.campaign.CampaignHaltPolicy`).  Outcomes are always
    reported in submission order (attacks outer, specs inner), regardless of
    completion order.
    """
    selected = list(attacks) if attacks is not None else standard_attacks()
    halt_policy = halt if isinstance(halt, CampaignHaltPolicy) else CampaignHaltPolicy(halt)
    jobs = []
    for attack in selected:
        for spec in specs:
            cell = prepare_attack(attack, spec)
            jobs.append(CampaignJob(name=cell.name, start=cell.start, finish=cell.finish))
    execution = run_jobs(
        jobs,
        parallelism=parallelism,
        rounds_per_turn=rounds_per_turn,
        halt_policy=halt_policy,
    )
    return CampaignReport(
        outcomes=[job.value for job in execution.jobs if job.value is not None],
        execution=execution,
    )
