"""The unified campaign runner: attacks x system specs, one engine.

The seed repository grew one ad-hoc campaign per attack family
(``run_uid_campaign``, ``run_address_campaign``), each hand-wiring its own
configurations.  With systems described by :class:`~repro.api.spec.SystemSpec`
there is a single cross product left to run: :func:`run_campaign` takes any
mix of attacks from the library and any list of system specs, expands each
pair into a prepared cell -- a private kernel plus a resumable
:class:`~repro.engine.session.NVariantSession` -- and hands the whole batch to
the engine's :class:`~repro.engine.campaign.CampaignScheduler`.  That
scheduler is the only execution path: ``parallelism=1`` runs the cells
back-to-back in submission order (the historical serial campaign), larger
values interleave up to that many cells round-robin with batched lockstep
rounds, and because every cell owns its own simulated host the per-cell
outcomes are identical either way (the serial-parity property test pins
this).  The legacy ``run_uid_campaign``/``run_address_campaign`` shims were
removed after their one-release deprecation window; this function is the
only campaign entry point.

Attack drivers are imported lazily inside the dispatch functions: the attack
modules themselves build their systems through :mod:`repro.api.builders`, so a
module-level import in either direction would be circular.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro.api.spec import STANDARD_SYSTEM_SPECS, SystemSpec
from repro.engine.campaign import (
    CampaignExecutionResult,
    CampaignHaltPolicy,
    CampaignJob,
    run_jobs,
)
from repro.engine.procpool import ProcessJob, ProcessWorkerPool, run_process_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from repro.attacks.memory_attacks import AddressInjectionAttack
    from repro.attacks.outcomes import AttackOutcome, PreparedAttack
    from repro.attacks.uid_attacks import UIDAttack

    Attack = UIDAttack | AddressInjectionAttack


@dataclasses.dataclass
class CampaignReport:
    """All outcomes from one campaign plus summary helpers.

    ``execution`` carries the engine scheduler's accounting (worker elapsed
    virtual times, fairness telemetry) when the report came out of
    :func:`run_campaign`; the outcome list and every summary helper are
    independent of how the campaign was scheduled.
    """

    outcomes: list["AttackOutcome"] = dataclasses.field(default_factory=list)
    execution: Optional[CampaignExecutionResult] = None

    def add(self, outcome: "AttackOutcome") -> None:
        """Append one outcome."""
        self.outcomes.append(outcome)

    def by_configuration(self, configuration: str) -> list["AttackOutcome"]:
        """Outcomes recorded against *configuration*."""
        return [o for o in self.outcomes if o.configuration == configuration]

    def by_attack(self, attack: str) -> list["AttackOutcome"]:
        """Outcomes recorded for *attack* across every configuration."""
        return [o for o in self.outcomes if o.attack == attack]

    def security_failures(self) -> list["AttackOutcome"]:
        """Undetected compromises across the whole campaign."""
        return [o for o in self.outcomes if o.is_security_failure]

    def detection_rate(self, configuration: str) -> float:
        """Fraction of attacks detected in *configuration*."""
        from repro.attacks.outcomes import OutcomeKind

        outcomes = self.by_configuration(configuration)
        if not outcomes:
            return 0.0
        detected = sum(1 for o in outcomes if o.kind is OutcomeKind.DETECTED)
        return detected / len(outcomes)

    def matrix(self) -> dict[str, dict[str, str]]:
        """``{attack: {configuration: outcome kind}}`` for table rendering."""
        table: dict[str, dict[str, str]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.attack, {})[outcome.configuration] = outcome.kind.value
        return table

    def describe(self) -> str:
        """Multi-line report."""
        lines = [o.describe() for o in self.outcomes]
        failures = self.security_failures()
        lines.append("")
        lines.append(f"undetected compromises: {len(failures)}")
        return "\n".join(lines)


def standard_attacks(app: str = "httpd") -> list["Attack"]:
    """Every attack in the library's standard suites (UID + address).

    The same attack classes exist against every registered serving app; *app*
    selects whose wire format carries the payloads.
    """
    from repro.attacks.memory_attacks import standard_address_attacks
    from repro.attacks.uid_attacks import standard_uid_attacks

    return [*standard_uid_attacks(app), *standard_address_attacks(app)]


def attacks_by_name(app: str = "httpd") -> dict[str, "Attack"]:
    """Name -> attack for every standard attack (the CLI's selection space)."""
    return {attack.name: attack for attack in standard_attacks(app)}


def prepare_attack(attack: "Attack", spec: SystemSpec) -> "PreparedAttack":
    """Prepare one attack-x-spec cell: a lazy session plus its finalizer."""
    from repro.attacks.memory_attacks import AddressInjectionAttack, prepare_address_attack
    from repro.attacks.uid_attacks import UIDAttack, prepare_uid_attack

    if isinstance(attack, UIDAttack):
        return prepare_uid_attack(attack, spec)
    if isinstance(attack, AddressInjectionAttack):
        return prepare_address_attack(attack, spec)
    raise TypeError(f"unknown attack type {type(attack).__name__}: cannot dispatch {attack!r}")


def run_attack(attack: "Attack", spec: SystemSpec) -> "AttackOutcome":
    """Run one attack against one declaratively specified system."""
    return prepare_attack(attack, spec).run()


# ---------------------------------------------------------------------------
# The process backend: cells serialized as scenario payloads
# ---------------------------------------------------------------------------

#: Campaign execution backends `run_campaign` accepts.
CAMPAIGN_BACKENDS = ("virtual", "process")

#: The runner reference process workers resolve to rebuild and run one cell.
CELL_RUNNER = "repro.api.campaign:run_cell_payload"


def run_cell_payload(payload) -> dict:
    """Rebuild one attack-x-spec cell from its payload and run it (worker side).

    Live sessions hold kernels and generators, so what crosses the process
    boundary is the same declarative data a scenario file holds: the attack's
    library name plus the :class:`~repro.api.spec.SystemSpec` dict.  The cell
    is then prepared exactly the way the virtual backend prepares it in
    process, which is what makes the two backends byte-identical per cell.

    ``service_delay_ms``, when present, adds a real blocking wait after the
    cell -- the per-cell network/disk service time an in-process simulation
    elides.  The wall-clock benchmark uses it to measure the worker fleet's
    blocking-overlap win independently of how many cores the host has; it
    never changes the cell's outcome or virtual-time accounting.
    """
    import time

    attack_name = payload["attack"]
    # The "app" key is omitted for the historical default so pre-existing
    # payloads (and their recorded benchmark bytes) are unchanged.
    known = attacks_by_name(payload.get("app", "httpd"))
    if attack_name not in known:
        raise ValueError(
            f"unknown attack {attack_name!r} in cell payload; known attacks: "
            f"{', '.join(sorted(known))}"
        )
    spec = SystemSpec.from_dict(payload["spec"])
    cell = prepare_attack(known[attack_name], spec)
    session = cell.start()
    while not session.done:
        session.step()
    value = cell.finish(session)
    delay_ms = payload.get("service_delay_ms", 0)
    if delay_ms:
        time.sleep(delay_ms / 1000.0)
    return {
        "state": session.state.value,
        "rounds": session.rounds,
        "virtual_elapsed": session.virtual_elapsed,
        "value": value,
    }


def process_campaign_jobs(
    specs: Sequence[SystemSpec],
    attacks: Optional[Iterable["Attack"]] = None,
    *,
    service_delay_ms: int = 0,
) -> list[ProcessJob]:
    """Expand the attacks-x-specs cross product into process-tier jobs.

    The process backend ships cells by *name*: a worker looks the attack up
    in the standard library and rebuilds the cell from the spec dict, so an
    attack object that is not (or no longer matches) its registered namesake
    cannot cross the boundary -- that is rejected here, loudly, instead of
    silently running a different attack in the worker.
    """
    selected = list(attacks) if attacks is not None else standard_attacks()
    known_per_app: dict[str, dict] = {}
    jobs = []
    for attack in selected:
        app = getattr(attack, "app", "httpd")
        if app not in known_per_app:
            known_per_app[app] = attacks_by_name(app)
        if known_per_app[app].get(attack.name) != attack:
            raise ValueError(
                f"attack {attack.name!r} is not a standard library attack; the "
                "process backend serializes cells by attack name, so custom "
                "attack objects must run on the virtual backend"
            )
        for spec in specs:
            payload: dict = {"attack": attack.name, "spec": spec.to_dict()}
            if app != "httpd":
                payload["app"] = app
            if service_delay_ms:
                payload["service_delay_ms"] = service_delay_ms
            jobs.append(
                ProcessJob(
                    name=f"{attack.name}@{spec.name}", runner=CELL_RUNNER, payload=payload
                )
            )
    return jobs


def run_campaign(
    specs: Sequence[SystemSpec] = STANDARD_SYSTEM_SPECS,
    attacks: Optional[Iterable["Attack"]] = None,
    *,
    parallelism: int = 1,
    rounds_per_turn: int = 8,
    halt: Union[CampaignHaltPolicy, str] = CampaignHaltPolicy.PER_CELL,
    backend: str = "virtual",
    workers: Optional[int] = None,
    pool: Optional[ProcessWorkerPool] = None,
    seed: Optional[int] = None,
) -> CampaignReport:
    """Run every attack against every system spec and collect the outcomes.

    With no *attacks* the full standard suite (UID corruption plus address
    injection) runs; pass a subset to focus a campaign.  Specs may carry any
    registered variation stack -- this is the generic cross product the
    detection-matrix experiment, the examples and the CLI all share.

    Two backends execute the same cross product and report outcomes in the
    same submission order (attacks outer, specs inner), regardless of
    completion order:

    * ``backend="virtual"`` (the default): every cell runs as a resumable
      session interleaved by the in-process
      :class:`~repro.engine.campaign.CampaignScheduler`, with concurrency
      accounted in kernel ticks.  ``rounds_per_turn`` batches that many
      lockstep rounds per scheduling turn.
    * ``backend="process"``: cells are serialized as scenario payloads and
      sharded across pre-forked OS worker processes
      (:mod:`repro.engine.procpool`), so the concurrency is physical
      wall-clock parallelism.  Pass ``pool`` to reuse a started
      :class:`~repro.engine.procpool.ProcessWorkerPool` across campaigns.

    ``workers`` is the uniform worker-count knob for both backends and
    defaults to ``parallelism`` (kept as the historical spelling; 1 = the
    serial order every other count reproduces cell-for-cell, since cells
    share no state).  ``halt`` chooses what one cell's halt means for the
    rest of the campaign
    (:class:`~repro.engine.campaign.CampaignHaltPolicy`).

    ``seed`` pins every seedable (keyed) variation in every spec to a seed
    derived from it (:func:`~repro.api.seeding.seeded_spec`).  The rewrite
    happens *before* backend dispatch, so the derived seeds travel inside the
    serialized spec payloads and a seeded campaign is byte-identical across
    backends and worker counts.
    """
    if backend not in CAMPAIGN_BACKENDS:
        raise ValueError(
            f"backend must be one of {', '.join(CAMPAIGN_BACKENDS)}, got {backend!r}"
        )
    if seed is not None:
        from repro.api.seeding import seeded_spec

        specs = [seeded_spec(spec, seed) for spec in specs]
    selected = list(attacks) if attacks is not None else standard_attacks()
    halt_policy = halt if isinstance(halt, CampaignHaltPolicy) else CampaignHaltPolicy(halt)
    effective_workers = workers if workers is not None else parallelism
    if effective_workers < 1:
        raise ValueError(f"workers must be >= 1, got {effective_workers}")

    if backend == "process":
        execution = run_process_jobs(
            process_campaign_jobs(specs, selected),
            workers=effective_workers,
            halt_policy=halt_policy,
            rounds_per_turn=rounds_per_turn,
            pool=pool,
        )
    else:
        jobs = []
        for attack in selected:
            for spec in specs:
                cell = prepare_attack(attack, spec)
                jobs.append(CampaignJob(name=cell.name, start=cell.start, finish=cell.finish))
        execution = run_jobs(
            jobs,
            parallelism=effective_workers,
            rounds_per_turn=rounds_per_turn,
            halt_policy=halt_policy,
        )
    return CampaignReport(
        outcomes=[job.value for job in execution.jobs if job.value is not None],
        execution=execution,
    )
