"""The unified campaign runner: attacks x system specs, one loop.

The seed repository grew one ad-hoc campaign per attack family
(``run_uid_campaign``, ``run_address_campaign``), each hand-wiring its own
configurations.  With systems described by :class:`~repro.api.spec.SystemSpec`
there is a single cross product left to run: :func:`run_campaign` takes any
mix of attacks from the library and any list of system specs, dispatches each
pair to the right driver and collects one :class:`CampaignReport`.  The legacy
campaign entry points live on in :mod:`repro.attacks.runner` as deprecation
shims over this function.

Attack drivers are imported lazily inside the dispatch functions: the attack
modules themselves build their systems through :mod:`repro.api.builders`, so a
module-level import in either direction would be circular.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.api.spec import (
    ADDRESS_PARTITIONING_SPEC,
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from repro.attacks.memory_attacks import AddressInjectionAttack
    from repro.attacks.outcomes import AttackOutcome
    from repro.attacks.uid_attacks import UIDAttack

    Attack = UIDAttack | AddressInjectionAttack


@dataclasses.dataclass
class CampaignReport:
    """All outcomes from one campaign plus summary helpers."""

    outcomes: list["AttackOutcome"] = dataclasses.field(default_factory=list)

    def add(self, outcome: "AttackOutcome") -> None:
        """Append one outcome."""
        self.outcomes.append(outcome)

    def by_configuration(self, configuration: str) -> list["AttackOutcome"]:
        """Outcomes recorded against *configuration*."""
        return [o for o in self.outcomes if o.configuration == configuration]

    def by_attack(self, attack: str) -> list["AttackOutcome"]:
        """Outcomes recorded for *attack* across every configuration."""
        return [o for o in self.outcomes if o.attack == attack]

    def security_failures(self) -> list["AttackOutcome"]:
        """Undetected compromises across the whole campaign."""
        return [o for o in self.outcomes if o.is_security_failure]

    def detection_rate(self, configuration: str) -> float:
        """Fraction of attacks detected in *configuration*."""
        from repro.attacks.outcomes import OutcomeKind

        outcomes = self.by_configuration(configuration)
        if not outcomes:
            return 0.0
        detected = sum(1 for o in outcomes if o.kind is OutcomeKind.DETECTED)
        return detected / len(outcomes)

    def matrix(self) -> dict[str, dict[str, str]]:
        """``{attack: {configuration: outcome kind}}`` for table rendering."""
        table: dict[str, dict[str, str]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.attack, {})[outcome.configuration] = outcome.kind.value
        return table

    def describe(self) -> str:
        """Multi-line report."""
        lines = [o.describe() for o in self.outcomes]
        failures = self.security_failures()
        lines.append("")
        lines.append(f"undetected compromises: {len(failures)}")
        return "\n".join(lines)


def standard_attacks() -> list["Attack"]:
    """Every attack in the library's standard suites (UID + address)."""
    from repro.attacks.memory_attacks import standard_address_attacks
    from repro.attacks.uid_attacks import standard_uid_attacks

    return [*standard_uid_attacks(), *standard_address_attacks()]


def attacks_by_name() -> dict[str, "Attack"]:
    """Name -> attack for every standard attack (the CLI's selection space)."""
    return {attack.name: attack for attack in standard_attacks()}


def run_attack(attack: "Attack", spec: SystemSpec) -> "AttackOutcome":
    """Run one attack against one declaratively specified system."""
    from repro.attacks.memory_attacks import (
        AddressInjectionAttack,
        run_address_attack_nvariant,
        run_address_attack_single,
    )
    from repro.attacks.uid_attacks import UIDAttack, run_uid_attack

    if isinstance(attack, UIDAttack):
        return run_uid_attack(attack, spec)
    if isinstance(attack, AddressInjectionAttack):
        if not spec.redundant:
            return run_address_attack_single(attack, configuration=spec.name)
        return run_address_attack_nvariant(attack, spec)
    raise TypeError(f"unknown attack type {type(attack).__name__}: cannot dispatch {attack!r}")


def run_campaign(
    specs: Sequence[SystemSpec] = STANDARD_SYSTEM_SPECS,
    attacks: Optional[Iterable["Attack"]] = None,
) -> CampaignReport:
    """Run every attack against every system spec and collect the outcomes.

    With no *attacks* the full standard suite (UID corruption plus address
    injection) runs; pass a subset to focus a campaign.  Specs may carry any
    registered variation stack -- this is the generic cross product the
    detection-matrix experiment, the examples and the CLI all share.
    """
    selected = list(attacks) if attacks is not None else standard_attacks()
    report = CampaignReport()
    for attack in selected:
        for spec in specs:
            report.add(run_attack(attack, spec))
    return report


def run_address_campaign_specs() -> tuple[SystemSpec, SystemSpec]:
    """The two configurations the Figure 1 address campaign compares."""
    return (SINGLE_PROCESS_SPEC, ADDRESS_PARTITIONING_SPEC)
