"""Declarative scenario API: specs, the variation registry, builders, campaigns.

This package separates the *policy description* from the *execution engine*
(the split Section 3 of the paper implies): a scenario is data -- a
:class:`~repro.api.spec.SystemSpec` or :class:`~repro.api.spec.FleetSpec`
that round-trips through JSON -- and the builders are the single construction
path from that data to running :class:`~repro.core.nvariant.NVariantSystem` /
:class:`~repro.engine.scheduler.MultiSessionEngine` machinery.

Typical use::

    from repro import SystemSpec, VariationSpec, build_system, run_campaign

    spec = SystemSpec(name="2-variant-uid", variations=(VariationSpec("uid"),))
    report = run_campaign([spec])                    # attacks x specs
    system = build_system(spec, kernel, factory)     # one concrete system

``python -m repro run scenario.json`` drives the same API from the command
line, so new scenarios require no code at all.
"""

from repro.api.builders import (
    build_engine,
    build_session,
    build_system,
    build_variations,
)
from repro.api.campaign import (
    CampaignReport,
    attacks_by_name,
    prepare_attack,
    run_attack,
    run_campaign,
    standard_attacks,
)
from repro.api.experiments import (
    ExperimentParameter,
    ExperimentParameterError,
    ExperimentRegistry,
    ExperimentRegistryError,
    ExperimentReport,
    RegisteredExperiment,
    ReportKeyValues,
    ReportTable,
    UnknownExperimentError,
    experiments,
)
from repro.api.registry import (
    RegisteredVariation,
    UnknownVariationError,
    VariationParameterError,
    VariationRegistry,
    VariationRegistryError,
    registry,
)
from repro.api.spec import (
    ADDRESS_ORBIT_3_SPEC,
    ADDRESS_PARTITIONING_SPEC,
    ADDRESS_UID_SPEC,
    COMBINED_ORBIT_3_SPEC,
    ExperimentSpec,
    FLEET_HALT_POLICIES,
    FleetSpec,
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
    UID_DIVERSITY_SPEC,
    UID_ORBIT_3_SPEC,
    VariationSpec,
    WorkloadSpec,
    address_orbit_spec,
    combined_orbit_spec,
    keyed_address_spec,
    keyed_uid_spec,
    uid_orbit_spec,
)

__all__ = [
    "ADDRESS_ORBIT_3_SPEC",
    "ADDRESS_PARTITIONING_SPEC",
    "ADDRESS_UID_SPEC",
    "COMBINED_ORBIT_3_SPEC",
    "CampaignReport",
    "ExperimentParameter",
    "ExperimentParameterError",
    "ExperimentRegistry",
    "ExperimentRegistryError",
    "ExperimentReport",
    "ExperimentSpec",
    "FLEET_HALT_POLICIES",
    "FleetSpec",
    "RegisteredExperiment",
    "RegisteredVariation",
    "ReportKeyValues",
    "ReportTable",
    "SINGLE_PROCESS_SPEC",
    "STANDARD_SYSTEM_SPECS",
    "SystemSpec",
    "UID_DIVERSITY_SPEC",
    "UID_ORBIT_3_SPEC",
    "UnknownExperimentError",
    "UnknownVariationError",
    "VariationParameterError",
    "VariationRegistry",
    "VariationRegistryError",
    "VariationSpec",
    "WorkloadSpec",
    "address_orbit_spec",
    "attacks_by_name",
    "build_engine",
    "build_session",
    "build_system",
    "build_variations",
    "combined_orbit_spec",
    "experiments",
    "keyed_address_spec",
    "keyed_uid_spec",
    "prepare_attack",
    "registry",
    "run_attack",
    "run_campaign",
    "standard_attacks",
    "uid_orbit_spec",
]
