"""First-class experiments: the registry, the shared typed report, renderers.

PR 2 made *systems* declarative (``SystemSpec`` + the variation registry);
this module does the same for *experiments*.  Every paper table/figure driver
under :mod:`repro.analysis.experiments` registers here under a stable name
with a typed parameter list, and every one of them returns the same
:class:`ExperimentReport` -- structured sections (tables and key/value
blocks), named claim results, and timing/engine telemetry -- instead of a
bespoke ``format()`` string.  That one shape is what makes experiments data:

* ``python -m repro experiment table3 --set requests=20`` runs any registered
  experiment from the shell;
* a ``{"scenario": "experiment", "experiment": "ablations"}`` JSON file runs
  it as a scenario, so new experiments need no new CLI branch;
* the benchmark harness iterates the registry generically and persists each
  report as ``BENCH_<name>.json``.

Experiment modules are imported lazily (each registry entry carries a
``"module:function"`` loader), so listing experiments stays cheap and the
registry can live in :mod:`repro.api` without dragging the whole analysis
layer into every import of the scenario API.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import time
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence, Union

from repro.api.spec import ExperimentSpec

# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


class ExperimentRegistryError(ValueError):
    """Base class for experiment resolution failures."""


class UnknownExperimentError(ExperimentRegistryError):
    """A spec named an experiment the registry does not know."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(
            f"unknown experiment {name!r}; registered experiments: "
            f"{', '.join(known) or '(none)'}"
        )
        self.name = name
        self.known = known


class ExperimentParameterError(ExperimentRegistryError):
    """A spec's parameters do not match the experiment's declared parameters."""

    def __init__(self, name: str, reason: str):
        super().__init__(f"bad parameters for experiment {name!r}: {reason}")
        self.name = name


# ---------------------------------------------------------------------------
# Report sections
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReportTable:
    """One table of an experiment report: headers plus homogeneous rows."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", tuple(str(h) for h in self.headers))
        object.__setattr__(
            self,
            "rows",
            tuple(tuple(str(cell) for cell in row) for row in self.rows),
        )
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"table {self.title!r}: row {row!r} does not have "
                    f"{len(self.headers)} columns"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the ``kind`` key discriminates sections)."""
        return {
            "kind": "table",
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    def render(self, style: str = "text") -> str:
        """Render this table in the requested style."""
        from repro.analysis.tables import render_table, render_table_markdown

        if style == "markdown":
            return render_table_markdown(self.headers, self.rows, title=self.title)
        return render_table(self.headers, self.rows, title=self.title)


@dataclasses.dataclass(frozen=True)
class ReportKeyValues:
    """One key/value block of an experiment report."""

    title: str
    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "pairs",
            tuple((str(key), str(value)) for key, value in self.pairs),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the ``kind`` key discriminates sections)."""
        return {
            "kind": "key-values",
            "title": self.title,
            "pairs": [list(pair) for pair in self.pairs],
        }

    def render(self, style: str = "text") -> str:
        """Render this block in the requested style."""
        from repro.analysis.tables import render_key_values, render_key_values_markdown

        if style == "markdown":
            return render_key_values_markdown(self.pairs, title=self.title)
        return render_key_values(self.pairs, title=self.title)


ReportSection = Union[ReportTable, ReportKeyValues]

#: Rendering styles :meth:`ExperimentReport.format` accepts.
REPORT_STYLES = ("text", "markdown")


# ---------------------------------------------------------------------------
# The shared report
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ExperimentReport:
    """The one result type every registered experiment returns.

    ``sections`` carry the renderable data (the paper's tables and traces),
    ``claims`` the named boolean results the reproduction asserts, and
    ``telemetry`` whatever timing/engine accounting the run produced (the
    registry adds wall-clock seconds).  ``result`` is the experiment module's
    underlying structured object for callers that need the full detail (the
    benchmark assertions, the parity tests); it is deliberately excluded from
    the JSON form, which must stay schema-stable.
    """

    title: str
    sections: tuple[ReportSection, ...] = ()
    claims: dict[str, bool] = dataclasses.field(default_factory=dict)
    telemetry: dict[str, Any] = dataclasses.field(default_factory=dict)
    result: Any = None
    spec: Optional[ExperimentSpec] = None

    def __post_init__(self) -> None:
        self.sections = tuple(self.sections)

    @property
    def ok(self) -> bool:
        """True when every claim holds (an empty claim set counts as ok)."""
        return all(self.claims.values())

    @property
    def failed_claims(self) -> list[str]:
        """The names of the claims that did not hold."""
        return [claim for claim, holds in self.claims.items() if not holds]

    def tables(self) -> list[ReportTable]:
        """Just the table sections, in order."""
        return [s for s in self.sections if isinstance(s, ReportTable)]

    def rows(self) -> list[tuple[str, ...]]:
        """Every table row in the report, in section order (for parity tests)."""
        return [row for table in self.tables() for row in table.rows]

    # -- renderers -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The schema-stable JSON representation of this report."""
        return {
            "experiment": self.spec.name if self.spec is not None else None,
            "params": self.spec.params_dict() if self.spec is not None else {},
            "title": self.title,
            "ok": self.ok,
            "claims": dict(self.claims),
            "sections": [section.to_dict() for section in self.sections],
            "telemetry": dict(self.telemetry),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def format(self, style: str = "text") -> str:
        """Render the full report (sections, then claims, then telemetry)."""
        if style not in REPORT_STYLES:
            raise ValueError(
                f"style must be one of {', '.join(REPORT_STYLES)}, got {style!r}"
            )
        blocks = [section.render(style) for section in self.sections]
        if self.claims:
            if style == "markdown":
                lines = ["### Claims", ""]
                lines.extend(
                    f"- [{'x' if holds else ' '}] {claim}"
                    for claim, holds in self.claims.items()
                )
            else:
                lines = ["Claims:"]
                lines.extend(
                    f"  [{'ok' if holds else 'FAIL'}] {claim}"
                    for claim, holds in self.claims.items()
                )
            blocks.append("\n".join(lines))
        if self.telemetry:
            pairs = tuple((key, value) for key, value in self.telemetry.items())
            blocks.append(ReportKeyValues(title="Telemetry", pairs=pairs).render(style))
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ExperimentParameter:
    """One declared parameter of an experiment: name, scalar type, default."""

    name: str
    kind: type
    default: Any
    description: str = ""

    def accepts(self, value: Any) -> bool:
        """True when *value* is usable for this parameter.

        ``bool`` is not accepted where ``int`` is declared (and vice versa)
        even though Python subclasses them, since in a JSON scenario file
        ``true`` where a count belongs is always a mistake.
        """
        if self.kind is int:
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind is float:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, self.kind)


@dataclasses.dataclass(frozen=True)
class RegisteredExperiment:
    """One registry entry: name, lazy runner, parameters, documentation.

    ``runner`` is either a ``"module:function"`` loader string (preferred for
    the built-in experiments: listing the registry then costs no analysis
    imports) or a callable; either way it takes the declared parameters as
    keyword arguments and returns an :class:`ExperimentReport`.
    ``smoke_params`` are the smallest parameters the experiment runs
    meaningfully with -- what ``--smoke`` and the ``experiments-smoke`` CI
    target use.
    """

    name: str
    runner: Union[str, Callable[..., ExperimentReport]]
    description: str = ""
    parameters: tuple[ExperimentParameter, ...] = ()
    smoke_params: tuple[tuple[str, Any], ...] = ()

    def parameter_names(self) -> list[str]:
        """The declared parameter names, in declaration order."""
        return [parameter.name for parameter in self.parameters]

    def resolve(self) -> Callable[..., ExperimentReport]:
        """Import (if needed) and return the runner callable."""
        if callable(self.runner):
            return self.runner
        module_name, _, attribute = self.runner.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attribute)


class ExperimentRegistry:
    """Resolves experiment names to validated, timed report-producing runs."""

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredExperiment] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        runner: Union[str, Callable[..., ExperimentReport]],
        *,
        description: str = "",
        parameters: Sequence[ExperimentParameter] = (),
        smoke_params: Optional[Mapping[str, Any]] = None,
    ) -> RegisteredExperiment:
        """Register *runner* under *name* (re-registering replaces the entry)."""
        entry = RegisteredExperiment(
            name=name,
            runner=runner,
            description=description,
            parameters=tuple(parameters),
            smoke_params=tuple(sorted((smoke_params or {}).items())),
        )
        self._entries[name] = entry
        return entry

    # -- resolution ------------------------------------------------------------

    def names(self) -> list[str]:
        """The registered experiment names, sorted."""
        return sorted(self._entries)

    def get(self, name: str) -> RegisteredExperiment:
        """Resolve *name* to its entry."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownExperimentError(name, self.names()) from None

    def validate(self, spec: ExperimentSpec) -> dict[str, Any]:
        """Check *spec* against the experiment's declared parameters.

        Returns the keyword arguments for the runner.  Unknown parameter
        names and type mismatches are :class:`ExperimentParameterError`\\ s --
        the experiment-level analogue of ``SystemSpec.from_dict`` rejecting
        unknown keys.
        """
        entry = self.get(spec.name)
        declared = {parameter.name: parameter for parameter in entry.parameters}
        params = spec.params_dict()
        unknown = sorted(set(params) - set(declared))
        if unknown:
            raise ExperimentParameterError(
                spec.name,
                f"unknown parameters: {', '.join(unknown)}; accepted: "
                f"{', '.join(entry.parameter_names()) or '(none)'}",
            )
        for key, value in params.items():
            parameter = declared[key]
            if not parameter.accepts(value):
                raise ExperimentParameterError(
                    spec.name,
                    f"{key} must be {parameter.kind.__name__}, "
                    f"got {type(value).__name__} {value!r}",
                )
        return params

    def smoke_spec(self, name: str) -> ExperimentSpec:
        """The smallest meaningful spec for *name* (the CI smoke configuration)."""
        entry = self.get(name)
        return ExperimentSpec(name=name, params=entry.smoke_params)

    def run(
        self,
        spec: Union[ExperimentSpec, str],
        params: Optional[Mapping[str, Any]] = None,
    ) -> ExperimentReport:
        """Run one experiment and return its report.

        *spec* may be a full :class:`ExperimentSpec` or a bare name (with
        optional *params*).  The registry validates the parameters, times the
        run, and stamps the report with the spec and wall-clock telemetry --
        every execution path (CLI, scenarios, benchmarks, library callers)
        goes through here.
        """
        if isinstance(spec, str):
            spec = ExperimentSpec(name=spec, params=tuple(sorted((params or {}).items())))
        elif params is not None:
            raise TypeError("pass parameters inside the ExperimentSpec, not separately")
        kwargs = self.validate(spec)
        runner = self.get(spec.name).resolve()
        started = time.perf_counter()
        report = runner(**kwargs)
        elapsed = time.perf_counter() - started
        if not isinstance(report, ExperimentReport):
            raise ExperimentRegistryError(
                f"experiment {spec.name!r} returned {type(report).__name__}, "
                f"not an ExperimentReport"
            )
        report.spec = spec
        report.telemetry.setdefault("wall_seconds", round(elapsed, 6))
        return report

    def describe(self) -> list[dict[str, str]]:
        """Rows for the CLI's ``experiments`` listing."""
        return [
            {
                "name": entry.name,
                "parameters": ", ".join(
                    f"{p.name}:{p.kind.__name__}={p.default!r}" for p in entry.parameters
                ),
                "smoke": ", ".join(f"{k}={v!r}" for k, v in entry.smoke_params),
                "description": entry.description,
            }
            for _, entry in sorted(self._entries.items())
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[RegisteredExperiment]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# The default registry: every paper table/figure plus the ablation suite
# ---------------------------------------------------------------------------

_EXPERIMENTS = "repro.analysis.experiments"

#: The default registry.  Each entry's runner returns an
#: :class:`ExperimentReport`; parameters mirror the module ``run()`` defaults.
experiments = ExperimentRegistry()

experiments.register(
    "table1",
    f"{_EXPERIMENTS}.table1:experiment",
    description="Table 1: reexpression functions and their inverse/disjointedness properties",
    parameters=(
        ExperimentParameter(
            "sample_count", int, 2048, "domain samples per property check"
        ),
    ),
    smoke_params={"sample_count": 256},
)
experiments.register(
    "table2",
    f"{_EXPERIMENTS}.table2:experiment",
    description="Table 2: detection system calls exercised live (benign and attack halves)",
)
experiments.register(
    "table3",
    f"{_EXPERIMENTS}.table3:experiment",
    description="Table 3: throughput/latency of the four configurations (virtual-time model)",
    parameters=(
        ExperimentParameter("requests", int, 40, "benign requests per configuration"),
    ),
    smoke_params={"requests": 10},
)
experiments.register(
    "figure1",
    f"{_EXPERIMENTS}.figure1:experiment",
    description="Figure 1: two-variant address partitioning (benign equivalence + injection)",
    parameters=(
        ExperimentParameter("benign_requests", int, 8, "benign requests driven"),
    ),
    smoke_params={"benign_requests": 4},
)
experiments.register(
    "figure2",
    f"{_EXPERIMENTS}.figure2:experiment",
    description="Figure 2: the data-diversity pipeline, model-level and end-to-end",
)
experiments.register(
    "section4",
    f"{_EXPERIMENTS}.section4:experiment",
    description="Section 4: automatic source-transformation effort accounting",
)
experiments.register(
    "detection",
    f"{_EXPERIMENTS}.detection:experiment",
    description="The full detection matrix and the paper's security claims",
    parameters=(
        ExperimentParameter("parallelism", int, 1, "campaign scheduler worker count"),
        ExperimentParameter(
            "backend", str, "virtual", "campaign execution tier: virtual or process"
        ),
        ExperimentParameter(
            "workers", int, 0, "uniform worker-count knob (0 = use parallelism)"
        ),
    ),
    smoke_params={"parallelism": 8},
)
experiments.register(
    "nscaling",
    f"{_EXPERIMENTS}.nscaling:experiment",
    description=(
        "N-scaling sweep: uid_orbit_spec(n) and address_orbit_spec(n) over a "
        "variant-count range, detection guarantee and lockstep cost vs N"
    ),
    parameters=(
        ExperimentParameter("min_variants", int, 2, "smallest variant count swept"),
        ExperimentParameter("max_variants", int, 6, "largest variant count swept"),
        ExperimentParameter("requests", int, 12, "benign requests per configuration"),
        ExperimentParameter("parallelism", int, 4, "campaign scheduler worker count"),
    ),
    smoke_params={"min_variants": 2, "max_variants": 3, "requests": 6, "parallelism": 4},
)
experiments.register(
    "entropy",
    f"{_EXPERIMENTS}.entropy:experiment",
    description=(
        "Key entropy vs probes-to-first-alarm: brute-force attacker strategies "
        "against keyed fleets, plus the keyed-UID deterministic-detection control"
    ),
    parameters=(
        ExperimentParameter("min_variants", int, 2, "smallest variant count swept"),
        ExperimentParameter("max_variants", int, 4, "largest variant count swept"),
        ExperimentParameter("min_key_bits", int, 2, "smallest key entropy swept"),
        ExperimentParameter("max_key_bits", int, 6, "largest key entropy swept"),
        ExperimentParameter("trials", int, 20, "independent keyed games per cell"),
        ExperimentParameter("seed", int, 20080625, "root seed every draw derives from"),
        ExperimentParameter(
            "backend", str, "virtual", "campaign execution tier: virtual or process"
        ),
        ExperimentParameter("workers", int, 4, "campaign scheduler worker count"),
    ),
    smoke_params={"max_variants": 3, "max_key_bits": 4, "trials": 20},
)
experiments.register(
    "corpus",
    f"{_EXPERIMENTS}.corpus:experiment",
    description=(
        "Generated scenario corpus vs the analytic guarantee: seeded mutation "
        "matrix over scheme x N x mutation class, graded on both backends"
    ),
    parameters=(
        ExperimentParameter("records", int, 240, "corpus size after trimming"),
        ExperimentParameter("seed", int, 20080625, "root seed the generator derives from"),
        ExperimentParameter(
            "backend", str, "both", "execution tier: virtual, process, or both"
        ),
        ExperimentParameter("workers", int, 8, "scheduler/pool worker count"),
        ExperimentParameter(
            "corpus_dir", str, "", "load a written corpus instead of generating"
        ),
    ),
    smoke_params={"records": 60, "workers": 4},
)
experiments.register(
    "apps",
    f"{_EXPERIMENTS}.apps:experiment",
    description=(
        "Cross-app generalisation: the detection matrix and benign workload "
        "sweeps on httpd and ftpd under stacked fd+address+uid orbit "
        "diversity at N in {2,3}, per campaign backend"
    ),
    parameters=(
        ExperimentParameter(
            "backend", str, "both", "execution tier: virtual, process, or both"
        ),
        ExperimentParameter("workers", int, 4, "campaign worker count per backend"),
        ExperimentParameter(
            "requests", int, 16, "benign requests per workload configuration"
        ),
    ),
    smoke_params={"backend": "virtual", "requests": 8},
)
experiments.register(
    "loadtest",
    f"{_EXPERIMENTS}.loadtest:experiment",
    description=(
        "Open-loop load: seeded arrival processes x admission policies x N "
        "with sojourn percentiles, graceful-overload claims, and a session "
        "checkpoint/migration parity pair, per campaign backend"
    ),
    parameters=(
        ExperimentParameter(
            "backend", str, "both", "execution tier: virtual, process, or both"
        ),
        ExperimentParameter("workers", int, 4, "process-pool worker count"),
        ExperimentParameter("requests", int, 24, "benign requests per sweep cell"),
        ExperimentParameter(
            "rate_steps", int, 4, "offered-load multipliers swept (prefix of 0.5/1/2/4x)"
        ),
        ExperimentParameter("max_variants", int, 3, "largest variant count swept"),
        ExperimentParameter(
            "capacity", int, 3, "bounded-queue depth and token-bucket burst"
        ),
        ExperimentParameter("seed", int, 20080625, "root seed every cell derives from"),
    ),
    smoke_params={
        "backend": "virtual",
        "requests": 12,
        "rate_steps": 3,
        "max_variants": 2,
    },
)
experiments.register(
    "ablations",
    f"{_EXPERIMENTS}.ablations:experiment",
    description="Design-choice ablations: detection calls, reexpression mask, unshared files",
    parameters=(
        ExperimentParameter(
            "user_space_uses", int, 5, "UID uses between corruption and kernel call"
        ),
        ExperimentParameter("requests", int, 4, "benign requests in the mask ablation"),
    ),
    smoke_params={"user_space_uses": 3, "requests": 2},
)
