"""Deterministic seed derivation for keyed schemes and randomized runs.

One user-facing ``--seed`` must pin *every* random draw in a run, and it must
pin them identically whether the run executes in-process (virtual backend) or
in forked workers (process backend).  Python's builtin ``hash()`` is
per-process salted and :mod:`random` module-global state is shared mutable
state, so neither can carry reproducibility across a process boundary.
Instead every consumer gets its *own* :class:`random.Random` seeded by a
value derived here: a SHA-256 of the root seed plus a stable label path.
Derivation is pure arithmetic on the payload the backends already ship
(spec name, variation position, variation name), so a seeded campaign is
byte-identical on both backends by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

from repro.api.spec import SystemSpec, VariationSpec

#: Separator for label paths; never appears in spec or variation names.
_SEP = "\x1f"


def derive_seed(root: int, *labels: object) -> int:
    """A stable 63-bit child seed from *root* and a label path.

    ``derive_seed(seed, "cell-3", 0, "address-keyed")`` is the same integer
    in every process on every platform -- it is a SHA-256 prefix, not a
    salted ``hash()`` -- and distinct label paths give independent seeds.
    """
    material = _SEP.join([str(int(root)), *(str(label) for label in labels)])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seeded_spec(spec: SystemSpec, seed: Optional[int]) -> SystemSpec:
    """Pin every seedable variation in *spec* to a seed derived from *seed*.

    A variation is seedable when its registered factory accepts a ``seed``
    keyword (the keyed variations).  Variations whose params already carry an
    explicit ``seed`` are left alone -- the spec author pinned them on
    purpose.  With ``seed=None`` the spec is returned unchanged, preserving
    the fresh-key-per-build deployment semantics.
    """
    if seed is None:
        return spec
    # Imported here: repro.api.registry imports the variation classes, and
    # keeping spec/seeding importable without the registry avoids cycles.
    from repro.api.registry import registry

    rewritten = []
    changed = False
    for position, variation in enumerate(spec.variations):
        try:
            accepts = "seed" in registry.get(variation.name).parameters()
        except Exception:
            accepts = False
        params = variation.params_dict()
        if not accepts or "seed" in params:
            rewritten.append(variation)
            continue
        params["seed"] = derive_seed(seed, spec.name, position, variation.name)
        rewritten.append(VariationSpec(name=variation.name, params=params))
        changed = True
    if not changed:
        return spec
    return dataclasses.replace(spec, variations=tuple(rewritten))
