"""Frozen, JSON-round-trippable scenario specifications.

The paper's argument is a cross product -- attacks x variation configurations
x fleet shapes -- and these dataclasses are the repository's single vocabulary
for one point of that product:

* :class:`VariationSpec` -- one variation by registry name plus parameters.
* :class:`SystemSpec` -- one N-variant system: N, the variation stack, the
  transformed-build flag and the monitor's halt policy.
* :class:`WorkloadSpec` -- the WebBench-style workload shape.
* :class:`FleetSpec` -- M concurrent sessions of one system under a workload,
  with the engine-level halt policy.
* :class:`ExperimentSpec` -- one named experiment from the experiment
  registry plus its typed parameters (see :mod:`repro.api.experiments`).

Every spec is frozen (hashable, safe as a dict key or default argument) and
round-trips through ``to_dict``/``from_dict`` and ``to_json``/``from_json``,
so a scenario is *data*: the CLI (``python -m repro run scenario.json``), the
campaign runner and the benchmarks all consume the same representation.
``from_dict`` rejects unknown keys, which is what makes a typo in a scenario
file an error instead of a silently ignored setting.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Union

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _canonical_params(params: Any, *, what: str = "variation") -> tuple[tuple[str, Any], ...]:
    """Normalise a parameter mapping into a sorted, hashable tuple of pairs."""
    if params is None:
        return ()
    items = dict(params).items()
    canonical = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise TypeError(f"{what} parameter names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"{what} parameter {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
        canonical.append((key, value))
    return tuple(canonical)


def _require_known_keys(data: Mapping[str, Any], known: frozenset[str], what: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} keys: {', '.join(unknown)}; expected a subset of "
            f"{', '.join(sorted(known))}"
        )


@dataclasses.dataclass(frozen=True)
class VariationSpec:
    """One variation, named for the registry, with its factory parameters."""

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Accept a mapping (the natural call-site spelling) and canonicalize
        # to a sorted tuple of pairs so the spec stays frozen and hashable.
        object.__setattr__(self, "params", _canonical_params(self.params))

    @classmethod
    def of(cls, name: str, **params: Any) -> "VariationSpec":
        """Keyword-argument construction sugar: ``VariationSpec.of("uid", mask=...)``."""
        return cls(name=name, params=params)  # type: ignore[arg-type]

    @classmethod
    def from_value(cls, value: Union[str, Mapping[str, Any], "VariationSpec"]) -> "VariationSpec":
        """Coerce a JSON-level value (bare name or dict) into a spec."""
        if isinstance(value, VariationSpec):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            _require_known_keys(value, frozenset({"name", "params"}), "variation spec")
            if "name" not in value:
                raise ValueError(f"variation spec needs a 'name': {dict(value)!r}")
            return cls(name=value["name"], params=value.get("params") or ())
        raise TypeError(f"cannot build a VariationSpec from {value!r}")

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict (what the factory receives)."""
        return dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (bare params omitted when empty)."""
        data: dict[str, Any] = {"name": self.name}
        if self.params:
            data["params"] = self.params_dict()
        return data


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment, by name, with its run parameters.

    The mirror of :class:`VariationSpec` one layer up: where a variation spec
    names an entry in the variation registry, an experiment spec names an
    entry in :data:`repro.api.experiments.experiments`.  Parameters are JSON
    scalars only and are canonicalized to a sorted tuple of pairs, so specs
    are frozen, hashable and order-insensitive.  Which parameter names (and
    types) are legal for a given experiment is enforced by the registry at
    run time, not here -- the spec is pure data.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _canonical_params(self.params, what="experiment"))

    @classmethod
    def of(cls, name: str, **params: Any) -> "ExperimentSpec":
        """Keyword construction sugar: ``ExperimentSpec.of("table3", requests=20)``."""
        return cls(name=name, params=params)  # type: ignore[arg-type]

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict (what the experiment runner receives)."""
        return dict(self.params)

    # -- serialisation ---------------------------------------------------------

    _KEYS = frozenset({"name", "params"})

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (bare params omitted when empty)."""
        data: dict[str, Any] = {"name": self.name}
        if self.params:
            data["params"] = self.params_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        _require_known_keys(data, cls._KEYS, "experiment spec")
        if "name" not in data:
            raise ValueError(f"experiment spec needs a 'name': {dict(data)!r}")
        return cls(name=data["name"], params=data.get("params") or ())

    def to_json(self, *, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass(frozen=True)
class SystemSpec:
    """One N-variant system, declaratively.

    ``num_variants=1`` with no variations describes the undefended
    single-process deployment the detection matrix compares against;
    :attr:`redundant` is derived, never stored.  ``halt_on_alarm`` is the
    monitor policy (the paper halts the system at the first divergence), and
    ``transformed`` says whether the program runs the Section 3.3
    source-transformed build -- required whenever the stack contains the UID
    variation, since the untransformed build diverges on benign traffic.
    """

    name: str = "nvariant"
    num_variants: int = 2
    variations: tuple[VariationSpec, ...] = ()
    transformed: bool = True
    halt_on_alarm: bool = True
    max_rounds: int = 2_000_000
    interposition: str = "classic"

    def __post_init__(self) -> None:
        if self.num_variants < 1:
            raise ValueError(f"num_variants must be >= 1, got {self.num_variants}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if not isinstance(self.interposition, str) or not self.interposition:
            raise ValueError(
                f"interposition must be a non-empty table name, got {self.interposition!r}"
            )
        object.__setattr__(
            self,
            "variations",
            tuple(VariationSpec.from_value(value) for value in self.variations),
        )

    @property
    def redundant(self) -> bool:
        """True for an actual N-variant system (N >= 2)."""
        return self.num_variants >= 2

    def with_name(self, name: str) -> "SystemSpec":
        """The same system under a different configuration name."""
        return dataclasses.replace(self, name=name)

    # -- serialisation ---------------------------------------------------------

    _KEYS = frozenset(
        {
            "name",
            "num_variants",
            "variations",
            "transformed",
            "halt_on_alarm",
            "max_rounds",
            "interposition",
        }
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation.

        The interposition table is emitted only when it differs from the
        default ``"classic"``, so existing scenario files, corpus records
        and benchmark payloads keep their exact historical shape.
        """
        data = {
            "name": self.name,
            "num_variants": self.num_variants,
            "variations": [v.to_dict() for v in self.variations],
            "transformed": self.transformed,
            "halt_on_alarm": self.halt_on_alarm,
            "max_rounds": self.max_rounds,
        }
        if self.interposition != "classic":
            data["interposition"] = self.interposition
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        _require_known_keys(data, cls._KEYS, "system spec")
        kwargs = dict(data)
        if "variations" in kwargs:
            kwargs["variations"] = tuple(
                VariationSpec.from_value(value) for value in kwargs["variations"]
            )
        return cls(**kwargs)

    def to_json(self, *, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """The WebBench-style workload shape driven at a system or fleet."""

    total_requests: int = 50
    requests_per_connection: int = 1
    client_engines: int = 1
    client_machines: int = 1

    def __post_init__(self) -> None:
        if self.total_requests < 1:
            raise ValueError(f"total_requests must be >= 1, got {self.total_requests}")
        if self.requests_per_connection < 1:
            raise ValueError(
                f"requests_per_connection must be >= 1, got {self.requests_per_connection}"
            )

    _KEYS = frozenset(
        {"total_requests", "requests_per_connection", "client_engines", "client_machines"}
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        _require_known_keys(data, cls._KEYS, "workload spec")
        return cls(**data)


#: Engine halt policies expressible in a fleet spec (values of
#: :class:`repro.engine.scheduler.HaltPolicy`).
FLEET_HALT_POLICIES = ("per-session", "halt-all")


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """M concurrent sessions of one system, with workload and halt policy."""

    system: SystemSpec = SystemSpec()
    num_sessions: int = 1
    halt_policy: str = "per-session"
    workload: WorkloadSpec = WorkloadSpec()
    multiplex: int = 1
    name: str = "engine"

    def __post_init__(self) -> None:
        if isinstance(self.system, Mapping):
            object.__setattr__(self, "system", SystemSpec.from_dict(self.system))
        if isinstance(self.workload, Mapping):
            object.__setattr__(self, "workload", WorkloadSpec.from_dict(self.workload))
        if self.num_sessions < 1:
            raise ValueError(f"num_sessions must be >= 1, got {self.num_sessions}")
        if self.multiplex < 1:
            raise ValueError(f"multiplex must be >= 1, got {self.multiplex}")
        if self.halt_policy not in FLEET_HALT_POLICIES:
            raise ValueError(
                f"halt_policy must be one of {FLEET_HALT_POLICIES}, got {self.halt_policy!r}"
            )

    _KEYS = frozenset(
        {"system", "num_sessions", "halt_policy", "workload", "multiplex", "name"}
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "system": self.system.to_dict(),
            "num_sessions": self.num_sessions,
            "halt_policy": self.halt_policy,
            "workload": self.workload.to_dict(),
            "multiplex": self.multiplex,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        _require_known_keys(data, cls._KEYS, "fleet spec")
        return cls(**data)

    def to_json(self, *, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# The standard configurations of the paper's narrative
# ---------------------------------------------------------------------------

#: Configuration 1: the undefended single-process server.
SINGLE_PROCESS_SPEC = SystemSpec(name="single-process", num_variants=1, transformed=False)

#: The address-partitioning baseline (the original N-variant systems work).
ADDRESS_PARTITIONING_SPEC = SystemSpec(
    name="2-variant-address", variations=(VariationSpec("address"),), transformed=False
)

#: The paper's UID data-diversity system.
UID_DIVERSITY_SPEC = SystemSpec(
    name="2-variant-uid", variations=(VariationSpec("uid"),), transformed=True
)

#: UID diversity layered on the partitioned baseline (Table 3's config 4).
ADDRESS_UID_SPEC = SystemSpec(
    name="2-variant-address+uid",
    variations=(VariationSpec("address"), VariationSpec("uid")),
    transformed=True,
)

#: The N-way sweep entry: three variants, each with its own UID mask.
UID_ORBIT_3_SPEC = SystemSpec(
    name="3-variant-uid-orbit",
    num_variants=3,
    variations=(VariationSpec("uid-orbit"),),
    transformed=True,
)

#: The address-side orbit: three variants in disjoint top-bits partitions.
ADDRESS_ORBIT_3_SPEC = SystemSpec(
    name="3-variant-address-orbit",
    num_variants=3,
    variations=(VariationSpec("address-orbit"),),
    transformed=False,
)

#: Both orbit families layered: three variants, each with its own address
#: partition AND its own UID mask -- the N>=3 analogue of Table 3's config 4.
COMBINED_ORBIT_3_SPEC = SystemSpec(
    name="3-variant-address+uid-orbit",
    num_variants=3,
    variations=(VariationSpec("address-orbit"), VariationSpec("uid-orbit")),
    transformed=True,
)

#: The four configurations the detection matrix compares, in narrative order.
STANDARD_SYSTEM_SPECS: tuple[SystemSpec, ...] = (
    SINGLE_PROCESS_SPEC,
    ADDRESS_PARTITIONING_SPEC,
    UID_DIVERSITY_SPEC,
    ADDRESS_UID_SPEC,
)


def uid_orbit_spec(num_variants: int) -> SystemSpec:
    """The N-variant UID-orbit configuration (variant count as a sweep axis)."""
    return SystemSpec(
        name=f"{num_variants}-variant-uid-orbit",
        num_variants=num_variants,
        variations=(VariationSpec("uid-orbit"),),
        transformed=True,
    )


def address_orbit_spec(num_variants: int) -> SystemSpec:
    """The N-variant address-orbit configuration (the sweep's address axis)."""
    return SystemSpec(
        name=f"{num_variants}-variant-address-orbit",
        num_variants=num_variants,
        variations=(VariationSpec("address-orbit"),),
        transformed=False,
    )


def combined_orbit_spec(num_variants: int) -> SystemSpec:
    """Both orbit families layered at N variants (address slices + UID masks)."""
    return SystemSpec(
        name=f"{num_variants}-variant-address+uid-orbit",
        num_variants=num_variants,
        variations=(VariationSpec("address-orbit"), VariationSpec("uid-orbit")),
        transformed=True,
    )


def keyed_address_spec(
    num_variants: int,
    *,
    key_bits: int = 8,
    seed: "int | None" = None,
    slide: bool = True,
) -> SystemSpec:
    """A keyed-ASLR fleet: secret slice layout drawn from *key_bits* of entropy.

    Passing *seed* pins the key (reproducible experiments); leaving it ``None``
    draws a fresh secret per build, which is the deployment semantics.
    ``slide=False`` drops the secret intra-slice slides, leaving the pure
    slice-assignment game the entropy experiment's analytic model covers.
    """
    params: dict = {"key_bits": key_bits, "slide": slide}
    if seed is not None:
        params["seed"] = seed
    kind = "keyed-address" if slide else "keyed-orbit"
    return SystemSpec(
        name=f"{num_variants}-variant-{kind}-k{key_bits}",
        num_variants=num_variants,
        variations=(VariationSpec("address-keyed", params),),
        transformed=False,
    )


def keyed_uid_spec(
    num_variants: int, *, key_bits: int = 16, seed: "int | None" = None
) -> SystemSpec:
    """A keyed-UID fleet: secret pairwise-distinct masks from *key_bits* bits."""
    params: dict = {"key_bits": key_bits}
    if seed is not None:
        params["seed"] = seed
    return SystemSpec(
        name=f"{num_variants}-variant-keyed-uid-k{key_bits}",
        num_variants=num_variants,
        variations=(VariationSpec("uid-keyed", params),),
        transformed=True,
    )
