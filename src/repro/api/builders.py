"""The construction path from declarative specs to runnable systems.

These builders are the *only* supported way the repository's consumers
(attacks, experiments, benchmarks, apps, examples, CLI) construct N-variant
machinery; direct :class:`~repro.core.nvariant.NVariantSystem` wiring remains
available solely as the deprecated single-session facade.  Centralising
construction here means every layer speaks :class:`~repro.api.spec.SystemSpec`
/ :class:`~repro.api.spec.FleetSpec`, and a new variation registered in the
:mod:`~repro.api.registry` becomes usable everywhere without touching any
call site.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.api.registry import VariationRegistry, registry as default_registry
from repro.api.spec import FleetSpec, SystemSpec
from repro.core.nvariant import NVariantSystem, Program, VariantContext
from repro.core.variations.base import Variation
from repro.engine.scheduler import HaltPolicy, MultiSessionEngine
from repro.engine.session import NVariantSession
from repro.kernel.kernel import SimulatedKernel

ProgramFactory = Callable[[VariantContext], Program]


def build_variations(
    spec: SystemSpec, *, registry: Optional[VariationRegistry] = None
) -> list[Variation]:
    """Instantiate the spec's variation stack, fresh instances every call.

    Freshness matters: two sessions built from the same spec must never share
    variation objects (unshared-file setup and per-variant state are
    per-session), which is exactly why specs carry names instead of instances.

    The spec's ``num_variants`` is forwarded to every factory that accepts a
    ``num_variants`` parameter (unless the spec's params pin it explicitly),
    so N-way variations like the UID orbit follow the system's variant count
    without the spec having to repeat it per variation.
    """
    resolver = registry if registry is not None else default_registry
    variations = []
    for v in spec.variations:
        params = v.params_dict()
        entry = resolver.get(v.name)
        if "num_variants" not in params and "num_variants" in entry.parameters():
            params["num_variants"] = spec.num_variants
        variations.append(resolver.create(v.name, params))
    return variations


def build_session(
    spec: SystemSpec,
    kernel: SimulatedKernel,
    program_factory: ProgramFactory,
    *,
    name: Optional[str] = None,
    registry: Optional[VariationRegistry] = None,
) -> NVariantSession:
    """Build one resumable lockstep session from a spec.

    The spec is stamped onto the session (``session.spec``) so downstream
    consumers that must rebuild an equivalent session -- checkpoint/migration
    in :mod:`repro.load.checkpoint` -- can serialize the construction recipe
    instead of live objects.
    """
    session = NVariantSession(
        kernel,
        program_factory,
        build_variations(spec, registry=registry),
        num_variants=spec.num_variants,
        halt_on_alarm=spec.halt_on_alarm,
        max_rounds=spec.max_rounds,
        name=name if name is not None else spec.name,
        interposition=spec.interposition,
    )
    session.spec = spec
    return session


def build_system(
    spec: SystemSpec,
    kernel: SimulatedKernel,
    program_factory: ProgramFactory,
    *,
    name: Optional[str] = None,
    registry: Optional[VariationRegistry] = None,
) -> NVariantSystem:
    """Build a run-to-completion N-variant system (the M=1 facade) from a spec."""
    return NVariantSystem(
        kernel,
        program_factory,
        build_variations(spec, registry=registry),
        num_variants=spec.num_variants,
        halt_on_alarm=spec.halt_on_alarm,
        max_rounds=spec.max_rounds,
        name=name if name is not None else spec.name,
        interposition=spec.interposition,
    )


def build_engine(
    spec: FleetSpec, sessions: Iterable[NVariantSession] = ()
) -> MultiSessionEngine:
    """Build the cooperative multi-session engine a fleet spec describes.

    *sessions* are typically produced by :func:`build_session` once per shard
    (see :func:`repro.apps.clients.webbench.drive_engine` for the standard
    httpd fleet); the engine only needs the fleet-level policy from the spec.
    """
    return MultiSessionEngine(
        sessions,
        halt_policy=HaltPolicy(spec.halt_policy),
        name=spec.name,
    )
