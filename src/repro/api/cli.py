"""``python -m repro``: run JSON scenarios and registered experiments.

A scenario file is data, not code::

    {
      "scenario": "campaign",                    // or "detection-matrix"
      "systems": [ ...SystemSpec dicts... ],     // default: the standard four
      "attacks": ["full-word-root-overwrite"],   // default: every standard attack
      "app": "ftpd",                             // serving app (default: httpd)
      "parallelism": 8,                          // engine worker count
      "rounds_per_turn": 8,                      // lockstep rounds per turn
      "halt": "per-cell",                        // or "halt-campaign"
      "backend": "process",                      // or "virtual" (the default)
      "workers": 4,                              // worker count on either backend
      "seed": 1234                               // root seed for keyed variations
    }

    {
      "scenario": "throughput",
      "fleet": { ...FleetSpec dict... },
      "output": "text"                           // or "json" or "markdown"
    }

    {
      "scenario": "experiment",                  // any registered experiment
      "experiment": "table3",
      "params": {"requests": 20}
    }

The ``experiment`` kind is generic: every entry in the experiment registry --
the paper's tables and figures, the detection matrix, the ablation suite, and
anything registered later -- gets a JSON scenario without a new CLI branch.
``detection-matrix`` and ``campaign`` share one data-driven campaign handler
(the former is the latter without scheduler knobs).

Commands: ``repro run scenario.json`` executes one scenario file
(``--parallelism N`` overrides the campaign worker count from the shell);
``repro experiment <name> [--set k=v] [--json] [--smoke]`` runs one
registered experiment directly; ``repro experiments`` and ``repro
variations`` list the registries a scenario may name.  Problems (unknown
keys, unknown experiment/variation/attack names, bad parameters) are
reported as errors with the known alternatives, not tracebacks.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.api.campaign import (
    CAMPAIGN_BACKENDS,
    CampaignReport,
    attacks_by_name,
    run_campaign,
)
from repro.api.experiments import ExperimentRegistryError, experiments
from repro.api.registry import VariationRegistryError, registry
from repro.apps.catalog import UnknownAppError, get_app
from repro.corpus.records import CorpusError
from repro.interpose import InterpositionError
from repro.load import LoadError, run_loadtest
from repro.api.spec import (
    ExperimentSpec,
    FleetSpec,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
    uid_orbit_spec,
)
from repro.engine.campaign import CampaignHaltPolicy
from repro.engine.procpool import WorkerError

#: Output formats the campaign/throughput scenario kinds support.
OUTPUT_FORMATS = ("text", "json")

#: Output formats the experiment scenario kind supports (report renderers).
EXPERIMENT_OUTPUT_FORMATS = ("text", "json", "markdown")


class ScenarioError(ValueError):
    """A scenario file could not be understood or resolved."""


# ---------------------------------------------------------------------------
# Scenario loading
# ---------------------------------------------------------------------------


def load_scenario(path: Path) -> dict[str, Any]:
    """Read and minimally validate a scenario file."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ScenarioError(f"scenario file {path} is not valid UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        # str(exc) carries "line L column C (char N)" -- keep it verbatim.
        raise ScenarioError(f"scenario file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ScenarioError(f"scenario file {path} must hold a JSON object")
    if "scenario" not in data:
        raise ScenarioError(f"scenario file {path} needs a 'scenario' key")
    return dict(data)


def _resolve_output(
    data: Mapping[str, Any],
    override: Optional[str],
    allowed: Sequence[str] = OUTPUT_FORMATS,
) -> str:
    output = override if override is not None else data.get("output", "text")
    if output not in allowed:
        raise ScenarioError(
            f"output must be one of {', '.join(allowed)}, got {output!r}"
        )
    return output


def _resolve_systems(data: Mapping[str, Any]) -> list[SystemSpec]:
    if "systems" not in data:
        return list(STANDARD_SYSTEM_SPECS)
    try:
        specs = [SystemSpec.from_dict(entry) for entry in data["systems"]]
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"bad system spec in scenario: {exc}") from exc
    if not specs:
        raise ScenarioError("'systems' must name at least one system spec")
    return specs


def _resolve_app(data: Mapping[str, Any]) -> str:
    """The serving app whose wire format carries the campaign's attacks."""
    app = data.get("app", "httpd")
    if not isinstance(app, str):
        raise ScenarioError(f"app must be a string, got {app!r}")
    get_app(app)  # unknown names raise UnknownAppError listing the registry
    return app


def _resolve_attacks(data: Mapping[str, Any], app: str = "httpd") -> Optional[list]:
    known = attacks_by_name(app)
    if "attacks" not in data:
        # The full standard suite, rendered on the selected app's wire format.
        return list(known.values())
    selected = []
    for name in data["attacks"]:
        if name not in known:
            raise ScenarioError(
                f"unknown attack {name!r}; known attacks: {', '.join(sorted(known))}"
            )
        selected.append(known[name])
    if not selected:
        raise ScenarioError("'attacks' must name at least one attack")
    return selected


def _resolve_positive_int(data: Mapping[str, Any], key: str, default: int) -> int:
    value = data.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ScenarioError(f"{key} must be a positive integer, got {value!r}")
    return value


def _resolve_seed(data: Mapping[str, Any]) -> Optional[int]:
    """The campaign root seed: any integer, or absent (fresh randomness)."""
    value = data.get("seed")
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ScenarioError(f"seed must be an integer, got {value!r}")
    return value


def _resolve_backend(data: Mapping[str, Any]) -> str:
    backend = data.get("backend", "virtual")
    if backend not in CAMPAIGN_BACKENDS:
        raise ScenarioError(
            f"backend must be one of {', '.join(CAMPAIGN_BACKENDS)}, got {backend!r}"
        )
    return backend


def _finite_or_none(value: float) -> Optional[float]:
    """NaN (an unmeasured metric) has no JSON spelling; emit null instead."""
    return value if isinstance(value, (int, float)) and math.isfinite(value) else None


# ---------------------------------------------------------------------------
# Scenario kinds
# ---------------------------------------------------------------------------


def _format_matrix_text(report: CampaignReport, specs: Sequence[SystemSpec]) -> str:
    from repro.analysis.tables import render_table

    matrix = report.matrix()
    configurations = [spec.name for spec in specs]
    rows = [
        [attack] + [matrix[attack].get(configuration, "-") for configuration in configurations]
        for attack in matrix
    ]
    table = render_table(["attack"] + configurations, rows, title="Detection matrix")
    lines = [table, ""]
    for configuration in configurations:
        rate = report.detection_rate(configuration)
        lines.append(f"  {configuration:24s} {rate * 100:5.1f}% of attacks detected")
    lines.append("")
    lines.append(f"undetected compromises: {len(report.security_failures())}")
    return "\n".join(lines)


def _run_throughput(data: Mapping[str, Any], output: str) -> tuple[int, str]:
    from repro.apps.clients.webbench import drive_engine

    if "fleet" not in data:
        raise ScenarioError("throughput scenarios need a 'fleet' spec")
    try:
        fleet = FleetSpec.from_dict(data["fleet"])
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"bad fleet spec in scenario: {exc}") from exc
    measurement = drive_engine(fleet)
    if output == "json":
        payload = {
            "scenario": "throughput",
            "fleet": fleet.to_dict(),
            "requests_sent": measurement.requests_sent,
            "requests_completed": measurement.requests_completed,
            "alarms": measurement.alarms,
            "virtual_elapsed": measurement.virtual_elapsed,
            "virtual_elapsed_sequential": measurement.virtual_elapsed_sequential,
            "requests_per_kilotick": _finite_or_none(measurement.requests_per_kilotick()),
            "speedup": _finite_or_none(measurement.speedup()),
        }
        return 0, json.dumps(payload, indent=2)
    lines = [
        f"fleet: {fleet.name} ({fleet.num_sessions} sessions x "
        f"{fleet.system.num_variants} variants, halt policy {fleet.halt_policy})",
        f"requests: {measurement.requests_completed}/{measurement.requests_sent} completed, "
        f"{measurement.alarms} alarms",
        f"virtual elapsed: {measurement.virtual_elapsed} ticks concurrent, "
        f"{measurement.virtual_elapsed_sequential} sequential",
        f"throughput: {measurement.requests_per_kilotick():.2f} req/ktick "
        f"({measurement.speedup():.2f}x over sequential)",
    ]
    return 0, "\n".join(lines)


def _run_campaign_scenario(
    data: Mapping[str, Any], output: str, *, kind: str
) -> tuple[int, str]:
    """The shared attacks-x-systems campaign handler.

    ``detection-matrix`` is the scheduler-knob-free subset of ``campaign``:
    both expand the same cross product through :func:`run_campaign`; only the
    campaign kind accepts (and reports) the engine scheduler's configuration.
    """
    specs = _resolve_systems(data)
    attacks = _resolve_attacks(data, _resolve_app(data))
    with_execution = kind == "campaign"
    rounds_per_turn = _resolve_positive_int(data, "rounds_per_turn", 8)
    halt = data.get("halt", CampaignHaltPolicy.PER_CELL.value)
    try:
        halt_policy = CampaignHaltPolicy(halt)
    except ValueError:
        raise ScenarioError(
            f"halt must be one of {', '.join(p.value for p in CampaignHaltPolicy)}, "
            f"got {halt!r}"
        ) from None
    backend = _resolve_backend(data) if with_execution else "virtual"
    workers = (
        _resolve_positive_int(data, "workers", 0) if data.get("workers") is not None else None
    )
    report = run_campaign(
        specs,
        attacks,
        parallelism=_resolve_positive_int(data, "parallelism", 1),
        rounds_per_turn=rounds_per_turn,
        halt=halt_policy,
        backend=backend,
        workers=workers,
        seed=_resolve_seed(data) if with_execution else None,
    )
    execution = report.execution
    if output == "json":
        payload = {
            "scenario": kind,
            "systems": [spec.to_dict() for spec in specs],
            "matrix": report.matrix(),
            "detection_rates": {
                spec.name: report.detection_rate(spec.name) for spec in specs
            },
            "undetected_compromises": [
                {"attack": o.attack, "configuration": o.configuration}
                for o in report.security_failures()
            ],
        }
        if with_execution:
            payload["execution"] = {
                "backend": execution.backend,
                "parallelism": execution.parallelism,
                "rounds_per_turn": execution.rounds_per_turn,
                "jobs": len(execution.jobs),
                "skipped_jobs": len(execution.skipped_jobs),
                "truncated_jobs": len(execution.truncated_jobs),
                "scheduler_turns": execution.scheduler_turns,
                "virtual_elapsed": execution.virtual_elapsed,
                "virtual_elapsed_sequential": execution.virtual_elapsed_sequential,
                "speedup": _finite_or_none(execution.speedup()),
                "max_wait_turns": execution.max_wait_turns,
                "steals": execution.steals,
            }
        return 0, json.dumps(payload, indent=2)
    lines = [_format_matrix_text(report, specs)]
    if with_execution:
        lines.extend(
            [
                "",
                f"execution: {len(execution.jobs)} cells on {execution.parallelism} "
                f"{execution.backend} workers "
                f"({execution.rounds_per_turn} rounds/turn, {execution.scheduler_turns} turns)",
                f"virtual elapsed: {execution.virtual_elapsed} ticks concurrent, "
                f"{execution.virtual_elapsed_sequential} sequential "
                f"({execution.speedup():.2f}x)",
            ]
        )
        if execution.skipped_jobs or execution.truncated_jobs:
            lines.append(
                f"campaign halted: {len(execution.truncated_jobs)} cells truncated, "
                f"{len(execution.skipped_jobs)} skipped (neither counts as an outcome)"
            )
    return 0, "\n".join(lines)


def _resolve_experiment_spec(data: Mapping[str, Any]) -> ExperimentSpec:
    if "experiment" not in data:
        raise ScenarioError(
            "experiment scenarios need an 'experiment' key naming a registered "
            f"experiment ({', '.join(experiments.names())})"
        )
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ScenarioError(f"'params' must be a JSON object, got {params!r}")
    try:
        return ExperimentSpec.from_dict({"name": data["experiment"], "params": dict(params)})
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"bad experiment spec in scenario: {exc}") from exc


def _render_experiment_report(report, output: str) -> tuple[int, str]:
    """Render a finished experiment report; claims gate the exit code."""
    exit_code = 0 if report.ok else 1
    if output == "json":
        return exit_code, report.to_json()
    return exit_code, report.format(style=output)


def _run_experiment_scenario(data: Mapping[str, Any], output: str) -> tuple[int, str]:
    spec = _resolve_experiment_spec(data)
    report = experiments.run(spec)
    return _render_experiment_report(report, output)


def _run_loadtest_scenario(data: Mapping[str, Any], output: str) -> tuple[int, str]:
    """One open-loop load run: arrivals x admission against a serving system.

    Unknown arrival-process or admission-policy names raise the load
    subsystem's registry errors, which ``main`` renders as exit-2 ``error:``
    lines listing the registered names -- same contract as the interposition
    tables and the app catalog.
    """
    if "system" in data:
        try:
            spec = SystemSpec.from_dict(data["system"])
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"bad system spec in scenario: {exc}") from exc
    else:
        spec = uid_orbit_spec(2)
    rate = data.get("rate", 8.0)
    if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate <= 0:
        raise ScenarioError(f"rate must be a positive number, got {rate!r}")
    for key in ("arrival_params", "admission_params"):
        if key in data and not isinstance(data[key], Mapping):
            raise ScenarioError(f"'{key}' must be a JSON object, got {data[key]!r}")
    attacks = data.get("attacks", ())
    if not isinstance(attacks, Sequence) or isinstance(attacks, (str, bytes)):
        raise ScenarioError(f"'attacks' must be a list of attack kinds, got {attacks!r}")
    migrate_after = data.get("migrate_after")
    if migrate_after is not None and (
        not isinstance(migrate_after, int)
        or isinstance(migrate_after, bool)
        or migrate_after < 0
    ):
        raise ScenarioError(
            f"migrate_after must be a non-negative integer, got {migrate_after!r}"
        )
    result = run_loadtest(
        spec,
        app=_resolve_app(data),
        arrival=data.get("arrival", "poisson"),
        rate=float(rate),
        requests=_resolve_positive_int(data, "requests", 16),
        admission=data.get("admission", "accept-all"),
        admission_params=data.get("admission_params"),
        arrival_params=data.get("arrival_params"),
        seed=_resolve_seed(data),
        attacks=tuple(attacks),
        migrate_after=migrate_after,
    )
    if output == "json":
        return 0, json.dumps(
            {"scenario": "loadtest", **result.to_dict()}, indent=2
        )
    latency = result.latency
    lines = [
        f"open-loop load on {result.spec_name} ({result.app}, "
        f"{result.arrival} arrivals at {result.rate:g} req/ktick, "
        f"{result.admission} admission)",
        f"  offered {result.offered}, admitted {result.admitted}, "
        f"shed {result.shed}, completed {result.completed} "
        f"over {result.bursts} service bursts",
        f"  queue high water {result.queue_high_water}, alarms {result.alarms}"
        + (", migrated mid-run" if result.migrated else ""),
        "  sojourn ticks: "
        + ", ".join(
            f"{label} {_finite_or_none(value) if _finite_or_none(value) is not None else 'n/a'}"
            for label, value in (
                ("p50", latency.p50),
                ("p90", latency.p90),
                ("p99", latency.p99),
                ("p99.9", latency.p999),
            )
        ),
    ]
    for outcome in result.attack_outcomes:
        status = (
            "halted"
            if outcome["halted"]
            else "completed" if outcome["completed"] else "shed"
        )
        lines.append(f"  attack {outcome['attack']}: {status}")
    return 0, "\n".join(lines)


#: Runner, the top-level keys the kind accepts ("scenario", "description" and
#: "output" are always allowed), and its legal output formats.
SCENARIO_RUNNERS = {
    "detection-matrix": (
        lambda data, output: _run_campaign_scenario(data, output, kind="detection-matrix"),
        frozenset({"systems", "attacks", "parallelism", "app"}),
        OUTPUT_FORMATS,
    ),
    "throughput": (_run_throughput, frozenset({"fleet"}), OUTPUT_FORMATS),
    "campaign": (
        lambda data, output: _run_campaign_scenario(data, output, kind="campaign"),
        frozenset(
            {"systems", "attacks", "parallelism", "rounds_per_turn", "halt", "backend",
             "workers", "seed", "app"}
        ),
        OUTPUT_FORMATS,
    ),
    "experiment": (
        _run_experiment_scenario,
        frozenset({"experiment", "params"}),
        EXPERIMENT_OUTPUT_FORMATS,
    ),
    "loadtest": (
        _run_loadtest_scenario,
        frozenset(
            {"system", "app", "arrival", "arrival_params", "rate", "requests",
             "admission", "admission_params", "seed", "attacks", "migrate_after"}
        ),
        OUTPUT_FORMATS,
    ),
}

_COMMON_SCENARIO_KEYS = frozenset({"scenario", "description", "output"})


def run_scenario(
    data: Mapping[str, Any],
    *,
    output: Optional[str] = None,
    parallelism: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
) -> tuple[int, str]:
    """Execute one loaded scenario; returns ``(exit_code, rendered output)``."""
    kind = data["scenario"]
    entry = SCENARIO_RUNNERS.get(kind)
    if entry is None:
        raise ScenarioError(
            f"unknown scenario kind {kind!r}; known kinds: "
            f"{', '.join(sorted(SCENARIO_RUNNERS))}"
        )
    runner, kind_keys, output_formats = entry
    allowed = _COMMON_SCENARIO_KEYS | kind_keys
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ScenarioError(
            f"unknown {kind} scenario keys: {', '.join(unknown)}; expected a subset of "
            f"{', '.join(sorted(allowed))}"
        )
    for key, override in (
        ("parallelism", parallelism),
        ("backend", backend),
        ("workers", workers),
    ):
        if override is not None:
            if key not in kind_keys:
                raise ScenarioError(f"{kind} scenarios do not accept --{key}")
            data = {**data, key: override}
    if seed is not None:
        # Campaign scenarios take the root seed at the top level; experiment
        # scenarios pass it through to experiments that declare the parameter
        # (the registry rejects it for those that do not).
        if kind == "experiment":
            data = {**data, "params": {**data.get("params", {}), "seed": seed}}
        elif "seed" in kind_keys:
            data = {**data, "seed": seed}
        else:
            raise ScenarioError(f"{kind} scenarios do not accept --seed")
    resolved_output = _resolve_output(data, output, output_formats)
    return runner(data, resolved_output)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _command_variations() -> int:
    rows = registry.describe()
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        parameters = f" (params: {row['parameters']})" if row["parameters"] else ""
        print(f"  {row['name']:<{width}}  {row['description']}{parameters}")
    return 0


def _command_experiments(*, names_only: bool = False, as_json: bool = False) -> int:
    rows = experiments.describe()
    if names_only:
        for row in rows:
            print(row["name"])
        return 0
    if as_json:
        payload = [
            {
                "name": entry.name,
                "description": entry.description,
                "parameters": [
                    {
                        "name": parameter.name,
                        "type": parameter.kind.__name__,
                        "default": parameter.default,
                        "description": parameter.description,
                    }
                    for parameter in entry.parameters
                ],
                "smoke_params": dict(entry.smoke_params),
            }
            for entry in sorted(experiments, key=lambda e: e.name)
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        parameters = f" (params: {row['parameters']})" if row["parameters"] else ""
        print(f"  {row['name']:<{width}}  {row['description']}{parameters}")
    return 0


def _parse_set_params(assignments: Sequence[str]) -> dict[str, Any]:
    """Parse ``--set key=value`` pairs; values are JSON scalars, else strings."""
    params: dict[str, Any] = {}
    for assignment in assignments:
        key, separator, raw = assignment.partition("=")
        if not separator or not key:
            raise ScenarioError(
                f"--set expects key=value, got {assignment!r}"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[key] = value
    return params


def _command_experiment(arguments) -> int:
    params = _parse_set_params(arguments.set or [])
    # --backend/--workers are flag sugar over --set; experiments that do not
    # declare those parameters reject them with the registry's typed error.
    if getattr(arguments, "backend", None) is not None:
        params.setdefault("backend", arguments.backend)
    if getattr(arguments, "workers", None) is not None:
        params.setdefault("workers", arguments.workers)
    if getattr(arguments, "seed", None) is not None:
        params.setdefault("seed", arguments.seed)
    if getattr(arguments, "corpus_dir", None) is not None:
        params.setdefault("corpus_dir", str(arguments.corpus_dir))
    try:
        if arguments.smoke:
            spec = experiments.smoke_spec(arguments.name)
            if params:
                spec = ExperimentSpec(
                    name=spec.name, params={**spec.params_dict(), **params}
                )
        else:
            spec = ExperimentSpec(name=arguments.name, params=params)
    except (TypeError, ValueError) as exc:
        # e.g. --set with a non-scalar JSON value; keep the no-tracebacks promise.
        raise ScenarioError(f"bad experiment parameters: {exc}") from exc
    report = experiments.run(spec)
    output = "json" if arguments.json else arguments.output
    exit_code, rendered = _render_experiment_report(report, output)
    print(rendered)
    if exit_code != 0:
        print(
            f"error: experiment {spec.name!r} failed "
            f"{len(report.failed_claims)} claim(s): "
            + "; ".join(report.failed_claims),
            file=sys.stderr,
        )
    return exit_code


def _command_corpus(arguments) -> int:
    """``repro corpus generate``: write a seeded scenario corpus to disk."""
    from repro.corpus import generate_corpus, write_corpus

    records = generate_corpus(arguments.seed, records=arguments.records)
    out_dir = write_corpus(records, arguments.out, seed=arguments.seed)
    print(f"wrote {len(records)} scenario records to {out_dir}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """The ``python -m repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run declarative N-variant scenarios and registered experiments "
            "(see examples/scenarios/)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a scenario JSON file")
    run_parser.add_argument("scenario", type=Path, help="path to the scenario JSON file")
    run_parser.add_argument(
        "--output",
        choices=EXPERIMENT_OUTPUT_FORMATS,
        default=None,
        help="override the scenario file's output format "
        "(markdown: experiment scenarios only)",
    )
    run_parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        metavar="N",
        help="override the campaign worker count (campaign/detection-matrix scenarios)",
    )
    run_parser.add_argument(
        "--backend",
        choices=CAMPAIGN_BACKENDS,
        default=None,
        help="override the campaign execution backend (campaign scenarios): "
        "virtual = in-process scheduler, process = OS worker processes",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="K",
        help="override the campaign worker count on either backend (campaign scenarios)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="root seed for keyed variations (campaign scenarios, and experiment "
        "scenarios whose experiment declares a seed parameter)",
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one registered experiment"
    )
    experiment_parser.add_argument("name", help="experiment name (see 'experiments')")
    experiment_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="set an experiment parameter (repeatable; values parsed as JSON scalars)",
    )
    experiment_parser.add_argument(
        "--output",
        choices=EXPERIMENT_OUTPUT_FORMATS,
        default="text",
        help="report rendering (default: text)",
    )
    experiment_parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --output json",
    )
    experiment_parser.add_argument(
        "--smoke",
        action="store_true",
        help="run at the experiment's smallest meaningful parameters",
    )
    experiment_parser.add_argument(
        "--backend",
        choices=CAMPAIGN_BACKENDS,
        default=None,
        help="shorthand for --set backend=... (experiments that run campaigns)",
    )
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="K",
        help="shorthand for --set workers=... (experiments that run campaigns)",
    )
    experiment_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="shorthand for --set seed=... (experiments with keyed randomness)",
    )
    experiment_parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shorthand for --set corpus_dir=... (the corpus experiment: run a "
        "written corpus directory instead of generating one)",
    )

    corpus_parser = subparsers.add_parser(
        "corpus", help="scenario-corpus tools (see 'corpus generate')"
    )
    corpus_subparsers = corpus_parser.add_subparsers(dest="corpus_command", required=True)
    generate_parser = corpus_subparsers.add_parser(
        "generate", help="write a seeded scenario corpus directory"
    )
    generate_parser.add_argument(
        "--seed",
        type=int,
        default=20080625,
        metavar="S",
        help="root seed every record derives from (default: 20080625)",
    )
    generate_parser.add_argument(
        "--records",
        type=int,
        default=240,
        metavar="N",
        help="corpus size after class-balanced trimming (default: 240)",
    )
    generate_parser.add_argument(
        "--out",
        type=Path,
        required=True,
        metavar="DIR",
        help="directory to write the record files and manifest into",
    )

    experiments_parser = subparsers.add_parser(
        "experiments", help="list registered experiments"
    )
    experiments_parser.add_argument(
        "--names",
        action="store_true",
        help="print bare names only (one per line, for scripting)",
    )
    experiments_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable registry dump (names, typed parameters, defaults)",
    )

    subparsers.add_parser("variations", help="list registered variations")

    arguments = parser.parse_args(argv)
    if arguments.command == "variations":
        return _command_variations()
    if arguments.command == "experiments":
        return _command_experiments(names_only=arguments.names, as_json=arguments.json)

    try:
        if arguments.command == "experiment":
            return _command_experiment(arguments)
        if arguments.command == "corpus":
            return _command_corpus(arguments)
        data = load_scenario(arguments.scenario)
        exit_code, rendered = run_scenario(
            data,
            output=arguments.output,
            parallelism=arguments.parallelism,
            backend=arguments.backend,
            workers=arguments.workers,
            seed=arguments.seed,
        )
    except (
        ScenarioError,
        VariationRegistryError,
        ExperimentRegistryError,
        CorpusError,
        InterpositionError,
        UnknownAppError,
        LoadError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WorkerError as exc:
        # A process-backend cell died; surface the worker-side traceback the
        # pool marshalled back instead of a master-side one.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(rendered)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
