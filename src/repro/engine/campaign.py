"""Campaign scheduling: many independent sessions through a worker pool.

A *campaign* is a batch of independent jobs -- typically one attack against
one system configuration per job -- where each job owns a private simulated
host, so jobs cannot observe each other and any interleaving produces the
same per-job outcome as running the jobs back-to-back.  The scheduler
exploits exactly that: it admits up to ``parallelism`` jobs at a time
(modelling a pool of worker replicas running on parallel hardware), gives
every live session a batch of ``rounds_per_turn`` lockstep rounds per
scheduling turn round-robin, and admits the next pending job the moment a
worker slot frees up.

Virtual-time accounting follows the engine's parallel-hardware semantics:
jobs that occupied the same worker slot ran back-to-back on that worker, so
a slot's elapsed time is the *sum* of its jobs' tick consumption while the
campaign's elapsed time is the *max* over slots.  ``parallelism=1``
degenerates to the strictly serial campaign: one slot, jobs run to
completion in submission order, elapsed time equals the sequential sum.

Jobs are constructed lazily (``CampaignJob.start`` builds the kernel and
session when the job is admitted) so a large cross product never holds more
than ``parallelism`` simulated hosts alive at once, and finalized eagerly
(``CampaignJob.finish`` turns the finished session into the caller's result
value) the turn their session terminates.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.engine.session import NVariantSession, SessionState


class CampaignHaltPolicy(enum.Enum):
    """What one job's halt (monitor alarm) means for the rest of the campaign."""

    #: Each job applies its own halt-on-divergence policy; siblings and
    #: pending jobs are unaffected (the default -- what a campaign sweeping an
    #: attack matrix wants, since halted cells are its data points).
    PER_CELL = "per-cell"
    #: The first halted session stops the whole campaign: live siblings are
    #: halted where they stand and pending jobs are never started.
    HALT_CAMPAIGN = "halt-campaign"


@dataclasses.dataclass
class CampaignJob:
    """One schedulable unit: a lazy session plus its result finalizer."""

    name: str
    start: Callable[[], NVariantSession]
    finish: Optional[Callable[[NVariantSession], Any]] = None


@dataclasses.dataclass
class ScheduledJobResult:
    """Outcome of one campaign job after the scheduler finished.

    ``skipped`` jobs never started (the campaign halted first);
    ``truncated`` jobs were live when the campaign halted and were stopped
    mid-run, so they carry no finalized value -- treating their partial state
    as a real outcome would fabricate result cells.
    """

    name: str
    index: int
    worker: Optional[int]
    state: Optional[SessionState]
    value: Any
    rounds: int
    virtual_elapsed: int
    skipped: bool = False
    truncated: bool = False


@dataclasses.dataclass
class CampaignExecutionResult:
    """Per-job results plus the scheduler's aggregate accounting.

    The type is backend-agnostic: the cooperative virtual-time scheduler in
    this module and the multi-process tier in :mod:`repro.engine.procpool`
    both produce it, distinguished only by :attr:`backend` (and the process
    tier's :attr:`steals` counter).  ``virtual_elapsed`` stays metered in
    kernel ticks either way; wall-clock time is the caller's business.
    """

    jobs: list[ScheduledJobResult]
    scheduler_turns: int
    parallelism: int
    rounds_per_turn: int
    worker_elapsed: list[int]
    #: Fairness telemetry: the most consecutive scheduling turns any live
    #: session spent waiting without receiving a round.  Round-robin keeps
    #: this at zero; a scheduler regression that skips sessions shows up here.
    max_wait_turns: int
    #: Peak number of simultaneously live sessions (<= parallelism).
    max_live_sessions: int
    #: Which execution tier produced this result ("virtual" or "process").
    backend: str = "virtual"
    #: Process tier only: jobs a worker took from another slot's run queue.
    steals: int = 0

    def values(self) -> list[Any]:
        """Every job's finalized value, in submission order."""
        return [job.value for job in self.jobs]

    @property
    def completed_jobs(self) -> list[ScheduledJobResult]:
        """Jobs whose session ran to its own terminal state."""
        return [job for job in self.jobs if not job.skipped and not job.truncated]

    @property
    def skipped_jobs(self) -> list[ScheduledJobResult]:
        """Jobs never started because the campaign halted first."""
        return [job for job in self.jobs if job.skipped]

    @property
    def truncated_jobs(self) -> list[ScheduledJobResult]:
        """Jobs stopped mid-run by a campaign-wide halt (no finalized value)."""
        return [job for job in self.jobs if job.truncated]

    @property
    def virtual_elapsed(self) -> int:
        """Campaign elapsed virtual time: max over concurrent worker slots."""
        return max(self.worker_elapsed, default=0)

    @property
    def virtual_elapsed_sequential(self) -> int:
        """What the same jobs would cost run back-to-back on one worker."""
        return sum(job.virtual_elapsed for job in self.jobs)

    def speedup(self) -> float:
        """Sequential over concurrent elapsed time (the worker-pool win).

        An empty campaign has no measurement to form a ratio from, so the
        result is ``nan`` -- never ``0.0``, which would read as "measured,
        and infinitely slow".
        """
        if not self.virtual_elapsed:
            return float("nan")
        return self.virtual_elapsed_sequential / self.virtual_elapsed

    def describe(self) -> str:
        """Readable multi-line summary."""
        lines = [
            f"jobs: {len(self.jobs)} (completed {len(self.completed_jobs)}, "
            f"truncated {len(self.truncated_jobs)}, skipped {len(self.skipped_jobs)}) "
            f"on {self.parallelism} workers",
            f"virtual elapsed: {self.virtual_elapsed} ticks concurrent, "
            f"{self.virtual_elapsed_sequential} sequential "
            f"({self.speedup():.2f}x)",
        ]
        return "\n".join(lines)


@dataclasses.dataclass
class _LiveJob:
    """Internal bookkeeping for one admitted job."""

    index: int
    job: CampaignJob
    session: NVariantSession
    worker: int
    last_stepped_turn: int
    truncated: bool = False


class CampaignScheduler:
    """Round-robin worker pool over lazily constructed sessions.

    The scheduler never lets sessions interact -- each job's ``start`` builds
    its own kernel -- so the per-job results are independent of ``parallelism``
    and ``rounds_per_turn``; those knobs trade scheduling overhead and peak
    live state against worker-pool concurrency, nothing else.  The
    serial-parity property test pins that guarantee.
    """

    def __init__(
        self,
        jobs: Sequence[CampaignJob] = (),
        *,
        parallelism: int = 1,
        rounds_per_turn: int = 8,
        halt_policy: CampaignHaltPolicy = CampaignHaltPolicy.PER_CELL,
        max_turns: int = 10_000_000,
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        if rounds_per_turn < 1:
            raise ValueError(f"rounds_per_turn must be >= 1, got {rounds_per_turn}")
        self.jobs = list(jobs)
        self.parallelism = parallelism
        self.rounds_per_turn = rounds_per_turn
        self.halt_policy = halt_policy
        self.max_turns = max_turns

    def run(self) -> CampaignExecutionResult:
        """Run every job to completion (or to a campaign-wide halt)."""
        results: list[Optional[ScheduledJobResult]] = [None] * len(self.jobs)
        worker_elapsed = [0] * self.parallelism
        pending = deque(enumerate(self.jobs))
        free_workers = list(range(self.parallelism - 1, -1, -1))  # pop() -> lowest
        live: list[_LiveJob] = []
        turns = 0
        max_wait_turns = 0
        max_live = 0
        campaign_halted = False

        def finalize(entry: _LiveJob) -> None:
            session = entry.session
            # A truncated session was stopped by the campaign-wide halt, not
            # by its own run: finalizing it would fabricate an outcome (e.g.
            # an attack reported "no effect" because it never got to land).
            value = None
            if not entry.truncated and entry.job.finish is not None:
                value = entry.job.finish(session)
            results[entry.index] = ScheduledJobResult(
                name=entry.job.name,
                index=entry.index,
                worker=entry.worker,
                state=session.state,
                value=value,
                rounds=session.rounds,
                virtual_elapsed=session.virtual_elapsed,
                truncated=entry.truncated,
            )
            worker_elapsed[entry.worker] += session.virtual_elapsed
            free_workers.append(entry.worker)

        while live or (pending and not campaign_halted):
            while pending and free_workers and not campaign_halted:
                index, job = pending.popleft()
                worker = free_workers.pop()
                live.append(
                    _LiveJob(
                        index=index,
                        job=job,
                        session=job.start(),
                        worker=worker,
                        last_stepped_turn=turns,
                    )
                )
            max_live = max(max_live, len(live))
            turns += 1
            if turns > self.max_turns:
                raise RuntimeError(f"campaign exceeded {self.max_turns} scheduling turns")
            finished: list[_LiveJob] = []
            for entry in live:
                max_wait_turns = max(max_wait_turns, turns - entry.last_stepped_turn - 1)
                entry.last_stepped_turn = turns
                for _ in range(self.rounds_per_turn):
                    if entry.session.step() is not SessionState.RUNNING:
                        break
                if entry.session.done:
                    finished.append(entry)
            for entry in finished:
                live.remove(entry)
                finalize(entry)
                if (
                    entry.session.state is SessionState.HALTED
                    and self.halt_policy is CampaignHaltPolicy.HALT_CAMPAIGN
                    and not campaign_halted
                ):
                    campaign_halted = True
                    # Stop the stragglers where they stand.  Their partial
                    # progress is accounted but never finalized into a value.
                    for straggler in live:
                        if not straggler.session.done:
                            straggler.session.halt()
                            straggler.truncated = True

        for index, job in pending:
            results[index] = ScheduledJobResult(
                name=job.name,
                index=index,
                worker=None,
                state=None,
                value=None,
                rounds=0,
                virtual_elapsed=0,
                skipped=True,
            )

        return CampaignExecutionResult(
            jobs=[result for result in results if result is not None],
            scheduler_turns=turns,
            parallelism=self.parallelism,
            rounds_per_turn=self.rounds_per_turn,
            worker_elapsed=worker_elapsed,
            max_wait_turns=max_wait_turns,
            max_live_sessions=max_live,
        )


def run_jobs(
    jobs: Sequence[CampaignJob],
    *,
    parallelism: int = 1,
    rounds_per_turn: int = 8,
    halt_policy: CampaignHaltPolicy = CampaignHaltPolicy.PER_CELL,
) -> CampaignExecutionResult:
    """Build a scheduler over *jobs* and run it to completion in one call."""
    scheduler = CampaignScheduler(
        jobs,
        parallelism=parallelism,
        rounds_per_turn=rounds_per_turn,
        halt_policy=halt_policy,
    )
    return scheduler.run()
