"""One N-variant system as a resumable, schedulable session.

A session owns everything one lockstep N-variant run needs -- the variant
processes and contexts, the variation stack, the syscall wrapper layer, and a
monitor created fresh for the session (so :class:`~repro.core.monitor.MonitorStats`
never leak between runs).  Unlike :meth:`NVariantSystem.run`, which loops to
completion, a session exposes :meth:`NVariantSession.step`: execute exactly
one lockstep round and return the session's state.  That is the unit the
cooperative scheduler interleaves, and running ``step()`` in a loop until the
session leaves ``RUNNING`` reproduces the original single-session semantics
exactly.

The hot path of a round -- canonicalize every variant's request and compare --
goes through :class:`~repro.core.monitor.SyscallComparator`, which precomputes
which system calls each variation actually rewrites so the overwhelming
majority of rounds (read/write/open/accept/...) skip the per-variation
canonicalization walk entirely and fall into a batched tuple comparison.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional, Sequence

from repro.core.alarm import AlarmType
from repro.core.monitor import Monitor, SyscallComparator
from repro.core.variations.base import Variation, VariationStack
from repro.core.wrappers import SyscallWrappers, UnsharedFileRegistry
from repro.interpose import get_table
from repro.kernel.errors import VariantFault
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.libc import Libc
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult


class SessionState(enum.Enum):
    """Lifecycle of a session under the engine."""

    #: The session has unfinished variants and can accept another ``step()``.
    RUNNING = "running"
    #: Every variant finished and the monitor never forced a stop.
    COMPLETED = "completed"
    #: The monitor stopped the session (the paper's halt-on-divergence policy).
    HALTED = "halted"


@dataclasses.dataclass
class _VariantRuntime:
    """Internal per-variant bookkeeping for the lockstep loop."""

    context: "VariantContext"
    program: "Program"
    started: bool = False
    finished: bool = False
    fault: Optional[VariantFault] = None
    return_value: object = None
    pending_result: Optional[SyscallResult] = None
    pending_request: Optional[SyscallRequest] = None


class NVariantSession:
    """One N-variant system, advanced one lockstep round at a time.

    Parameters mirror :class:`~repro.core.nvariant.NVariantSystem`; the
    difference is purely the execution interface.  Each session builds its own
    :class:`~repro.core.monitor.Monitor`, so alarm lists and monitor counters
    are per-session state -- two sessions on the same engine never share or
    accumulate each other's statistics.
    """

    def __init__(
        self,
        kernel: SimulatedKernel,
        program_factory: Callable[["VariantContext"], "Program"],
        variations: Sequence[Variation] = (),
        *,
        num_variants: int = 2,
        halt_on_alarm: bool = True,
        max_rounds: int = 2_000_000,
        name: str = "session",
        interposition: str = "classic",
    ):
        # Imported here (not at module top) because repro.core.nvariant is the
        # backwards-compatible facade over this module and imports it lazily;
        # a module-level import in both directions would be circular.
        from repro.core.nvariant import VariantContext

        self.kernel = kernel
        self.program_factory = program_factory
        self.variations = VariationStack(list(variations), num_variants)
        self.num_variants = num_variants
        self.halt_on_alarm = halt_on_alarm
        self.max_rounds = max_rounds
        self.name = name
        self.interposition = interposition
        self.table = get_table(interposition)
        self.monitor = Monitor(table=self.table)
        self.comparator = SyscallComparator(self.variations, self.monitor)
        self.rounds = 0
        self.state = SessionState.RUNNING
        self._ticks_consumed = 0
        #: Provenance stamps used by checkpoint/migration (repro.load): the
        #: declarative SystemSpec this session was built from (set by
        #: repro.api.builders.build_session) and the serving-app configuration
        #: (set by repro.load.checkpoint.build_serving_session).  Sessions
        #: wired by hand carry None and cannot be checkpointed.
        self.spec = None
        self.serving = None

        self._unshared_registry = UnsharedFileRegistry(num_variants)
        self._unshared_registry.register_mapping(
            self.variations.setup_unshared_files(kernel.fs)
        )
        self._spawn_runtimes()

    # -- construction helpers --------------------------------------------------

    def _spawn_runtimes(self) -> None:
        """Spawn fresh variant processes, contexts and program instances."""
        from repro.core.nvariant import VariantContext

        self._contexts: list["VariantContext"] = []
        processes: list[Process] = []
        for index in range(self.num_variants):
            process = self.kernel.spawn_process(
                f"{self.name}-v{index}",
                address_space=self.variations.make_address_space(index),
            )
            processes.append(process)
            self._contexts.append(
                VariantContext(
                    index=index,
                    process=process,
                    libc=Libc(),
                    uid_codec=self._build_codec(index),
                )
            )
        self.wrappers = SyscallWrappers(
            self.kernel, processes, self._unshared_registry, table=self.table
        )
        self._runtimes = [
            _VariantRuntime(context=context, program=self.program_factory(context))
            for context in self._contexts
        ]

    def restart(self, *, rotate_keys: bool = True) -> SessionState:
        """Reset the session to run its program again from round zero.

        Any keyed variation scheme is rotated first (the key-rotation-on-
        restart semantics: a restarted fleet faces a fresh secret layout, so
        knowledge an attacker accumulated across probes dies with the old
        session) unless *rotate_keys* is False.  The monitor, comparator and
        per-variant runtimes are rebuilt from scratch; the previous run's
        processes are exited and its alarms discarded.
        """
        from repro.memory.partition import KeyedScheme

        if rotate_keys:
            for variation in self.variations:
                rotate = getattr(variation, "rotate_key", None)
                if rotate is not None:
                    rotate()
                    continue
                scheme = getattr(variation, "scheme", None)
                if isinstance(scheme, KeyedScheme):
                    scheme.rotate()
        for context in self._contexts:
            if context.process.alive:
                context.process.exit(0)
        self.monitor = Monitor(table=self.table)
        self.comparator = SyscallComparator(self.variations, self.monitor)
        self.rounds = 0
        self._ticks_consumed = 0
        self.state = SessionState.RUNNING
        self._spawn_runtimes()
        return self.state

    def _build_codec(self, index: int) -> "UIDCodec":
        from repro.core.nvariant import UIDCodec
        from repro.core.variations.uid import UIDVariation

        for variation in self.variations:
            if isinstance(variation, UIDVariation):
                return UIDCodec(
                    encode=lambda value, v=variation, i=index: v.encode(i, value),
                    decode=lambda value, v=variation, i=index: v.decode(i, value),
                )
        return UIDCodec.identity()

    @property
    def contexts(self) -> list["VariantContext"]:
        """The per-variant contexts (useful for inspection in tests)."""
        return self._contexts

    @property
    def processes(self) -> list[Process]:
        """The per-variant kernel processes."""
        return [context.process for context in self._contexts]

    @property
    def done(self) -> bool:
        """True once the session has reached a terminal state."""
        return self.state is not SessionState.RUNNING

    @property
    def virtual_elapsed(self) -> int:
        """Kernel clock ticks this session's own rounds consumed.

        Metered inside :meth:`step` (not as a wall window over the kernel
        clock), so sessions sharing one kernel never count each other's
        ticks.
        """
        return self._ticks_consumed

    # -- the lockstep round ----------------------------------------------------

    def step(self) -> SessionState:
        """Execute one lockstep round; returns the resulting session state."""
        if self.state is not SessionState.RUNNING:
            return self.state
        if self.rounds >= self.max_rounds:
            raise RuntimeError(f"lockstep session exceeded {self.max_rounds} rounds")
        clock_before = self.kernel.clock
        try:
            return self._step_round()
        finally:
            self._ticks_consumed += self.kernel.clock - clock_before

    def _step_round(self) -> SessionState:
        self.rounds += 1
        runtimes = self._runtimes
        self._advance_all(runtimes)

        active = [r for r in runtimes if not r.finished]
        faulted = [r for r in runtimes if r.fault is not None]

        if faulted:
            for runtime in faulted:
                if not self._already_reported(runtime):
                    self.monitor.report_fault(
                        runtime.context.index, runtime.fault, lockstep_index=self.rounds
                    )
            if self.halt_on_alarm:
                return self.halt()
            for runtime in faulted:
                runtime.fault = None  # keep going without re-reporting

        if not active:
            self.state = SessionState.COMPLETED
            return self.state

        if len(active) != len(runtimes):
            finished_indices = tuple(r.context.index for r in runtimes if r.finished)
            self.monitor.report_lifecycle_divergence(
                "some variants terminated while others kept running",
                lockstep_index=self.rounds,
                variant_values=finished_indices,
            )
            if self.halt_on_alarm:
                return self.halt()
            # Without halting there is nothing sensible to synchronise on.
            self.state = SessionState.COMPLETED
            return self.state

        requests = [r.pending_request for r in runtimes]
        if any(request is None for request in requests):
            return self.state

        alarm = self.comparator.check_round(requests, lockstep_index=self.rounds)
        if alarm is not None and self.halt_on_alarm:
            return self.halt()

        transformed = self.comparator.transform_round(requests)
        raw_results = self.wrappers.execute_round(transformed)
        for runtime, request, raw in zip(runtimes, requests, raw_results):
            runtime.pending_result = self.variations.transform_result(
                runtime.context.index, request, raw
            )
            runtime.pending_request = None
            if request.name is Syscall.EXIT or not runtime.context.process.alive:
                runtime.finished = True
                runtime.program.close()
        return self.state

    def run(self) -> "NVariantResult":
        """Drive the session to completion (the M=1 engine special case).

        Resuming a partially stepped session is fine; a session that already
        reached a terminal state cannot run again (its programs are consumed
        generators and its processes have exited), so a repeated ``run()``
        raises instead of silently returning the stale result.
        """
        if self.state is not SessionState.RUNNING:
            raise RuntimeError(
                f"session {self.name!r} already {self.state.value}; "
                "construct a new session to run again"
            )
        if self.rounds == 0:
            # The monitor is fresh from __init__, but callers may have poked
            # counters or alarms between construction and run (the stale-stats
            # regression test does exactly that); a complete run starts from
            # zero regardless.
            self.monitor.reset()
        while self.state is SessionState.RUNNING:
            self.step()
        return self.result()

    def halt(self) -> SessionState:
        """Stop every variant (the paper's halt-on-divergence policy)."""
        for runtime in self._runtimes:
            if not runtime.finished:
                runtime.finished = True
                runtime.program.close()
            process = runtime.context.process
            if process.alive:
                process.fault("halted by monitor after divergence")
        self.state = SessionState.HALTED
        return self.state

    def result(self) -> "NVariantResult":
        """Build the :class:`~repro.core.nvariant.NVariantResult` so far."""
        from repro.core.nvariant import NVariantResult, VariantOutcome

        variants = []
        for runtime in self._runtimes:
            process = runtime.context.process
            variants.append(
                VariantOutcome(
                    index=runtime.context.index,
                    exit_code=process.exit_code,
                    fault=process.fault_reason if runtime.fault or process.fault_reason else None,
                    return_value=runtime.return_value,
                    syscall_count=process.stats.syscall_count,
                )
            )
        return NVariantResult(
            alarms=list(self.monitor.alarms),
            variants=variants,
            lockstep_rounds=self.rounds,
            wrapper_stats=self.wrappers.stats,
            monitor=self.monitor,
        )

    # -- loop internals --------------------------------------------------------

    def _advance_all(self, runtimes: list[_VariantRuntime]) -> None:
        """Advance every unfinished variant to its next system call."""
        for runtime in runtimes:
            if runtime.finished or runtime.pending_request is not None:
                continue
            try:
                if not runtime.started:
                    runtime.pending_request = runtime.program.send(None)
                    runtime.started = True
                else:
                    runtime.pending_request = runtime.program.send(runtime.pending_result)
            except StopIteration as stop:
                runtime.return_value = stop.value
                runtime.finished = True
                if runtime.context.process.alive and runtime.context.process.exit_code is None:
                    runtime.context.process.exit(0)
            except VariantFault as fault:
                runtime.fault = fault
                runtime.finished = True
                runtime.context.process.fault(f"{fault.kind}: {fault.message}")

    def _already_reported(self, runtime: _VariantRuntime) -> bool:
        return any(
            alarm.alarm_type is AlarmType.VARIANT_FAULT
            and alarm.faulting_variant == runtime.context.index
            for alarm in self.monitor.alarms
        )
