"""Multi-process campaign execution: a master and N pre-forked workers.

Every execution tier below this one is *simulated* concurrency: the
cooperative :class:`~repro.engine.scheduler.MultiSessionEngine` and the
:class:`~repro.engine.campaign.CampaignScheduler` interleave sessions inside
one Python interpreter and account progress in virtual kernel ticks.  This
module is the first layer where parallelism is physical.  Following the
nginx-style master/worker pattern (a persistent master process, N workers
forked once, no per-job process creation), a :class:`ProcessWorkerPool`
keeps ``num_workers`` OS processes alive and a master loop shards campaign
jobs across them, so independent attack cells burn real CPU (and overlap
real blocking time) on real cores.

Live sessions hold kernels, generators and monitors -- none of that can
cross a process boundary -- so the unit shipped to a worker is never a
session but a :class:`ProcessJob`: a picklable, scenario-style payload plus
a ``"module:function"`` runner reference the worker resolves by import.
That keeps the protocol spawn-safe (nothing closure-shaped is pickled) and
generic: the engine layer knows nothing about attacks; the runner the
:mod:`repro.api` layer registers rebuilds each cell from its spec payload
on the worker side exactly the way the virtual backend builds it in
process, which is why the two backends produce byte-identical outcomes.

Scheduling follows the virtual scheduler's shape so the result type can stay
backend-agnostic: jobs are sharded round-robin into per-worker run queues,
the master admits one job at a time to each free worker, and a worker whose
own queue runs dry *steals* the tail of the longest remaining queue
(``CampaignExecutionResult.steals`` counts these).  Results are marshalled
back over a shared queue and re-ordered by submission index, so callers see
the same submission-order ``ScheduledJobResult`` list the virtual scheduler
produces -- with ``virtual_elapsed`` still metered in kernel ticks by the
worker-side session, and wall time left to the caller's clock.
"""

from __future__ import annotations

import dataclasses
import importlib
import multiprocessing
import queue
import time
import traceback
from collections import deque
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.engine.campaign import (
    CampaignExecutionResult,
    CampaignHaltPolicy,
    ScheduledJobResult,
)
from repro.engine.session import SessionState

#: Keys a runner's result mapping must carry back to the master.
RESULT_KEYS = frozenset({"state", "rounds", "virtual_elapsed", "value"})


class WorkerError(RuntimeError):
    """A worker process failed, died, or timed out mid-campaign."""


@dataclasses.dataclass(frozen=True)
class ProcessJob:
    """One schedulable unit for the process tier.

    ``runner`` is a ``"module:function"`` reference resolved *inside the
    worker process*; ``payload`` is the picklable, JSON-style description
    (an attack/spec cell, a scenario, ...) the runner rebuilds the real work
    from.  The runner must return a mapping with the :data:`RESULT_KEYS`:
    the terminal :class:`~repro.engine.session.SessionState` value (or
    ``None``), the session's lockstep round count, its virtual-tick
    consumption, and the finalized (picklable) result value.
    """

    name: str
    runner: str
    payload: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.runner:
            raise ValueError(
                f"runner must be a 'module:function' reference, got {self.runner!r}"
            )


def resolve_runner(reference: str) -> Callable[[Mapping[str, Any]], Mapping[str, Any]]:
    """Import a ``"module:function"`` runner reference (the worker-side half)."""
    module_name, _, attribute = reference.partition(":")
    if not module_name or not attribute:
        raise ValueError(f"runner must be a 'module:function' reference, got {reference!r}")
    module = importlib.import_module(module_name)
    runner = getattr(module, attribute, None)
    if not callable(runner):
        raise ValueError(f"runner {reference!r} did not resolve to a callable")
    return runner


def _worker_main(worker_id: int, inbox, results) -> None:
    """One worker's loop: pull a job, run it, ship the result; None stops us.

    Runners are resolved once per reference and cached for the worker's
    lifetime -- the no-per-job-process-creation half of the master/worker
    pattern.  Failures are caught and marshalled back as ``"error"`` results
    (with the formatted traceback) so one bad cell fails the campaign with a
    diagnosis instead of a hung master.
    """
    runners: dict[str, Callable[[Mapping[str, Any]], Mapping[str, Any]]] = {}
    while True:
        item = inbox.get()
        if item is None:
            return
        index, name, runner_ref, payload = item
        try:
            runner = runners.get(runner_ref)
            if runner is None:
                runner = runners[runner_ref] = resolve_runner(runner_ref)
            outcome = dict(runner(payload))
            missing = RESULT_KEYS - set(outcome)
            if missing:
                raise ValueError(
                    f"runner {runner_ref!r} result is missing keys: {sorted(missing)}"
                )
            results.put((worker_id, index, "ok", outcome))
        except Exception:
            results.put(
                (worker_id, index, "error", {"job": name, "traceback": traceback.format_exc()})
            )


def _default_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform offers it (cheap warm workers), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessWorkerPool:
    """A persistent master over N pre-forked worker processes.

    The pool is the long-lived tier: workers are created once (``start`` /
    context-manager entry) and reused across any number of :meth:`run`
    calls, so a campaign driver pays process creation once per fleet, not
    once per job.  ``job_timeout`` bounds how long the master waits for any
    single result before declaring the fleet wedged; a worker dying mid-job
    is detected and reported rather than waited on forever.
    """

    def __init__(
        self,
        num_workers: int = 1,
        *,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        job_timeout: float = 300.0,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.job_timeout = job_timeout
        self._context = mp_context if mp_context is not None else _default_context()
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._inboxes: list[Any] = []
        self._results: Optional[Any] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def started(self) -> bool:
        """True while the worker fleet is alive."""
        return bool(self._processes)

    def start(self) -> "ProcessWorkerPool":
        """Fork the worker fleet (idempotent)."""
        if self.started:
            return self
        self._results = self._context.Queue()
        for worker_id in range(self.num_workers):
            inbox = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, inbox, self._results),
                name=f"campaign-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)
        return self

    def close(self) -> None:
        """Stop every worker: sentinel first, terminate stragglers."""
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue already torn down
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        self._inboxes = []
        self._results = None

    def __enter__(self) -> "ProcessWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the master loop -------------------------------------------------------

    def _next_result(self):
        """Block for the next worker result, watching for dead workers."""
        deadline = time.monotonic() + self.job_timeout
        while True:
            try:
                return self._results.get(timeout=0.2)
            except queue.Empty:
                for process in self._processes:
                    if not process.is_alive():
                        raise WorkerError(
                            f"worker {process.name} died mid-campaign "
                            f"(exitcode {process.exitcode})"
                        ) from None
                if time.monotonic() >= deadline:
                    raise WorkerError(
                        f"no worker result within {self.job_timeout}s; "
                        "campaign declared wedged"
                    ) from None

    def run(
        self,
        jobs: Sequence[ProcessJob],
        *,
        halt_policy: CampaignHaltPolicy = CampaignHaltPolicy.PER_CELL,
        rounds_per_turn: int = 1,
        parallelism_hint: Optional[int] = None,
    ) -> CampaignExecutionResult:
        """Run *jobs* across the worker fleet; results in submission order.

        ``parallelism_hint`` is what the result records as its worker count
        (defaults to the pool size) -- the executor uses it so a pool clamped
        below the requested worker count still reports the caller's request,
        exactly like the virtual scheduler reports its configured
        ``parallelism`` even when jobs are fewer.  ``rounds_per_turn`` is
        recorded for result-shape parity but does not batch anything here:
        each worker runs its cell to completion in one go.

        Halt semantics under ``HALT_CAMPAIGN``: the first HALTED result stops
        admission (queued jobs are ``skipped``), and cells already in flight
        on other workers cannot be interrupted mid-run, so their results are
        marked ``truncated`` and their values dropped -- the process-tier
        analogue of the virtual scheduler halting live stragglers: neither
        backend ever reports an outcome for a cell the halt reached first.
        """
        if not self.started:
            raise WorkerError("pool is not started; use `with ProcessWorkerPool(...) as pool`")
        jobs = list(jobs)
        recorded_parallelism = (
            parallelism_hint if parallelism_hint is not None else self.num_workers
        )
        worker_elapsed = [0] * max(recorded_parallelism, self.num_workers)
        if not jobs:
            return CampaignExecutionResult(
                jobs=[],
                scheduler_turns=0,
                parallelism=recorded_parallelism,
                rounds_per_turn=rounds_per_turn,
                worker_elapsed=worker_elapsed,
                max_wait_turns=0,
                max_live_sessions=0,
                backend="process",
            )

        results: list[Optional[ScheduledJobResult]] = [None] * len(jobs)
        backlog = [deque() for _ in range(self.num_workers)]
        for index, job in enumerate(jobs):
            backlog[index % self.num_workers].append((index, job))
        in_flight: list[Optional[int]] = [None] * self.num_workers
        truncated: set[int] = set()
        campaign_halted = False
        steals = 0
        turns = 0
        max_live = 0

        def admit(worker: int) -> bool:
            """Give *worker* its next job: own queue first, then steal."""
            nonlocal steals
            source = worker
            if not backlog[worker]:
                source = max(range(self.num_workers), key=lambda w: len(backlog[w]))
                if not backlog[source]:
                    return False
                steals += 1
            index, job = (
                backlog[source].popleft() if source == worker else backlog[source].pop()
            )
            self._inboxes[worker].put((index, job.name, job.runner, dict(job.payload)))
            in_flight[worker] = index
            return True

        while True:
            if not campaign_halted:
                for worker in range(self.num_workers):
                    if in_flight[worker] is None:
                        admit(worker)
            live = sum(1 for index in in_flight if index is not None)
            max_live = max(max_live, live)
            if live == 0:
                break
            turns += 1
            worker, index, status, outcome = self._next_result()
            in_flight[worker] = None
            if status == "error":
                raise WorkerError(
                    f"job {outcome['job']!r} failed on worker {worker}:\n"
                    f"{outcome['traceback']}"
                )
            state = SessionState(outcome["state"]) if outcome["state"] is not None else None
            was_truncated = index in truncated
            results[index] = ScheduledJobResult(
                name=jobs[index].name,
                index=index,
                worker=worker,
                state=state,
                value=None if was_truncated else outcome["value"],
                rounds=outcome["rounds"],
                virtual_elapsed=outcome["virtual_elapsed"],
                truncated=was_truncated,
            )
            worker_elapsed[worker] += outcome["virtual_elapsed"]
            if (
                state is SessionState.HALTED
                and halt_policy is CampaignHaltPolicy.HALT_CAMPAIGN
                and not campaign_halted
                and not was_truncated
            ):
                campaign_halted = True
                # In-flight siblings cannot be stopped mid-cell from here;
                # their eventual results are demoted to truncated (no value).
                truncated.update(i for i in in_flight if i is not None)
                for run_queue in backlog:
                    run_queue.clear()

        for index, result in enumerate(results):
            if result is None:
                results[index] = ScheduledJobResult(
                    name=jobs[index].name,
                    index=index,
                    worker=None,
                    state=None,
                    value=None,
                    rounds=0,
                    virtual_elapsed=0,
                    skipped=True,
                )

        return CampaignExecutionResult(
            jobs=[result for result in results if result is not None],
            scheduler_turns=turns,
            parallelism=recorded_parallelism,
            rounds_per_turn=rounds_per_turn,
            worker_elapsed=worker_elapsed,
            max_wait_turns=0,
            max_live_sessions=max_live,
            backend="process",
            steals=steals,
        )


class ProcessCampaignExecutor:
    """One campaign through a (possibly borrowed) process worker fleet.

    The one-shot counterpart of :class:`ProcessWorkerPool`: construct it with
    the jobs and a worker count, call :meth:`run`, get the backend-agnostic
    :class:`~repro.engine.campaign.CampaignExecutionResult`.  The fleet is
    clamped to the job count (idle pre-forked workers would be pure startup
    cost) while the result still reports the requested ``workers`` -- the
    same accounting shape the virtual scheduler uses.  Pass ``pool`` to
    reuse a long-lived fleet across campaigns (the persistent-master
    pattern); the executor then neither starts nor closes it.
    """

    def __init__(
        self,
        jobs: Sequence[ProcessJob] = (),
        *,
        workers: int = 1,
        halt_policy: CampaignHaltPolicy = CampaignHaltPolicy.PER_CELL,
        rounds_per_turn: int = 1,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        job_timeout: float = 300.0,
        pool: Optional[ProcessWorkerPool] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if rounds_per_turn < 1:
            raise ValueError(f"rounds_per_turn must be >= 1, got {rounds_per_turn}")
        self.jobs = list(jobs)
        self.workers = workers
        self.halt_policy = halt_policy
        self.rounds_per_turn = rounds_per_turn
        self.mp_context = mp_context
        self.job_timeout = job_timeout
        self.pool = pool

    def run(self) -> CampaignExecutionResult:
        """Run every job across the fleet (or no fleet at all for no jobs)."""
        if not self.jobs:
            return CampaignExecutionResult(
                jobs=[],
                scheduler_turns=0,
                parallelism=self.workers,
                rounds_per_turn=self.rounds_per_turn,
                worker_elapsed=[0] * self.workers,
                max_wait_turns=0,
                max_live_sessions=0,
                backend="process",
            )
        if self.pool is not None:
            return self.pool.run(
                self.jobs,
                halt_policy=self.halt_policy,
                rounds_per_turn=self.rounds_per_turn,
                parallelism_hint=self.workers,
            )
        fleet_size = min(self.workers, len(self.jobs))
        with ProcessWorkerPool(
            fleet_size, mp_context=self.mp_context, job_timeout=self.job_timeout
        ) as pool:
            return pool.run(
                self.jobs,
                halt_policy=self.halt_policy,
                rounds_per_turn=self.rounds_per_turn,
                parallelism_hint=self.workers,
            )


def run_process_jobs(
    jobs: Sequence[ProcessJob],
    *,
    workers: int = 1,
    halt_policy: CampaignHaltPolicy = CampaignHaltPolicy.PER_CELL,
    rounds_per_turn: int = 1,
    mp_context: Optional[multiprocessing.context.BaseContext] = None,
    job_timeout: float = 300.0,
    pool: Optional[ProcessWorkerPool] = None,
) -> CampaignExecutionResult:
    """Build a :class:`ProcessCampaignExecutor` over *jobs* and run it."""
    return ProcessCampaignExecutor(
        jobs,
        workers=workers,
        halt_policy=halt_policy,
        rounds_per_turn=rounds_per_turn,
        mp_context=mp_context,
        job_timeout=job_timeout,
        pool=pool,
    ).run()
