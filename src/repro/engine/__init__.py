"""Concurrent multi-session N-variant execution engine.

The original ``nvexec`` framework (:mod:`repro.core.nvariant`) drives exactly
one N-variant system at a time: one set of variants, one monitor, one lockstep
loop run to completion.  That is faithful to the paper's prototype but caps
throughput at a single request pipeline in flight.  This package generalises
the lockstep loop into *sessions* that can be interleaved:

* :class:`~repro.engine.session.NVariantSession` packages one N-variant
  system's per-session state -- variant contexts, variation stack, syscall
  wrappers, and a **fresh monitor with fresh stats** -- behind a resumable
  ``step()`` that executes exactly one lockstep round.
* :class:`~repro.engine.scheduler.MultiSessionEngine` cooperatively schedules
  many sessions round-robin, one lockstep round each per turn, so M
  independent N-variant servers make progress concurrently on one simulated
  host fleet.  The single-session case is the M=1 special case, which is how
  :class:`~repro.core.nvariant.NVariantSystem` is now implemented.

Halt policies: each session applies the paper's halt-on-divergence policy to
*itself* (``HaltPolicy.PER_SESSION``, the default -- an alarm stops the
alarming session while its siblings keep serving), or the engine can apply the
conservative fleet-wide policy (``HaltPolicy.HALT_ALL``).

On top of the interleaving engine,
:class:`~repro.engine.campaign.CampaignScheduler` runs *campaigns*: large
batches of independent jobs (one attack x configuration cell each) admitted
lazily through a bounded worker pool with batched lockstep rounds per
scheduling turn.  It is the virtual-time execution path behind
:func:`repro.api.campaign.run_campaign`; the multi-process master/worker
tier in :mod:`repro.engine.procpool` is the wall-clock one
(``run_campaign(..., backend="process")``), producing the same
submission-order :class:`~repro.engine.campaign.CampaignExecutionResult`.
"""

from repro.engine.campaign import (
    CampaignExecutionResult,
    CampaignHaltPolicy,
    CampaignJob,
    CampaignScheduler,
    ScheduledJobResult,
    run_jobs,
)
from repro.engine.procpool import (
    ProcessCampaignExecutor,
    ProcessJob,
    ProcessWorkerPool,
    WorkerError,
    run_process_jobs,
)
from repro.engine.scheduler import (
    EngineResult,
    HaltPolicy,
    MultiSessionEngine,
    ScheduledSessionResult,
    run_sessions,
)
from repro.engine.session import NVariantSession, SessionState

__all__ = [
    "CampaignExecutionResult",
    "CampaignHaltPolicy",
    "CampaignJob",
    "CampaignScheduler",
    "EngineResult",
    "HaltPolicy",
    "MultiSessionEngine",
    "NVariantSession",
    "ProcessCampaignExecutor",
    "ProcessJob",
    "ProcessWorkerPool",
    "ScheduledJobResult",
    "ScheduledSessionResult",
    "SessionState",
    "WorkerError",
    "run_jobs",
    "run_process_jobs",
    "run_sessions",
]
