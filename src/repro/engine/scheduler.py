"""Cooperative scheduling of many N-variant sessions.

The engine is deliberately simple -- the sessions are generator-driven and
deterministic, so "concurrency" means interleaving lockstep rounds
round-robin: every scheduling turn gives each live session exactly one round.
That fixed rotation keeps multi-session runs reproducible (the property the
whole reproduction leans on) while modelling M independent N-variant servers
making progress in parallel; the interleaving-determinism test suite asserts
that a session's alarms and HTTP responses are identical whether it runs
alone or interleaved with any number of siblings.

Aggregate throughput is measured in virtual time: each session accounts the
kernel clock ticks it consumed, and since sessions model independent replicas
running on parallel hardware, the engine's elapsed virtual time is the *max*
over sessions rather than the sum -- which is exactly where the concurrent
engine beats the sequential driver.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Optional

from repro.engine.session import NVariantSession, SessionState


class HaltPolicy(enum.Enum):
    """What an alarm in one session means for its siblings."""

    #: Halt only the alarming session; the others keep serving (default).
    PER_SESSION = "per-session"
    #: Halt every session in the engine at the first alarm anywhere.
    HALT_ALL = "halt-all"


@dataclasses.dataclass
class ScheduledSessionResult:
    """Outcome of one session after the engine finished."""

    name: str
    state: SessionState
    result: "NVariantResult"
    rounds: int
    virtual_elapsed: int

    @property
    def alarms(self) -> int:
        """Number of alarms this session's monitor raised."""
        return len(self.result.alarms)


@dataclasses.dataclass
class EngineResult:
    """All sessions' outcomes plus aggregate accounting."""

    sessions: list[ScheduledSessionResult]
    scheduler_turns: int

    @property
    def total_alarms(self) -> int:
        """Alarms raised across every session."""
        return sum(s.alarms for s in self.sessions)

    @property
    def completed_sessions(self) -> list[ScheduledSessionResult]:
        """Sessions that finished without being halted."""
        return [s for s in self.sessions if s.state is SessionState.COMPLETED]

    @property
    def halted_sessions(self) -> list[ScheduledSessionResult]:
        """Sessions the monitor stopped."""
        return [s for s in self.sessions if s.state is SessionState.HALTED]

    @property
    def virtual_elapsed(self) -> int:
        """Engine-level elapsed virtual time: max over concurrent sessions."""
        return max((s.virtual_elapsed for s in self.sessions), default=0)

    @property
    def virtual_elapsed_sequential(self) -> int:
        """What the same work would cost run back-to-back on one replica."""
        return sum(s.virtual_elapsed for s in self.sessions)

    def session(self, name: str) -> ScheduledSessionResult:
        """Look one session's outcome up by name."""
        for entry in self.sessions:
            if entry.name == name:
                return entry
        raise KeyError(f"no session named {name!r}")

    def describe(self) -> str:
        """Readable multi-line summary."""
        lines = [
            f"sessions: {len(self.sessions)} "
            f"(completed {len(self.completed_sessions)}, halted {len(self.halted_sessions)})",
            f"alarms: {self.total_alarms}",
            f"virtual elapsed: {self.virtual_elapsed} ticks concurrent, "
            f"{self.virtual_elapsed_sequential} sequential",
        ]
        for entry in self.sessions:
            lines.append(
                f"  {entry.name}: {entry.state.value} rounds={entry.rounds} "
                f"elapsed={entry.virtual_elapsed} alarms={entry.alarms}"
            )
        return "\n".join(lines)


class MultiSessionEngine:
    """Round-robin cooperative scheduler over N-variant sessions."""

    def __init__(
        self,
        sessions: Iterable[NVariantSession] = (),
        *,
        halt_policy: HaltPolicy = HaltPolicy.PER_SESSION,
        max_turns: int = 10_000_000,
        name: str = "engine",
        intake: Optional[object] = None,
    ):
        self.name = name
        self.halt_policy = halt_policy
        self.max_turns = max_turns
        #: Optional admission policy guarding :meth:`offer` (any object with
        #: the repro.load.admission protocol: ``offer(now)`` returning a
        #: decision with ``admitted``, plus ``released()``).  Typed loosely --
        #: the engine must stay importable without the load subsystem.
        self.intake = intake
        self._intake_admitted: set[str] = set()
        self._sessions: list[NVariantSession] = []
        for session in sessions:
            self.add_session(session)

    def add_session(self, session: NVariantSession) -> NVariantSession:
        """Register a session; names must be unique within the engine."""
        if any(existing.name == session.name for existing in self._sessions):
            raise ValueError(f"duplicate session name {session.name!r}")
        self._sessions.append(session)
        return session

    def offer(self, session: NVariantSession) -> bool:
        """Admission-controlled intake: add *session* unless the policy sheds it.

        Without an intake policy this is :meth:`add_session` returning True.
        With one, the policy sees the engine's current occupancy as its clock
        (engine intake is load-ordered, not time-ordered) and may shed the
        offer; an accepted session is released back to the policy when it
        reaches a terminal state during :meth:`run`.  A drop-oldest decision
        evicts the oldest admitted session that has not started a round yet
        (an in-flight session cannot be unwound); with none available the
        offer is still honoured.
        """
        if self.intake is None:
            self.add_session(session)
            return True
        decision = self.intake.offer(len(self._sessions))
        if not decision.admitted:
            return False
        if getattr(decision, "evict_oldest", False):
            for existing in self._sessions:
                if (
                    existing.name in self._intake_admitted
                    and existing.rounds == 0
                    and not existing.done
                ):
                    self._sessions.remove(existing)
                    self._intake_admitted.discard(existing.name)
                    self.intake.released()
                    break
        self.add_session(session)
        self._intake_admitted.add(session.name)
        return True

    @property
    def sessions(self) -> list[NVariantSession]:
        """The registered sessions, in scheduling order."""
        return list(self._sessions)

    def run(self) -> EngineResult:
        """Interleave every session, one lockstep round per turn, to the end."""
        if not self._sessions:
            return EngineResult(sessions=[], scheduler_turns=0)
        turns = 0
        active = [s for s in self._sessions if not s.done]
        while active:
            turns += 1
            if turns > self.max_turns:
                raise RuntimeError(f"engine exceeded {self.max_turns} scheduling turns")
            for session in active:
                state = session.step()
                if state is SessionState.HALTED and self.halt_policy is HaltPolicy.HALT_ALL:
                    self.halt_all()
            for session in active:
                if session.done and session.name in self._intake_admitted:
                    self._intake_admitted.discard(session.name)
                    self.intake.released()
            active = [s for s in active if not s.done]
        return self._build_result(turns)

    def halt_all(self) -> None:
        """Stop every still-running session (the fleet-wide halt policy)."""
        for session in self._sessions:
            if not session.done:
                session.halt()

    def _build_result(self, turns: int) -> EngineResult:
        return EngineResult(
            sessions=[
                ScheduledSessionResult(
                    name=session.name,
                    state=session.state,
                    result=session.result(),
                    rounds=session.rounds,
                    virtual_elapsed=session.virtual_elapsed,
                )
                for session in self._sessions
            ],
            scheduler_turns=turns,
        )


def run_sessions(
    sessions: Iterable[NVariantSession],
    *,
    halt_policy: HaltPolicy = HaltPolicy.PER_SESSION,
    name: str = "engine",
) -> EngineResult:
    """Build an engine over *sessions* and run it to completion in one call."""
    engine = MultiSessionEngine(sessions, halt_policy=halt_policy, name=name)
    return engine.run()
