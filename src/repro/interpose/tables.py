"""Syscall-table interposition: monitoring policy as data, not code.

The monitor and wrapper layers historically hard-coded a handful of frozen
syscall sets (``DETECTION_SYSCALLS`` and the ``UID_*`` families in
:mod:`repro.core.monitor`, ``FD_SYSCALLS`` in :mod:`repro.core.wrappers`).
That made the comparator's coverage a property of the source code: widening
the monitored surface -- or narrowing it for an ablation -- meant editing the
dispatchers.  Following the classic kernel extension point (syscall-table
interception, lkmpg ch.10), this module turns the policy into a first-class
table: an :class:`InterpositionTable` maps every :class:`~repro.kernel.syscalls.Syscall`
to an :class:`InterpositionEntry` describing how the lockstep layers must
treat it, and the engine consults the session's *active* table instead of
module constants.

Two tables ship registered:

* ``"classic"`` reproduces the historical behaviour bit for bit.  It is
  built *definitionally* from the same frozen sets the dispatchers used to
  consult, so the old and new code paths cannot drift apart.
* ``"wide"`` extends monitoring to the thinly-covered families: ``fork`` /
  ``waitpid`` are denied outright (a served workload has no business
  forking; the wrapper reports a uniform ``EPERM`` without entering the
  kernel), ``kill`` fans out per variant so each variant's signal delivery
  is subject to its own privilege checks, and the externally-visible output
  family (``write``/``send``/``bind``/``listen``/...) is flagged so argument
  divergence classifies as :attr:`~repro.core.alarm.AlarmType.OUTPUT_MISMATCH`
  rather than a generic argument mismatch.

Policies (:class:`PolicyKind`) describe *how a round of equivalent requests
executes and is compared*:

* ``compare-args`` -- executed per variant; arguments compared verbatim
  (the detection calls of Table 2).
* ``compare-uid-decoded`` -- executed per variant; UID-typed arguments are
  compared after each variant's inverse reexpression (the setuid family).
* ``replicate`` -- executed once by variant 0, the result replicated to all
  (input and output calls; removes input non-determinism).
* ``fan-out-per-variant`` -- executed independently by every variant
  (credentials, detection state, exits, per-variant memory).
* ``passthrough`` -- executed per variant with no diversity semantics at
  all (the attacker's ``peek`` probe primitive).
* ``deny`` -- refused by the wrapper with a uniform ``EPERM`` before the
  kernel is entered; counted in ``WrapperStats.denied_calls``.

Orthogonal structural flags (``fd_arg``, ``creates_fd``, ``uid_args``,
``detection``, ``output``) carry what the dispatchers need beyond the
headline policy: descriptor-table alignment, UID argument positions for
alarm classification, and output-family tagging.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Mapping

from repro.kernel.syscalls import (
    DETECTION_SYSCALLS,
    INPUT_SYSCALLS,
    OUTPUT_SYSCALLS,
    Syscall,
    UID_COMPARISON_SYSCALLS,
    UID_PARAMETER_SYSCALLS,
)


class InterpositionError(ValueError):
    """An unknown interposition table was named (CLI exit-2 material)."""


class PolicyKind(enum.Enum):
    """How one system call is executed and compared across the variants."""

    COMPARE_ARGS = "compare-args"
    COMPARE_UID_DECODED = "compare-uid-decoded"
    REPLICATE = "replicate"
    FAN_OUT = "fan-out-per-variant"
    PASSTHROUGH = "passthrough"
    DENY = "deny"


@dataclasses.dataclass(frozen=True)
class InterpositionEntry:
    """Policy for one system call.

    ``fd_arg`` marks calls whose first argument is a descriptor (routed
    through the shared/unshared descriptor dispatch); ``creates_fd`` marks
    calls that install a new descriptor and must keep variant tables
    aligned; ``uid_args`` lists the argument positions carrying uid_t/gid_t
    values (drives UID-divergence classification); ``detection`` marks the
    Table-2 detection calls; ``output`` marks externally-visible calls whose
    argument divergence is an output mismatch.
    """

    syscall: Syscall
    policy: PolicyKind
    fd_arg: bool = False
    creates_fd: bool = False
    uid_args: tuple[int, ...] = ()
    detection: bool = False
    output: bool = False


#: The fallback for syscalls a table does not mention: executed per variant,
#: compared verbatim -- exactly the historical ``else`` branch.
_DEFAULT_ENTRY_POLICY = PolicyKind.FAN_OUT


class InterpositionTable:
    """A complete named mapping from syscalls to interposition entries.

    The table is immutable after construction and precomputes the frozen
    views the hot paths consult (detection set, UID families, descriptor
    sets), so consulting a table costs what consulting the old module
    constants did.
    """

    def __init__(
        self,
        name: str,
        entries: Iterable[InterpositionEntry],
        *,
        description: str = "",
    ):
        self.name = name
        self.description = description
        self._entries: dict[Syscall, InterpositionEntry] = {}
        for entry in entries:
            if entry.syscall in self._entries:
                raise ValueError(
                    f"duplicate interposition entry for {entry.syscall.value!r}"
                )
            self._entries[entry.syscall] = entry

        self.detection_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.detection
        )
        #: Detection calls comparing uid_t parameters (the cc_* family).
        self.uid_comparison_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.detection and e.uid_args
        )
        #: Non-detection calls taking uid_t/gid_t parameters, with positions.
        self.uid_parameter_syscalls: dict[Syscall, tuple[int, ...]] = {
            sc: e.uid_args
            for sc, e in self._entries.items()
            if e.uid_args and not e.detection
        }
        self.fd_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.fd_arg
        )
        self.descriptor_creating_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.creates_fd
        )
        self.replicated_syscalls = frozenset(
            sc
            for sc, e in self._entries.items()
            if e.policy is PolicyKind.REPLICATE
        )
        self.denied_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.policy is PolicyKind.DENY
        )
        self.output_syscalls = frozenset(
            sc for sc, e in self._entries.items() if e.output
        )

    # -- lookup ---------------------------------------------------------------

    def entry(self, syscall: Syscall) -> InterpositionEntry:
        """The entry for *syscall* (an implicit fan-out entry when absent)."""
        found = self._entries.get(syscall)
        if found is not None:
            return found
        return InterpositionEntry(syscall=syscall, policy=_DEFAULT_ENTRY_POLICY)

    def policy(self, syscall: Syscall) -> PolicyKind:
        """The headline policy for *syscall*."""
        return self.entry(syscall).policy

    def entries(self) -> Mapping[Syscall, InterpositionEntry]:
        """Read-only view of the explicit entries (for reports and docs)."""
        return dict(self._entries)

    def replaced(
        self, name: str, overrides: Iterable[InterpositionEntry], *, description: str = ""
    ) -> "InterpositionTable":
        """A derived table with *overrides* replacing the matching entries."""
        merged = dict(self._entries)
        for entry in overrides:
            merged[entry.syscall] = entry
        return InterpositionTable(
            name, merged.values(), description=description or self.description
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterpositionTable({self.name!r}, {len(self._entries)} entries)"


# ---------------------------------------------------------------------------
# The classic table: today's behaviour, derived from the historical sets
# ---------------------------------------------------------------------------

#: Calls whose first argument is a file descriptor (the historical
#: ``core.wrappers.FD_SYSCALLS``, restated here so the table owns the policy).
_CLASSIC_FD_SYSCALLS = frozenset(
    {
        Syscall.READ,
        Syscall.WRITE,
        Syscall.LSEEK,
        Syscall.FSTAT,
        Syscall.CLOSE,
        Syscall.RECV,
        Syscall.SEND,
        Syscall.SHUTDOWN,
        Syscall.BIND,
        Syscall.LISTEN,
    }
)

_CLASSIC_DESCRIPTOR_CREATING = frozenset({Syscall.SOCKET, Syscall.ACCEPT})

_CLASSIC_REPLICATED = frozenset(
    {Syscall.TIME, Syscall.GETRANDOM, Syscall.GETDENTS, Syscall.GETPID}
)


def _classic_entries() -> list[InterpositionEntry]:
    """Every syscall's classic entry, derived from the frozen policy sets."""
    entries = []
    once = (
        INPUT_SYSCALLS
        | OUTPUT_SYSCALLS
        | _CLASSIC_REPLICATED
        | _CLASSIC_DESCRIPTOR_CREATING
        | {Syscall.OPEN}
    )
    for sc in Syscall:
        detection = sc in DETECTION_SYSCALLS
        if detection:
            policy = PolicyKind.COMPARE_ARGS
        elif sc in UID_PARAMETER_SYSCALLS and sc not in once:
            policy = PolicyKind.COMPARE_UID_DECODED
        elif sc in once:
            policy = PolicyKind.REPLICATE
        elif sc is Syscall.PEEK:
            policy = PolicyKind.PASSTHROUGH
        else:
            policy = PolicyKind.FAN_OUT
        if sc in UID_COMPARISON_SYSCALLS:
            uid_args: tuple[int, ...] = (0, 1)
        else:
            uid_args = UID_PARAMETER_SYSCALLS.get(sc, ())
        entries.append(
            InterpositionEntry(
                syscall=sc,
                policy=policy,
                fd_arg=sc in _CLASSIC_FD_SYSCALLS,
                creates_fd=sc in _CLASSIC_DESCRIPTOR_CREATING,
                uid_args=uid_args,
                detection=detection,
            )
        )
    return entries


CLASSIC_TABLE = InterpositionTable(
    "classic",
    _classic_entries(),
    description=(
        "The historical monitoring surface, bit-for-bit: input replication, "
        "once-only output, per-variant credentials and detection calls."
    ),
)


# ---------------------------------------------------------------------------
# The wide table: fork/exec, signal and socket families actively monitored
# ---------------------------------------------------------------------------

def _wide_overrides() -> list[InterpositionEntry]:
    overrides = [
        # A served workload never forks mid-request; a variant that suddenly
        # wants to is more likely compromised than busy.  Deny uniformly at
        # the wrapper, without ever entering the kernel.
        InterpositionEntry(syscall=Syscall.FORK, policy=PolicyKind.DENY),
        InterpositionEntry(syscall=Syscall.WAITPID, policy=PolicyKind.DENY),
        # Signal delivery fans out so each variant's kill is subject to its
        # own credential checks -- a diverged target pid or signal number is
        # caught by the comparator before delivery, and classified as an
        # output mismatch (a signal is externally visible behaviour).
        InterpositionEntry(
            syscall=Syscall.KILL, policy=PolicyKind.FAN_OUT, output=True
        ),
    ]
    # Externally-visible calls: argument divergence means the variants tried
    # to emit different behaviour to the outside world -- classify it as an
    # output mismatch instead of a generic argument mismatch.
    classic = {e.syscall: e for e in _classic_entries()}
    for sc in sorted(OUTPUT_SYSCALLS | {Syscall.BIND, Syscall.LISTEN}, key=lambda s: s.value):
        if sc is Syscall.KILL:
            continue
        base = classic[sc]
        overrides.append(dataclasses.replace(base, output=True))
    return overrides


WIDE_TABLE = CLASSIC_TABLE.replaced(
    "wide",
    _wide_overrides(),
    description=(
        "The classic surface plus active monitoring of the fork/exec, signal "
        "and socket families: fork/waitpid denied, kill fanned out per "
        "variant, output-family divergence classified as output mismatch."
    ),
)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_TABLES: dict[str, InterpositionTable] = {}


def register_table(table: InterpositionTable) -> InterpositionTable:
    """Register *table* under its name (last registration wins)."""
    _TABLES[table.name] = table
    return table


def table_names() -> list[str]:
    """All registered table names, sorted."""
    return sorted(_TABLES)


def get_table(name: str) -> InterpositionTable:
    """Look up a registered table; unknown names raise :class:`InterpositionError`."""
    try:
        return _TABLES[name]
    except KeyError:
        raise InterpositionError(
            f"unknown interposition table {name!r}; registered tables: "
            f"{', '.join(table_names())}"
        ) from None


register_table(CLASSIC_TABLE)
register_table(WIDE_TABLE)
