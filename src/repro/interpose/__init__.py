"""Syscall-table interposition: named, data-driven monitoring policies.

See :mod:`repro.interpose.tables` for the model.  The public surface:

* :class:`InterpositionTable` / :class:`InterpositionEntry` /
  :class:`PolicyKind` -- the policy vocabulary.
* :data:`CLASSIC_TABLE` (``"classic"``) -- the historical monitoring surface,
  bit-for-bit.
* :data:`WIDE_TABLE` (``"wide"``) -- fork/exec, signal and socket families
  actively monitored.
* :func:`get_table` / :func:`register_table` / :func:`table_names` -- the
  registry; unknown names raise :class:`InterpositionError`, which the CLI
  renders as a clean exit-2 message.
"""

from repro.interpose.tables import (
    CLASSIC_TABLE,
    InterpositionEntry,
    InterpositionError,
    InterpositionTable,
    PolicyKind,
    WIDE_TABLE,
    get_table,
    register_table,
    table_names,
)

__all__ = [
    "CLASSIC_TABLE",
    "InterpositionEntry",
    "InterpositionError",
    "InterpositionTable",
    "PolicyKind",
    "WIDE_TABLE",
    "get_table",
    "register_table",
    "table_names",
]
