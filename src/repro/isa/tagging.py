"""Instruction-set tagging: per-variant instruction prefixes.

Table 1 of the paper lists the instruction-set tagging variation from the
original N-variant systems work::

    R_0(inst) = 0 || inst          R_0^-1(0 || inst) = inst
    R_1(inst) = 1 || inst          R_1^-1(1 || inst) = inst

Each variant's code is rewritten at build time so that every instruction is
prefixed with that variant's tag byte; the execution engine checks and strips
the tag before executing.  Code injected by an attacker arrives identically
in both variants, so it can carry at most one variant's tag -- the other
variant raises an illegal-instruction fault, which the monitor converts into
an alarm.
"""

from __future__ import annotations

from repro.isa.instructions import INSTRUCTION_SIZE, Instruction, decode_stream, encode_stream
from repro.kernel.errors import IllegalInstructionFault

#: Width of the tag prefix in bytes.
TAG_SIZE = 1

#: Length of one tagged instruction on the wire.
TAGGED_INSTRUCTION_SIZE = TAG_SIZE + INSTRUCTION_SIZE


def tag_byte(variant_index: int) -> int:
    """The tag value for variant *variant_index* (0x00 or 0x01)."""
    if variant_index not in (0, 1):
        raise ValueError("instruction tagging is defined for two variants")
    return variant_index


def tag_stream(instructions: list[Instruction], variant_index: int) -> bytes:
    """Apply ``R_i``: prefix every encoded instruction with the variant tag."""
    tag = bytes([tag_byte(variant_index)])
    return b"".join(tag + instruction.encode() for instruction in instructions)


def untag_stream(tagged: bytes, variant_index: int) -> list[Instruction]:
    """Apply ``R_i^-1``: check and strip tags, decoding the instructions.

    Raises :class:`IllegalInstructionFault` on the first instruction whose
    tag does not match the variant -- the detection event for code-injection
    attacks.
    """
    expected = tag_byte(variant_index)
    if len(tagged) % TAGGED_INSTRUCTION_SIZE:
        raise IllegalInstructionFault(
            f"tagged stream length {len(tagged)} is not a multiple of "
            f"{TAGGED_INSTRUCTION_SIZE}"
        )
    instructions = []
    for offset in range(0, len(tagged), TAGGED_INSTRUCTION_SIZE):
        tag = tagged[offset]
        if tag != expected:
            raise IllegalInstructionFault(
                f"instruction at offset {offset} carries tag {tag}, variant "
                f"{variant_index} expects {expected}"
            )
        raw = tagged[offset + TAG_SIZE : offset + TAGGED_INSTRUCTION_SIZE]
        instructions.append(Instruction.decode(raw))
    return instructions


def untag_single(tagged: bytes, variant_index: int) -> Instruction:
    """Check and strip the tag of a single instruction."""
    if len(tagged) != TAGGED_INSTRUCTION_SIZE:
        raise IllegalInstructionFault(
            f"expected {TAGGED_INSTRUCTION_SIZE} bytes for one tagged instruction"
        )
    return untag_stream(tagged, variant_index)[0]


def retag_stream(tagged: bytes, from_variant: int, to_variant: int) -> bytes:
    """Translate a tagged stream from one variant's tagging to another's.

    Used by tests to build the "correctly tagged for the other variant"
    control case: such a payload executes on the other variant but then
    faults on the first, so detection still holds.
    """
    instructions = untag_stream(tagged, from_variant)
    return tag_stream(instructions, to_variant)


def inject_untagged(benign_tagged: bytes, injected: list[Instruction], position: int) -> bytes:
    """Model a code-injection attack against a tagged instruction stream.

    The attacker overwrites part of the (tagged) code region with raw,
    untagged instruction bytes -- the attacker does not know where tag bytes
    fall, and even if they did, the same bytes go to both variants.  Returns
    the corrupted stream.
    """
    payload = encode_stream(injected)
    corrupted = bytearray(benign_tagged)
    end = min(len(corrupted), position + len(payload))
    corrupted[position:end] = payload[: end - position]
    return bytes(corrupted)


def strip_tags_unchecked(tagged: bytes) -> list[Instruction]:
    """Strip tags without checking them (analysis helper, not a variant path)."""
    instructions = []
    for offset in range(0, len(tagged) - TAGGED_INSTRUCTION_SIZE + 1, TAGGED_INSTRUCTION_SIZE):
        raw = tagged[offset + TAG_SIZE : offset + TAGGED_INSTRUCTION_SIZE]
        instructions.append(Instruction.decode(raw))
    return instructions
