"""Interpreter for the miniature ISA, with optional tag checking.

The interpreter is the *target interpreter* (in the paper's interpreters
model, Section 2.1) for the instruction-set tagging variation: it sits behind
the inverse reexpression function (:func:`repro.isa.tagging.untag_stream`)
and executes only instructions that carried the variant's tag.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.isa.instructions import Instruction, Opcode, REGISTER_COUNT
from repro.isa.tagging import TAGGED_INSTRUCTION_SIZE, untag_stream
from repro.kernel.errors import IllegalInstructionFault, SegmentationFault


@dataclasses.dataclass
class MachineState:
    """Registers, a small flat data memory, and a halt flag."""

    registers: list[int] = dataclasses.field(default_factory=lambda: [0] * REGISTER_COUNT)
    memory: bytearray = dataclasses.field(default_factory=lambda: bytearray(4096))
    pc: int = 0
    halted: bool = False
    syscall_log: list[tuple[int, tuple[int, ...]]] = dataclasses.field(default_factory=list)

    def read_register(self, index: int) -> int:
        """Read register *index*."""
        if not 0 <= index < REGISTER_COUNT:
            raise IllegalInstructionFault(f"register r{index} does not exist")
        return self.registers[index]

    def write_register(self, index: int, value: int) -> None:
        """Write register *index* (32-bit wraparound)."""
        if not 0 <= index < REGISTER_COUNT:
            raise IllegalInstructionFault(f"register r{index} does not exist")
        self.registers[index] = value & 0xFFFFFFFF

    def load(self, address: int) -> int:
        """Load a 32-bit word from data memory."""
        if not 0 <= address <= len(self.memory) - 4:
            raise SegmentationFault(f"load from 0x{address:08x}", address=address)
        return int.from_bytes(self.memory[address : address + 4], "little")

    def store(self, address: int, value: int) -> None:
        """Store a 32-bit word to data memory."""
        if not 0 <= address <= len(self.memory) - 4:
            raise SegmentationFault(f"store to 0x{address:08x}", address=address)
        self.memory[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")


class Interpreter:
    """Executes decoded instructions against a :class:`MachineState`."""

    def __init__(self, syscall_handler: Optional[Callable[[int, tuple[int, ...]], int]] = None):
        self.syscall_handler = syscall_handler

    def execute(self, state: MachineState, instruction: Instruction) -> None:
        """Execute a single instruction, mutating *state*."""
        opcode = instruction.opcode
        if opcode is Opcode.NOP:
            pass
        elif opcode is Opcode.LOADI:
            state.write_register(instruction.a, instruction.b)
        elif opcode is Opcode.MOV:
            state.write_register(instruction.a, state.read_register(instruction.b))
        elif opcode is Opcode.ADD:
            total = state.read_register(instruction.a) + state.read_register(instruction.b)
            state.write_register(instruction.a, total)
        elif opcode is Opcode.SUB:
            total = state.read_register(instruction.a) - state.read_register(instruction.b)
            state.write_register(instruction.a, total)
        elif opcode is Opcode.XOR:
            total = state.read_register(instruction.a) ^ state.read_register(instruction.b)
            state.write_register(instruction.a, total)
        elif opcode is Opcode.LOAD:
            address = state.read_register(instruction.b)
            state.write_register(instruction.a, state.load(address))
        elif opcode is Opcode.STORE:
            address = state.read_register(instruction.a)
            state.store(address, state.read_register(instruction.b))
        elif opcode is Opcode.JMP:
            state.pc = instruction.a
            return
        elif opcode is Opcode.JZ:
            if state.read_register(instruction.b) == 0:
                state.pc = instruction.a
                return
        elif opcode is Opcode.SYSCALL:
            number = state.read_register(0)
            args = tuple(state.read_register(i) for i in range(1, 4))
            state.syscall_log.append((number, args))
            if self.syscall_handler is not None:
                state.write_register(0, self.syscall_handler(number, args) & 0xFFFFFFFF)
        elif opcode is Opcode.HALT:
            state.halted = True
        else:  # pragma: no cover - Opcode enum is exhaustive
            raise IllegalInstructionFault(f"unknown opcode {opcode}")
        state.pc += 1

    def run(
        self,
        instructions: list[Instruction],
        *,
        state: Optional[MachineState] = None,
        max_steps: int = 10_000,
    ) -> MachineState:
        """Run a decoded instruction list until HALT or *max_steps*."""
        state = state if state is not None else MachineState()
        steps = 0
        while not state.halted and 0 <= state.pc < len(instructions):
            if steps >= max_steps:
                raise RuntimeError("interpreter exceeded maximum steps")
            self.execute(state, instructions[state.pc])
            steps += 1
        return state

    def run_tagged(
        self,
        tagged_stream: bytes,
        variant_index: int,
        *,
        state: Optional[MachineState] = None,
        max_steps: int = 10_000,
    ) -> MachineState:
        """Check tags, strip them and run -- the full variant execution path.

        This is the composition ``execute ∘ R_i^-1`` from the paper's model:
        an attack stream whose tags do not match raises
        :class:`IllegalInstructionFault` before any attacker instruction
        executes.
        """
        instructions = untag_stream(tagged_stream, variant_index)
        return self.run(instructions, state=state, max_steps=max_steps)


def tagged_stream_length(instruction_count: int) -> int:
    """Byte length of a tagged stream containing *instruction_count* instructions."""
    return instruction_count * TAGGED_INSTRUCTION_SIZE
