"""A tiny register instruction set.

Instruction-set tagging (Table 1 of the paper, introduced in the original
N-variant systems work) prepends a per-variant tag bit to every instruction;
the tag is checked and stripped before execution, so injected code -- which
necessarily carries the *same* bytes in both variants -- fails the tag check
in at least one of them.

To reproduce that variation we need an instruction stream to tag.  This
module defines a deliberately small register machine: enough to write the
attack payloads the paper cares about (open a file, spawn a shell, write to a
descriptor) and the benign snippets used in tests, without becoming a second
project.  Instructions are encoded to bytes so that tags are a concrete
representation-level transformation, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
import enum


class Opcode(enum.IntEnum):
    """Operation codes of the miniature ISA."""

    NOP = 0x00
    LOADI = 0x01      # rd <- immediate
    MOV = 0x02        # rd <- rs
    ADD = 0x03        # rd <- rd + rs
    SUB = 0x04        # rd <- rd - rs
    XOR = 0x05        # rd <- rd ^ rs
    LOAD = 0x06       # rd <- memory[rs]
    STORE = 0x07      # memory[rd] <- rs
    JMP = 0x08        # pc <- target
    JZ = 0x09         # if rs == 0: pc <- target
    SYSCALL = 0x0A    # invoke kernel service in r0 with args r1..r3
    HALT = 0x0F


#: Number of general-purpose registers.
REGISTER_COUNT = 8

#: Encoded instruction length in bytes (without any tag).
INSTRUCTION_SIZE = 4


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus up to two small operands."""

    opcode: Opcode
    a: int = 0
    b: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, Opcode):
            object.__setattr__(self, "opcode", Opcode(self.opcode))
        for name in ("a", "b"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFF:
                raise ValueError(f"operand {name}={value} out of range [0, 4095]")

    def encode(self) -> bytes:
        """Encode to the 4-byte wire format: opcode, a (12 bits), b (12 bits)."""
        packed = (int(self.opcode) << 24) | (self.a << 12) | self.b
        return packed.to_bytes(INSTRUCTION_SIZE, "big")

    @classmethod
    def decode(cls, raw: bytes) -> "Instruction":
        """Decode a 4-byte encoding back into an :class:`Instruction`."""
        if len(raw) != INSTRUCTION_SIZE:
            raise ValueError(f"expected {INSTRUCTION_SIZE} bytes, got {len(raw)}")
        packed = int.from_bytes(raw, "big")
        opcode = Opcode((packed >> 24) & 0xFF)
        a = (packed >> 12) & 0xFFF
        b = packed & 0xFFF
        return cls(opcode, a, b)

    def describe(self) -> str:
        """Readable rendering used in traces and alarm messages."""
        return f"{self.opcode.name} {self.a}, {self.b}"


def assemble(program: list[tuple]) -> list[Instruction]:
    """Assemble ``(opcode, a, b)`` tuples into instructions.

    Missing operands default to zero, so ``[(Opcode.NOP,), (Opcode.HALT,)]``
    is accepted.
    """
    instructions = []
    for entry in program:
        opcode, *operands = entry
        a = operands[0] if len(operands) > 0 else 0
        b = operands[1] if len(operands) > 1 else 0
        instructions.append(Instruction(Opcode(opcode), a, b))
    return instructions


def encode_stream(instructions: list[Instruction]) -> bytes:
    """Encode a list of instructions into a flat byte stream (no tags)."""
    return b"".join(instruction.encode() for instruction in instructions)


def decode_stream(raw: bytes) -> list[Instruction]:
    """Decode a flat (untagged) byte stream back into instructions."""
    if len(raw) % INSTRUCTION_SIZE:
        raise ValueError("stream length is not a multiple of the instruction size")
    return [
        Instruction.decode(raw[offset : offset + INSTRUCTION_SIZE])
        for offset in range(0, len(raw), INSTRUCTION_SIZE)
    ]
