"""Miniature instruction-set substrate for the instruction-tagging variation.

Provides a tiny register machine (:mod:`repro.isa.instructions`,
:mod:`repro.isa.interpreter`) and the per-variant instruction tagging scheme
(:mod:`repro.isa.tagging`) listed in Table 1 of the paper.
"""

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Opcode,
    REGISTER_COUNT,
    assemble,
    decode_stream,
    encode_stream,
)
from repro.isa.interpreter import Interpreter, MachineState, tagged_stream_length
from repro.isa.tagging import (
    TAG_SIZE,
    TAGGED_INSTRUCTION_SIZE,
    inject_untagged,
    retag_stream,
    strip_tags_unchecked,
    tag_byte,
    tag_stream,
    untag_single,
    untag_stream,
)

__all__ = [
    "INSTRUCTION_SIZE",
    "Instruction",
    "Interpreter",
    "MachineState",
    "Opcode",
    "REGISTER_COUNT",
    "TAGGED_INSTRUCTION_SIZE",
    "TAG_SIZE",
    "assemble",
    "decode_stream",
    "encode_stream",
    "inject_untagged",
    "retag_stream",
    "strip_tags_unchecked",
    "tag_byte",
    "tag_stream",
    "tagged_stream_length",
    "untag_single",
    "untag_stream",
]
