"""The paper's primary contribution: N-variant systems with data diversity.

This package layers the redundant-execution framework on top of the simulated
kernel:

* :mod:`repro.core.reexpression` -- reexpression functions and the inverse /
  disjointedness properties (Section 2).
* :mod:`repro.core.variations` -- the Table 1 variations (address
  partitioning, extended partitioning, instruction tagging, UID diversity).
* :mod:`repro.core.monitor`, :mod:`repro.core.wrappers`,
  :mod:`repro.core.nvariant` -- the lockstep engine, system-call wrappers
  (input replication, once-only output, unshared files) and the monitor
  (Sections 3.1, 3.4, 3.5).
* :mod:`repro.core.detection_calls` -- the Table 2 detection system calls.
* :mod:`repro.core.pipeline` -- the interpreters model of Section 2.1 as a
  small executable abstraction (Figure 2).
* :mod:`repro.core.properties` -- checkers for normal equivalence and
  detection.
"""

from repro.core.alarm import Alarm, AlarmType, DivergenceDetected
from repro.core.detection_calls import (
    CC_FAMILY_RATIONALE,
    COMPARISON_TO_CALL,
    DetectionCallSpec,
    TABLE2_DETECTION_CALLS,
    spec_for,
)
from repro.core.monitor import Monitor, MonitorStats
from repro.core.nvariant import (
    NVariantResult,
    NVariantSystem,
    UIDCodec,
    VariantContext,
    VariantOutcome,
    nvexec,
)
from repro.core.pipeline import (
    AppInterpreter,
    DataDiversityPipeline,
    PipelineRun,
    PipelineVariant,
    TargetInterpreter,
    faithful_app_interpreter,
    vulnerable_app_interpreter,
)
from repro.core.properties import (
    DetectionVerdict,
    EquivalenceVerdict,
    check_detection,
    check_normal_equivalence,
    check_variation_reexpression,
)
from repro.core.reexpression import (
    PropertyReport,
    ReexpressionFunction,
    check_disjointness,
    check_inverse_property,
    check_partial_overwrite_resilience,
    identity_reexpression,
    offset_reexpression,
    sample_domain,
    xor_reexpression,
)
from repro.core.variations import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    FullFlipUIDVariation,
    InstructionSetTagging,
    TABLE1_VARIATIONS,
    UID_MASK_31,
    UID_MASK_32,
    UIDVariation,
    Variation,
    VariationStack,
)
from repro.core.wrappers import SyscallWrappers, UnsharedFileRegistry, WrapperStats

__all__ = [
    "Alarm",
    "AlarmType",
    "AddressPartitioning",
    "AppInterpreter",
    "CC_FAMILY_RATIONALE",
    "COMPARISON_TO_CALL",
    "DataDiversityPipeline",
    "DetectionCallSpec",
    "DetectionVerdict",
    "DivergenceDetected",
    "EquivalenceVerdict",
    "ExtendedAddressPartitioning",
    "FullFlipUIDVariation",
    "InstructionSetTagging",
    "Monitor",
    "MonitorStats",
    "NVariantResult",
    "NVariantSystem",
    "PipelineRun",
    "PipelineVariant",
    "PropertyReport",
    "ReexpressionFunction",
    "SyscallWrappers",
    "TABLE1_VARIATIONS",
    "TABLE2_DETECTION_CALLS",
    "TargetInterpreter",
    "UIDCodec",
    "UIDVariation",
    "UID_MASK_31",
    "UID_MASK_32",
    "UnsharedFileRegistry",
    "VariantContext",
    "VariantOutcome",
    "Variation",
    "VariationStack",
    "WrapperStats",
    "check_detection",
    "check_disjointness",
    "check_inverse_property",
    "check_normal_equivalence",
    "check_partial_overwrite_resilience",
    "check_variation_reexpression",
    "faithful_app_interpreter",
    "identity_reexpression",
    "nvexec",
    "offset_reexpression",
    "sample_domain",
    "spec_for",
    "vulnerable_app_interpreter",
    "xor_reexpression",
]
