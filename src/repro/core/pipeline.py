"""The interpreters model of Section 2.1 as an executable abstraction.

The paper reasons about data diversity through a pipeline of interpreters:
external input flows through the application interpreter (which may contain a
vulnerability), and trusted data flows through the reexpression function
``R_i``; both meet at the *target interpreter*, which is preceded by the
inverse reexpression ``R_i^-1`` (Figure 2).  The N-variant monitor compares
what reaches the target interpreters of the different variants.

This module gives that picture a direct, small-scale realisation that is
independent of the full kernel/httpd machinery.  It is used by the
quickstart example and the Figure 2 benchmark to demonstrate the model on a
few lines of code, and by tests to validate the model-level claims (normal
equivalence on benign flows, guaranteed detection of injected values).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.core.alarm import Alarm, AlarmType
from repro.core.reexpression import ReexpressionFunction


@dataclasses.dataclass
class TargetInterpreter:
    """The interpreter that ultimately consumes values of the protected type.

    For the UID variation this stands for the kernel's credential machinery.
    ``apply`` performs the privileged action; the pipeline only invokes it
    when the monitor is satisfied.
    """

    name: str
    apply: Callable[[int], object]


@dataclasses.dataclass
class AppInterpreter:
    """The application layers between external input and the target interpreter.

    ``process`` receives the external input and the variant's trusted data
    value and returns the value that will be sent on to the target
    interpreter.  A *vulnerable* application interpreter lets crafted
    external input replace the trusted value entirely -- the essence of a
    data corruption attack: the attacker's bytes, identical in every variant,
    displace the per-variant reexpressed data.
    """

    name: str
    process: Callable[[bytes, int], int]


def faithful_app_interpreter(name: str = "app") -> AppInterpreter:
    """An application layer with no vulnerability: trusted data passes through."""
    return AppInterpreter(name=name, process=lambda external, trusted: trusted)


def vulnerable_app_interpreter(
    name: str = "vulnerable-app", *, trigger: bytes = b"EXPLOIT:"
) -> AppInterpreter:
    """An application layer with an injection vulnerability.

    If the external input starts with *trigger*, the remainder is parsed as
    an integer and *replaces* the trusted value -- the same concrete value in
    every variant, because external input is replicated.
    """

    def process(external: bytes, trusted: int) -> int:
        if external.startswith(trigger):
            try:
                return int(external[len(trigger):].strip() or b"0", 0)
            except ValueError:
                return trusted
        return trusted

    return AppInterpreter(name=name, process=process)


@dataclasses.dataclass
class PipelineVariant:
    """One variant of the data-diversity pipeline."""

    index: int
    reexpression: ReexpressionFunction
    app: AppInterpreter
    target: TargetInterpreter

    def run(self, external_input: bytes, trusted_value: int) -> tuple[int, int]:
        """Process one request; returns ``(concrete value, decoded value)``.

        The trusted value is reexpressed with ``R_i`` (this is the data the
        program/configuration carries in this variant), flows through the
        application interpreter together with the replicated external input,
        and is decoded with ``R_i^-1`` immediately before the target
        interpreter.
        """
        concrete = self.app.process(external_input, self.reexpression.forward(trusted_value))
        decoded = self.reexpression.inverse(concrete)
        return concrete, decoded


@dataclasses.dataclass
class PipelineRun:
    """Result of pushing one input through every variant of the pipeline."""

    external_input: bytes
    concrete_values: tuple[int, ...]
    decoded_values: tuple[int, ...]
    alarm: Optional[Alarm]
    target_result: object = None

    @property
    def attack_detected(self) -> bool:
        """True when the monitor refused to forward the value."""
        return self.alarm is not None


class DataDiversityPipeline:
    """An N-variant composition of app interpreter, ``R_i^-1`` and target.

    The pipeline-level monitor implements exactly the detection rule of
    Section 2.3: decode each variant's value with its inverse reexpression
    and raise an alarm unless all decoded values agree.  Only when they agree
    is the (single) semantic value forwarded to the target interpreter.
    """

    def __init__(
        self,
        reexpressions: Sequence[ReexpressionFunction],
        app: AppInterpreter,
        target: TargetInterpreter,
    ):
        if len(reexpressions) < 2:
            raise ValueError("a redundant pipeline needs at least two variants")
        self.variants = [
            PipelineVariant(index=i, reexpression=function, app=app, target=target)
            for i, function in enumerate(reexpressions)
        ]
        self.target = target
        self.alarms: list[Alarm] = []

    def process(self, external_input: bytes, trusted_value: int) -> PipelineRun:
        """Push one external input and one trusted value through all variants."""
        concrete = []
        decoded = []
        for variant in self.variants:
            concrete_value, decoded_value = variant.run(external_input, trusted_value)
            concrete.append(concrete_value)
            decoded.append(decoded_value)

        alarm: Optional[Alarm] = None
        target_result: object = None
        if len(set(decoded)) > 1:
            alarm = Alarm(
                alarm_type=AlarmType.UID_DIVERGENCE,
                description=(
                    "inverse reexpression produced divergent values at the "
                    f"target interpreter {self.target.name}"
                ),
                variant_values=tuple(decoded),
            )
            self.alarms.append(alarm)
        else:
            target_result = self.target.apply(decoded[0])

        return PipelineRun(
            external_input=external_input,
            concrete_values=tuple(concrete),
            decoded_values=tuple(decoded),
            alarm=alarm,
            target_result=target_result,
        )
