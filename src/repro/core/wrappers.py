"""System-call wrapper layer: input replication, once-only output, unshared files.

This is the reproduction of the kernel wrapper code described in Sections 3.1
and 3.4 of the paper.  Given one lockstep round of (already variation-
transformed) requests -- one per variant, already known to be equivalent by
the monitor -- the wrapper decides *how* to execute them:

* **once-and-replicate** for input calls, output calls and descriptor
  management on shared files: variant 0 performs the call, every variant
  receives the same result.  This removes input non-determinism and ensures
  attackers cannot send different data to different variants.
* **per-variant** for calls that touch per-variant state: credentials,
  detection calls, exits, and any I/O on *unshared* files.
* **unshared-file redirection** for opens of registered paths: variant *i*
  actually opens the variant-specific file (``/etc/passwd-i``), and all later
  I/O on that descriptor is performed separately by each variant.

Descriptor tables are kept slot-aligned across variants exactly as the paper
describes: when variant 0 opens a shared file at descriptor *n*, the same
open-file entry is installed at slot *n* of every other variant's table, and
a shared/unshared bitmap records how subsequent calls on that slot must be
handled.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.interpose import CLASSIC_TABLE, InterpositionTable, PolicyKind
from repro.kernel.errors import Errno
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult

# Backwards-compatible views of the classic interposition table's derived
# sets (identical to the historical frozen constants by construction); the
# wrapper itself dispatches on its *active* table, not on these.
FD_SYSCALLS = CLASSIC_TABLE.fd_syscalls
DESCRIPTOR_CREATING_SYSCALLS = CLASSIC_TABLE.descriptor_creating_syscalls
REPLICATED_SYSCALLS = frozenset(
    {Syscall.TIME, Syscall.GETRANDOM, Syscall.GETDENTS, Syscall.GETPID}
)


class UnsharedFileRegistry:
    """Mapping from original paths to per-variant diversified paths."""

    def __init__(self, num_variants: int):
        self.num_variants = num_variants
        self._paths: dict[str, list[str]] = {}

    def register(self, original: str, variant_paths: Sequence[str]) -> None:
        """Register *original* as unshared, backed by *variant_paths*."""
        if len(variant_paths) != self.num_variants:
            raise ValueError(
                f"expected {self.num_variants} variant paths for {original}, "
                f"got {len(variant_paths)}"
            )
        self._paths[original] = list(variant_paths)

    def register_mapping(self, mapping: dict[str, Sequence[str]]) -> None:
        """Register several unshared paths at once."""
        for original, variant_paths in mapping.items():
            self.register(original, variant_paths)

    def is_unshared(self, path: str) -> bool:
        """True when *path* has per-variant copies."""
        return path in self._paths

    def variant_path(self, path: str, index: int) -> str:
        """The path variant *index* should actually open for *path*."""
        return self._paths[path][index]

    def originals(self) -> list[str]:
        """All registered original paths."""
        return sorted(self._paths)


@dataclasses.dataclass
class WrapperStats:
    """Accounting used by the performance model (Table 3).

    ``replicated_calls`` were executed once on behalf of all variants;
    ``per_variant_calls`` were executed by every variant; ``checks`` counts
    cross-variant equivalence checks performed by the wrapper/monitor pair.
    """

    replicated_calls: int = 0
    per_variant_calls: int = 0
    unshared_opens: int = 0
    checks: int = 0
    denied_calls: int = 0


class SyscallWrappers:
    """Executes one lockstep round of equivalent requests.

    *How* each round executes is decided by the active
    :class:`~repro.interpose.InterpositionTable` (default ``"classic"``,
    reproducing the historical dispatch exactly): denied calls are refused
    before the kernel is entered, descriptor-creating and fd-carrying calls
    go through the shared/unshared descriptor machinery, replicated calls
    run once on behalf of all variants, and everything else fans out per
    variant.
    """

    def __init__(
        self,
        kernel: SimulatedKernel,
        processes: Sequence[Process],
        registry: UnsharedFileRegistry | None = None,
        table: InterpositionTable | None = None,
    ):
        self.kernel = kernel
        self.processes = list(processes)
        self.registry = registry if registry is not None else UnsharedFileRegistry(len(processes))
        self.table = table if table is not None else CLASSIC_TABLE
        self.stats = WrapperStats()
        self._unshared_fds: set[int] = set()

    # -- public API -----------------------------------------------------------

    def execute_round(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Execute one equivalent request per variant, returning per-variant results."""
        if len(requests) != len(self.processes):
            raise ValueError("one request per variant is required")
        self.stats.checks += 1
        name = requests[0].name
        entry = self.table.entry(name)

        if entry.policy is PolicyKind.DENY:
            return self._execute_deny(requests)
        if name is Syscall.OPEN:
            return self._execute_open(requests)
        if entry.creates_fd:
            return self._execute_descriptor_creating(requests)
        if entry.fd_arg:
            return self._execute_fd_call(requests)
        if entry.policy is PolicyKind.REPLICATE:
            return self._execute_once(requests)
        return self._execute_per_variant(requests)

    def is_unshared_fd(self, fd: int) -> bool:
        """True when descriptor *fd* currently refers to an unshared file."""
        return fd in self._unshared_fds

    # -- strategies ----------------------------------------------------------------

    def _execute_deny(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Refuse the call uniformly, without ever entering the kernel.

        Every variant observes the same ``EPERM``, so a denied call is not
        itself a divergence source -- it just removes the syscall from the
        attack surface (the wide table's treatment of ``fork``/``waitpid``).
        """
        self.stats.denied_calls += 1
        result = SyscallResult.failure(Errno.EPERM)
        return [result for _ in self.processes]

    def _execute_once(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Variant 0 performs the call; all variants receive the result."""
        self.stats.replicated_calls += 1
        result = self.kernel.execute(self.processes[0], requests[0])
        return [result for _ in self.processes]

    def _execute_per_variant(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Each variant performs its own call (credentials, detection, exits)."""
        self.stats.per_variant_calls += 1
        return [
            self.kernel.execute(process, request)
            for process, request in zip(self.processes, requests)
        ]

    def _execute_open(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Open handling: redirect unshared paths, mirror shared descriptors."""
        path = requests[0].args[0] if requests[0].args else ""
        if self.registry.is_unshared(path):
            self.stats.unshared_opens += 1
            self.stats.per_variant_calls += 1
            results = []
            for index, (process, request) in enumerate(zip(self.processes, requests)):
                redirected = request.with_args(
                    (self.registry.variant_path(path, index),) + tuple(request.args[1:])
                )
                results.append(self.kernel.execute(process, redirected))
            fds = {result.value for result in results if result.ok}
            if len(fds) > 1:
                raise RuntimeError(
                    "variant descriptor tables lost alignment on unshared open: "
                    f"{sorted(fds)}"
                )
            if fds:
                self._unshared_fds.add(fds.pop())
            return results

        self.stats.replicated_calls += 1
        result = self.kernel.execute(self.processes[0], requests[0])
        if result.ok:
            entry = self.processes[0].fds.get(result.value)
            for process in self.processes[1:]:
                process.fds.install(result.value, entry)
            self._unshared_fds.discard(result.value)
        return [result for _ in self.processes]

    def _execute_descriptor_creating(
        self, requests: Sequence[SyscallRequest]
    ) -> list[SyscallResult]:
        """Socket/accept: execute once and mirror the new descriptor."""
        self.stats.replicated_calls += 1
        result = self.kernel.execute(self.processes[0], requests[0])
        if result.ok:
            entry = self.processes[0].fds.get(result.value)
            for process in self.processes[1:]:
                process.fds.install(result.value, entry)
            self._unshared_fds.discard(result.value)
        return [result for _ in self.processes]

    def _execute_fd_call(self, requests: Sequence[SyscallRequest]) -> list[SyscallResult]:
        """Descriptor-based I/O: shared descriptors once, unshared per variant."""
        fd = requests[0].args[0] if requests[0].args else -1
        name = requests[0].name

        if isinstance(fd, int) and fd in self._unshared_fds:
            self.stats.per_variant_calls += 1
            results = [
                self.kernel.execute(process, request)
                for process, request in zip(self.processes, requests)
            ]
            if name is Syscall.CLOSE:
                self._unshared_fds.discard(fd)
            return results

        self.stats.replicated_calls += 1
        result = self.kernel.execute(self.processes[0], requests[0])
        if name is Syscall.CLOSE and isinstance(fd, int):
            # Keep the other variants' tables aligned: drop their mirrored entry.
            for process in self.processes[1:]:
                if fd in process.fds:
                    process.fds.close(fd)
        return [result for _ in self.processes]
