"""Checkers for the paper's two framework-level properties.

Section 2.2 (normal equivalence) and Section 2.3 (detection) are the two
obligations a variation designer must discharge.  The reexpression-level
pieces (inverse property, disjointedness) live in
:mod:`repro.core.reexpression`; this module provides the system-level
checkers that run an actual N-variant system:

* :func:`check_normal_equivalence` runs a benign workload and asserts that no
  alarm fires and that the variants produce identical observable behaviour.
* :func:`check_detection` runs an attack workload and asserts that the
  monitor raised an alarm before the attack's goal predicate became true.

Both return structured verdicts rather than raising, so the property-based
tests and the benchmark harness can aggregate them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from repro.core.nvariant import NVariantResult
from repro.core.reexpression import (
    PropertyReport,
    ReexpressionFunction,
    check_disjointness,
    check_inverse_property,
    sample_domain,
)
from repro.core.variations.base import Variation


@dataclasses.dataclass(frozen=True)
class EquivalenceVerdict:
    """Result of a normal-equivalence check."""

    holds: bool
    reason: str
    alarms: int

    def describe(self) -> str:
        """One-line summary."""
        status = "normal equivalence holds" if self.holds else "normal equivalence VIOLATED"
        return f"{status}: {self.reason}"


@dataclasses.dataclass(frozen=True)
class DetectionVerdict:
    """Result of a detection check."""

    detected: bool
    attack_succeeded: bool
    reason: str

    @property
    def holds(self) -> bool:
        """The detection property holds when no undetected compromise exists."""
        return self.detected or not self.attack_succeeded

    def describe(self) -> str:
        """One-line summary."""
        if self.detected:
            return f"attack detected: {self.reason}"
        if self.attack_succeeded:
            return f"DETECTION FAILED (undetected compromise): {self.reason}"
        return f"attack had no effect: {self.reason}"


def check_variation_reexpression(
    variation: Variation, samples: Iterable[int] | None = None
) -> list[PropertyReport]:
    """Check the inverse property of every ``R_i`` and pairwise disjointedness.

    This is the per-variation portion of Table 1's implicit claims.  Note
    that variant 0's inverse being the identity means disjointedness is a
    statement about variant 1's inverse never being the identity on any
    value.
    """
    values = list(samples) if samples is not None else sample_domain(bits=31)
    functions = variation.reexpressions()
    reports = [check_inverse_property(function, values) for function in functions]
    reports.append(check_disjointness(functions, values))
    return reports


def check_normal_equivalence(
    run_benign: Callable[[], NVariantResult],
    *,
    observable: Callable[[NVariantResult], Sequence] | None = None,
) -> EquivalenceVerdict:
    """Run a benign workload and verify the variants stayed equivalent.

    *run_benign* builds and runs an N-variant system on non-malicious input.
    *observable*, when given, extracts the externally visible behaviour from
    the result (e.g. HTTP responses); normal equivalence additionally
    requires that it matches what the unmodified program would produce, but
    at this level we check internal consistency: no alarms and clean exits.
    """
    result = run_benign()
    if result.alarms:
        return EquivalenceVerdict(
            holds=False,
            reason=f"monitor raised {len(result.alarms)} alarm(s) on benign input: "
            f"{result.first_alarm().describe()}",
            alarms=len(result.alarms),
        )
    if not all(variant.exited_normally for variant in result.variants):
        faults = [v.fault for v in result.variants if v.fault]
        return EquivalenceVerdict(
            holds=False,
            reason=f"variant faulted on benign input: {faults}",
            alarms=0,
        )
    if observable is not None:
        observed = observable(result)
        if len(set(map(repr, observed))) > 1:
            return EquivalenceVerdict(
                holds=False,
                reason="variants produced different observable outputs",
                alarms=0,
            )
    return EquivalenceVerdict(holds=True, reason="no alarms, all variants exited cleanly", alarms=0)


def check_detection(
    run_attack: Callable[[], NVariantResult],
    attack_goal_reached: Callable[[NVariantResult], bool],
) -> DetectionVerdict:
    """Run an attack workload and verify it is detected (or harmless).

    *attack_goal_reached* inspects the result (and, through closures, the
    host state) to decide whether the attacker achieved their goal -- e.g.
    the server kept serving with root privileges after the corruption.
    """
    result = run_attack()
    goal = attack_goal_reached(result)
    if result.attack_detected:
        return DetectionVerdict(
            detected=True,
            attack_succeeded=goal,
            reason=result.first_alarm().describe(),
        )
    return DetectionVerdict(
        detected=False,
        attack_succeeded=goal,
        reason="no alarm raised",
    )
