"""Metadata for the detection system calls (Table 2 of the paper).

The calls themselves are ordinary system calls (see
:class:`repro.kernel.syscalls.Syscall` and their single-variant semantics in
:class:`repro.kernel.kernel.SimulatedKernel`); their security value comes
from the monitor comparing their canonicalized arguments across variants.
This module records the signatures and descriptions from Table 2 so that the
benchmark can regenerate the table verbatim, and provides the source-level
rewrite rules the transformation of Section 3.3 uses (e.g. how a UID
comparison is rewritten into a ``cc_*`` call).
"""

from __future__ import annotations

import dataclasses

from repro.kernel.syscalls import Syscall


@dataclasses.dataclass(frozen=True)
class DetectionCallSpec:
    """Signature and purpose of one detection system call."""

    syscall: Syscall
    signature: str
    description: str
    rewrites: str


#: Table 2 of the paper, row by row.
TABLE2_DETECTION_CALLS: tuple[DetectionCallSpec, ...] = (
    DetectionCallSpec(
        syscall=Syscall.UID_VALUE,
        signature="uid_t uid_value(uid_t)",
        description=(
            "Compares parameter value (across variants) and returns passed value."
        ),
        rewrites="getpwuid(uid) -> getpwuid(uid_value(uid))",
    ),
    DetectionCallSpec(
        syscall=Syscall.COND_CHK,
        signature="bool cond_chk(bool)",
        description="Checks conditional value given between variants is the same.",
        rewrites="(pw == NULL) -> cond_chk(pw == NULL)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_EQ,
        signature="bool cc_eq(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for ==.",
        rewrites="(uid == VARIANT_ROOT) -> cc_eq(uid, VARIANT_ROOT)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_NEQ,
        signature="bool cc_neq(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for !=.",
        rewrites="(uid != other) -> cc_neq(uid, other)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_LT,
        signature="bool cc_lt(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for <.",
        rewrites="(uid < other) -> cc_lt(uid, other)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_LEQ,
        signature="bool cc_leq(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for <=.",
        rewrites="(uid <= other) -> cc_leq(uid, other)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_GT,
        signature="bool cc_gt(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for >.",
        rewrites="(uid > other) -> cc_gt(uid, other)",
    ),
    DetectionCallSpec(
        syscall=Syscall.CC_GEQ,
        signature="bool cc_geq(uid_t, uid_t)",
        description="Compares parameters and returns the truth value for >=.",
        rewrites="(uid >= other) -> cc_geq(uid, other)",
    ),
)

#: Mapping from C comparison operators to the cc_* calls that replace them.
COMPARISON_TO_CALL: dict[str, Syscall] = {
    "==": Syscall.CC_EQ,
    "!=": Syscall.CC_NEQ,
    "<": Syscall.CC_LT,
    "<=": Syscall.CC_LEQ,
    ">": Syscall.CC_GT,
    ">=": Syscall.CC_GEQ,
}

#: Why the cc_* family exists even though cond_chk could express it
#: (verbatim rationale from Section 3.5, condensed): one syscall instead of
#: two per comparison, and the variants' instruction streams stay identical
#: because the operator reversal happens in the kernel, not in user space.
CC_FAMILY_RATIONALE = (
    "Using a single cc_* call checks both UID operands with one system call "
    "and keeps the variants' instruction streams identical; a user-space "
    "comparison in variant 1 would need its operators reversed because the "
    "XOR reexpression inverts ordering."
)


def spec_for(syscall: Syscall) -> DetectionCallSpec:
    """Look up the Table 2 row for *syscall*."""
    for spec in TABLE2_DETECTION_CALLS:
        if spec.syscall is syscall:
            return spec
    raise KeyError(f"{syscall} is not a detection call")
