"""The four variations of Table 1 plus the ablation variants.

* :class:`~repro.core.variations.address.AddressPartitioning` -- disjoint
  high-bit address spaces (Cox et al. 2006).
* :class:`~repro.core.variations.address.ExtendedAddressPartitioning` --
  partitioning plus an extra offset (Bruschi et al. 2007).
* :class:`~repro.core.variations.instruction.InstructionSetTagging` --
  per-variant instruction tags (Cox et al. 2006).
* :class:`~repro.core.variations.uid.UIDVariation` -- the paper's UID data
  diversity (identity vs XOR 0x7FFFFFFF).
* :class:`~repro.core.variations.uid.FullFlipUIDVariation` -- the rejected
  XOR 0xFFFFFFFF design, kept for the Section 3.2 ablation.
* :class:`~repro.core.variations.address.OrbitAddressPartitioning` /
  :class:`~repro.core.variations.uid.OrbitUIDVariation` -- the N-ary
  generalisations of both families, sharing the
  :class:`~repro.memory.partition.PartitionScheme` protocol.
* :class:`~repro.core.variations.address.KeyedAddressPartitioning` /
  :class:`~repro.core.variations.uid.KeyedUIDVariation` -- the keyed
  variants: secret layouts/masks drawn from ``key_bits`` of entropy,
  rotated on session restart (see :mod:`repro.security`).
"""

from repro.core.variations.address import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    KeyedAddressPartitioning,
    OrbitAddressPartitioning,
)
from repro.core.variations.base import Variation, VariationStack
from repro.core.variations.fdspace import FdOrbitVariation
from repro.core.variations.instruction import InstructionSetTagging
from repro.core.variations.uid import (
    FullFlipUIDVariation,
    KeyedUIDVariation,
    OrbitUIDVariation,
    UID_MASK_31,
    UID_MASK_32,
    UIDVariation,
)

#: The variations exactly as listed in Table 1, in row order.
TABLE1_VARIATIONS = (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    InstructionSetTagging,
    UIDVariation,
)

__all__ = [
    "AddressPartitioning",
    "ExtendedAddressPartitioning",
    "FdOrbitVariation",
    "FullFlipUIDVariation",
    "InstructionSetTagging",
    "KeyedAddressPartitioning",
    "KeyedUIDVariation",
    "OrbitAddressPartitioning",
    "OrbitUIDVariation",
    "TABLE1_VARIATIONS",
    "UID_MASK_31",
    "UID_MASK_32",
    "UIDVariation",
    "Variation",
    "VariationStack",
]
