"""Base class for N-variant variations.

A *variation* is one diversity technique deployed across the variants: it
defines the reexpression function each variant uses for its target data type
(Table 1 of the paper) and the hooks the framework needs to keep the variants
normally equivalent:

* how to build each variant's address space (address-space partitioning),
* how to rewrite system-call arguments and results so that the kernel -- the
  *target interpreter* for UID data -- always operates on decoded values while
  each variant's user space only ever holds its own representation,
* how each variant's view of trusted external files is produced (unshared
  files), and
* how the monitor canonicalizes a variant's system call before comparing it
  with its siblings (the *canonicalization function* of the paper's model).

Variations are composable: an N-variant system may run address partitioning
and the UID variation simultaneously (Configuration 4 of Table 3 layers the
UID variation on the 2-variant baseline), as long as each hook composes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.reexpression import ReexpressionFunction, identity_reexpression
from repro.kernel.filesystem import FileSystem
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult
from repro.memory.address_space import AddressSpace


class Variation:
    """One diversity technique applied across all variants of a system."""

    #: Human-readable variation name (used in Table 1 reproduction).
    name: str = "identity"

    #: The data type whose representation is diversified.
    target_type: str = "none"

    #: Number of variants this variation is defined for.
    num_variants: int = 2

    #: Literature reference shown in the Table 1 reproduction.
    reference: str = ""

    #: The system calls :meth:`canonicalize_request` may rewrite, or ``None``
    #: when the set cannot be stated statically.  Declaring the footprint lets
    #: the lockstep engine's :class:`~repro.core.monitor.SyscallComparator`
    #: skip canonicalization entirely for unaffected calls; ``None`` disables
    #: that fast path, so an undeclared subclass stays correct, just slower.
    #: A subclass overriding :meth:`canonicalize_request` without redeclaring
    #: this in the same class is detected by :class:`VariationStack`, which
    #: then treats the footprint as unknown -- a stale inherited declaration
    #: can never silently bypass the subclass's canonicalization.
    canonical_syscalls: Optional[frozenset[Syscall]] = None

    #: The system calls :meth:`transform_request` may rewrite (same contract
    #: as :attr:`canonical_syscalls`, for the outgoing-request hook).
    transform_syscalls: Optional[frozenset[Syscall]] = None

    # -- reexpression functions ------------------------------------------------

    def reexpression(self, index: int) -> ReexpressionFunction:
        """The reexpression function ``R_index`` for variant *index*."""
        self._check_index(index)
        return identity_reexpression(self.target_type)

    def reexpressions(self) -> list[ReexpressionFunction]:
        """All variants' reexpression functions, in variant order."""
        return [self.reexpression(i) for i in range(self.num_variants)]

    # -- per-variant construction hooks -------------------------------------------

    def make_address_space(self, index: int) -> Optional[AddressSpace]:
        """Address space for variant *index*, or ``None`` if unaffected."""
        self._check_index(index)
        return None

    def setup_unshared_files(self, fs: FileSystem) -> dict[str, list[str]]:
        """Create per-variant copies of trusted external files.

        Returns a mapping ``original path -> [variant-0 path, variant-1 path,
        ...]`` which the wrapper layer registers as unshared (Section 3.4).
        The default variation needs none.
        """
        return {}

    # -- system-call hooks (target-interpreter boundary) ----------------------------

    def transform_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Rewrite an outgoing call so the kernel sees decoded values.

        This is where the inverse reexpression function ``R_index^-1`` is
        installed "in front of the target interpreter" (Figure 2).  The
        default is the identity.
        """
        self._check_index(index)
        return request

    def transform_result(
        self, index: int, request: SyscallRequest, result: SyscallResult
    ) -> SyscallResult:
        """Rewrite a call result so the variant sees its own representation.

        Trusted values produced by the kernel (e.g. ``getuid``'s return) are
        reexpressed with ``R_index`` before being handed to variant *index*.
        """
        self._check_index(index)
        return result

    def canonicalize_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Map a variant's call onto the canonical form the monitor compares.

        This implements the paper's canonicalization function: after applying
        it, normally-equivalent variants produce identical requests, and any
        remaining difference is a detected divergence.
        """
        self._check_index(index)
        return request

    # -- reporting ---------------------------------------------------------------

    def table1_row(self) -> dict[str, str]:
        """The row this variation contributes to the Table 1 reproduction."""
        functions = self.reexpressions()
        return {
            "variation": self.name,
            "target_type": self.target_type,
            "reexpression": "; ".join(
                f"R{i}: {f.formula or f.name}" for i, f in enumerate(functions)
            ),
            "inverse": "; ".join(
                f"R{i}^-1: {f.inverse_formula or f.name}" for i, f in enumerate(functions)
            ),
            "reference": self.reference,
        }

    # -- internals -----------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_variants:
            raise ValueError(
                f"variant index {index} out of range for {self.name} "
                f"({self.num_variants} variants)"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} target={self.target_type!r}>"


class VariationStack:
    """An ordered collection of variations applied together.

    Hooks compose in order for outgoing transformations and in reverse order
    for results, which keeps nested reexpressions well-formed even though the
    paper's variations touch disjoint data types.
    """

    def __init__(self, variations: Sequence[Variation], num_variants: int = 2):
        for variation in variations:
            if variation.num_variants != num_variants:
                raise ValueError(
                    f"variation {variation.name} supports {variation.num_variants} "
                    f"variants, system wants {num_variants}"
                )
        self.variations = list(variations)
        self.num_variants = num_variants
        self._canonical_syscalls = self._union_footprint(
            "canonical_syscalls", "canonicalize_request"
        )
        self._transform_syscalls = self._union_footprint(
            "transform_syscalls", "transform_request"
        )

    @staticmethod
    def _declaring_class(cls: type, attribute: str) -> Optional[type]:
        for klass in cls.__mro__:
            if attribute in vars(klass):
                return klass
        return None

    def _union_footprint(self, attribute: str, hook: str) -> Optional[frozenset[Syscall]]:
        footprint: frozenset[Syscall] = frozenset()
        for variation in self.variations:
            declared = getattr(variation, attribute)
            if declared is None:
                return None
            # A class that overrides the hook below where the footprint was
            # declared inherited a footprint that cannot be trusted to cover
            # the override; fall back to "unknown" so the comparator's fast
            # path is disabled rather than silently skipping the new rewrite.
            hook_class = self._declaring_class(type(variation), hook)
            declaration_class = self._declaring_class(type(variation), attribute)
            if (
                hook_class is not None
                and declaration_class is not None
                and hook_class is not declaration_class
                and issubclass(hook_class, declaration_class)
            ):
                return None
            footprint |= declared
        return footprint

    def canonical_syscalls(self) -> Optional[frozenset[Syscall]]:
        """Union of the stack's canonicalization footprints (``None`` = unknown)."""
        return self._canonical_syscalls

    def transform_syscalls(self) -> Optional[frozenset[Syscall]]:
        """Union of the stack's request-transformation footprints."""
        return self._transform_syscalls

    def make_address_space(self, index: int) -> AddressSpace:
        """First variation-provided address space, or a default flat space."""
        for variation in self.variations:
            space = variation.make_address_space(index)
            if space is not None:
                return space
        return AddressSpace()

    def setup_unshared_files(self, fs: FileSystem) -> dict[str, list[str]]:
        """Union of every variation's unshared-file mappings."""
        mapping: dict[str, list[str]] = {}
        for variation in self.variations:
            mapping.update(variation.setup_unshared_files(fs))
        return mapping

    def transform_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Compose every variation's outgoing transformation."""
        for variation in self.variations:
            request = variation.transform_request(index, request)
        return request

    def transform_result(
        self, index: int, request: SyscallRequest, result: SyscallResult
    ) -> SyscallResult:
        """Compose every variation's result transformation (reverse order)."""
        for variation in reversed(self.variations):
            result = variation.transform_result(index, request, result)
        return result

    def canonicalize_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Compose every variation's canonicalization function."""
        for variation in self.variations:
            request = variation.canonicalize_request(index, request)
        return request

    def __iter__(self):
        return iter(self.variations)

    def __len__(self) -> int:
        return len(self.variations)
