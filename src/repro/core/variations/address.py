"""Address-space partitioning variations (rows 1 and 2 of Table 1).

The original N-variant systems paper partitions the address space: variant 0
runs entirely at addresses with the high bit clear, variant 1 at addresses
with the high bit set (``R_1(a) = a + 0x80000000``).  An attack that injects
a complete absolute address can match at most one variant's partition; the
other variant faults when it dereferences the injected pointer and the
monitor reports the attack.

Bruschi et al.'s *extended* partitioning adds a further offset so that even
the low-order bytes of equivalent addresses differ across variants, restoring
(probabilistic) protection against partial pointer overwrites that leave the
high byte intact.  Both are reproduced here; the detection matrix benchmark
exercises the difference.
"""

from __future__ import annotations

from repro.core.reexpression import ReexpressionFunction, identity_reexpression, offset_reexpression
from repro.core.variations.base import Variation
from repro.memory.address_space import AddressSpace, PARTITION_BIT


class AddressPartitioning(Variation):
    """Two variants with disjoint (high-bit partitioned) address spaces."""

    name = "address-partitioning"
    target_type = "address"
    reference = "Cox et al., USENIX Security 2006 [16]"

    #: Partitioning diversifies the address *spaces*, not any syscall
    #: arguments, so no request is ever rewritten or canonicalized.
    canonical_syscalls = frozenset()
    transform_syscalls = frozenset()

    def __init__(self) -> None:
        self.num_variants = 2

    def reexpression(self, index: int) -> ReexpressionFunction:
        """``R_0(a) = a``; ``R_1(a) = a + 0x80000000``."""
        self._check_index(index)
        if index == 0:
            return identity_reexpression("address")
        return offset_reexpression(PARTITION_BIT, domain="address")

    def make_address_space(self, index: int) -> AddressSpace:
        """Variant *index*'s partitioned address space."""
        self._check_index(index)
        return AddressSpace(partition=index)


class ExtendedAddressPartitioning(AddressPartitioning):
    """Partitioning plus a per-variant offset (Bruschi et al. [9]).

    The extra offset makes even the low bytes of corresponding addresses
    differ between variants, so a partial (e.g. 3-low-byte) pointer overwrite
    is also detected with high probability.
    """

    name = "extended-address-partitioning"
    reference = "Bruschi et al., IWIA 2007 [9]"

    def __init__(self, offset: int = 0x00010000):
        super().__init__()
        if offset <= 0 or offset >= PARTITION_BIT:
            raise ValueError("offset must be positive and smaller than the partition bit")
        self.offset = offset

    def reexpression(self, index: int) -> ReexpressionFunction:
        """``R_0(a) = a``; ``R_1(a) = a + 0x80000000 + offset``."""
        self._check_index(index)
        if index == 0:
            return identity_reexpression("address")
        return offset_reexpression(PARTITION_BIT + self.offset, domain="address")

    def make_address_space(self, index: int) -> AddressSpace:
        """Variant *index*'s partitioned-and-offset address space."""
        self._check_index(index)
        return AddressSpace(partition=index, base_offset=self.offset if index == 1 else 0)
