"""Address-space partitioning variations (rows 1 and 2 of Table 1), N-ary.

The original N-variant systems paper partitions the address space: variant 0
runs entirely at addresses with the high bit clear, variant 1 at addresses
with the high bit set (``R_1(a) = a + 0x80000000``).  An attack that injects
a complete absolute address can match at most one variant's partition; every
other variant faults when it dereferences the injected pointer and the
monitor reports the attack.

Nothing in that argument is specific to N=2, and since PR 5 the variations
here are thin wrappers over a :class:`~repro.memory.partition.PartitionScheme`:
the scheme decides how the 32-bit space is carved (high bit, top
``ceil(log2 N)`` bits, Bruschi's offset-extended slices) and the variation
merely hands each variant its partition.  Bruschi et al.'s *extended*
partitioning adds a further per-variant offset so that even the low-order
bytes of equivalent addresses differ across variants, restoring
(probabilistic) protection against partial pointer overwrites that leave the
high byte intact.  The detection matrix benchmark exercises the difference.
"""

from __future__ import annotations

from typing import Optional

from repro.core.reexpression import ReexpressionFunction
from repro.core.variations.base import Variation
from repro.memory.address_space import AddressSpace
from repro.memory.partition import (
    ExtendedOrbitScheme,
    HighBitScheme,
    KeyedAddressScheme,
    KeyedOrbitScheme,
    OrbitScheme,
    PartitionScheme,
)


class AddressPartitioning(Variation):
    """N variants with pairwise-disjoint (scheme-carved) address spaces.

    With the defaults this is the paper's 2-variant high-bit split; any
    other ``num_variants`` selects the top-bits orbit scheme, and an
    explicit *scheme* overrides the choice entirely (it must carve regions
    and agree on the partition count).
    """

    name = "address-partitioning"
    target_type = "address"
    reference = "Cox et al., USENIX Security 2006 [16]"

    #: Partitioning diversifies the address *spaces*, not any syscall
    #: arguments, so no request is ever rewritten or canonicalized.
    canonical_syscalls = frozenset()
    transform_syscalls = frozenset()

    def __init__(
        self, num_variants: int = 2, *, scheme: Optional[PartitionScheme] = None
    ) -> None:
        if scheme is None:
            scheme = HighBitScheme() if num_variants == 2 else OrbitScheme(num_variants)
        if not scheme.carves_regions:
            raise ValueError(
                f"address partitioning needs a region-carving scheme, "
                f"got {scheme.kind!r}"
            )
        if scheme.num_partitions != num_variants:
            raise ValueError(
                f"scheme {scheme.kind!r} carves {scheme.num_partitions} partitions, "
                f"variation wants {num_variants}"
            )
        self.scheme = scheme
        self.num_variants = num_variants

    def reexpression(self, index: int) -> ReexpressionFunction:
        """``R_i(a) = a + base_of(i)`` (identity for partition 0)."""
        self._check_index(index)
        return self.scheme.reexpression(index, domain="address")

    def make_address_space(self, index: int) -> AddressSpace:
        """Variant *index*'s partitioned address space."""
        self._check_index(index)
        return AddressSpace(scheme=self.scheme, index=index)


class OrbitAddressPartitioning(AddressPartitioning):
    """The N-ary orbit: top-``ceil(log2 N)``-bits partitions for any N >= 2.

    The address-side sibling of the UID orbit: variant *i* owns the *i*-th
    top-bits slice of the address space, so any injected absolute pointer is
    valid in at most one of the N variants and every sibling's fault is the
    detection event.  The campaign layer sweeps variant count through it.
    """

    name = "address-orbit-partitioning"
    reference = "N-way extension of Cox et al. [16] (this reproduction)"

    def __init__(self, num_variants: int = 3):
        super().__init__(num_variants, scheme=OrbitScheme(num_variants))


class ExtendedAddressPartitioning(AddressPartitioning):
    """Partitioning plus a per-variant offset (Bruschi et al. [9]), N-ary.

    The extra offset makes even the low bytes of corresponding addresses
    differ between variants, so a partial (e.g. 3-low-byte) pointer overwrite
    is also detected with high probability.
    """

    name = "extended-address-partitioning"
    reference = "Bruschi et al., IWIA 2007 [9]"

    def __init__(self, offset: int = 0x00010000, num_variants: int = 2):
        super().__init__(
            num_variants, scheme=ExtendedOrbitScheme(num_variants, offset=offset)
        )
        self.offset = offset


class KeyedAddressPartitioning(AddressPartitioning):
    """Address partitioning with a *secret*, rotatable layout (keyed ASLR).

    Each variant's slice assignment and intra-slice slide come from a
    :class:`~repro.memory.partition.KeyedAddressScheme` keyed by ``key_bits``
    of entropy (optionally pinned by *seed*).  Against the public address
    schemes an attacker can aim an injected pointer into a known partition;
    here every probe is a guess in a ``2**key_bits`` space, and a guess that
    lands in *some* variant's partition -- but not everyone's -- diverges and
    alarms, which is the probes-to-first-alarm game the `entropy` experiment
    measures.  Keys rotate on session restart.
    """

    name = "keyed-address-partitioning"
    reference = "keyed ASLR-style extension of Cox et al. [16] (this reproduction)"

    def __init__(
        self,
        num_variants: int = 2,
        *,
        key_bits: int = 8,
        seed: "int | None" = None,
        slide: bool = True,
    ):
        scheme_cls = KeyedAddressScheme if slide else KeyedOrbitScheme
        super().__init__(
            num_variants,
            scheme=scheme_cls(num_variants, key_bits=key_bits, seed=seed),
        )
        self.key_bits = key_bits
        self.seed = seed
        self.slide = slide

    def rotate_key(self) -> None:
        """Redraw the slice assignments and slides in place.

        Address re-expressions and address spaces are derived from the
        scheme on demand, so no cached state needs refreshing.
        """
        self.scheme.rotate()

    def install_secret(self, values: "Sequence[int]") -> None:
        """Adopt a checkpointed secret layout (see :mod:`repro.load.checkpoint`).

        Everything address-side is derived from the scheme on demand, so the
        scheme-level install is the whole job.
        """
        self.scheme.install_secret(values)
