"""File-descriptor diversity: the fd-orbit variation.

The paper's data-diversity recipe applies to any value space whose concrete
representation a variant's user space holds but only the kernel interprets.
File descriptors qualify exactly like UIDs do: a served program treats them
as opaque tokens, passing them back unmodified into ``read``/``write``/
``close``, so each variant can hold its *own* re-expression of every
descriptor without disturbing normal equivalence.  An attacker who injects a
concrete fd value identically into every variant (e.g. to redirect a
``write`` at a descriptor the program never handed out) then loses: the
injected value decodes to N pairwise-different descriptors, the decoded
arguments diverge, and the monitor raises an alarm at the first use.

The mechanics mirror the UID variation, on the other side of the target
interpreter:

* descriptor *results* (``open``/``socket``/``accept``) are re-expressed
  with ``R_index`` before reaching variant *index*, so its user space only
  ever holds its own representation (variant 0 keeps real descriptors);
* descriptor *arguments* are decoded with ``R_index^-1`` ahead of the
  kernel, so the wrapper layer's shared/unshared dispatch and the kernel's
  descriptor tables always operate on real descriptors;
* canonicalization decodes the same argument positions, so the monitor
  compares semantic descriptors and normally-equivalent variants stay
  indistinguishable.

The re-expression itself is the :class:`~repro.memory.partition.FdOrbitScheme`
(top-bits orbit over the 32-bit value space), so fd diversity rides the same
N-ary partition-scheme protocol as the address and UID families and is swept
by the same invariant suite.
"""

from __future__ import annotations

from repro.core.reexpression import ReexpressionFunction
from repro.core.variations.base import Variation
from repro.interpose import CLASSIC_TABLE
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult
from repro.memory.partition import FdOrbitScheme

#: Calls whose first argument is a descriptor: the classic fd family plus
#: ``accept`` (which consumes the listening descriptor it drains).
FD_ARGUMENT_SYSCALLS = CLASSIC_TABLE.fd_syscalls | {Syscall.ACCEPT}

#: Calls whose successful result installs and returns a new descriptor.
FD_RESULT_SYSCALLS = frozenset({Syscall.OPEN, Syscall.SOCKET, Syscall.ACCEPT})


class FdOrbitVariation(Variation):
    """N variants each holding a distinct re-expression of every descriptor."""

    name = "fd-orbit-variation"
    target_type = "fd"
    reference = "descriptor-space extension of Section 3 (this reproduction)"

    #: Only descriptor-carrying calls are ever rewritten; everything else
    #: takes the comparator's batched fast path.
    canonical_syscalls = FD_ARGUMENT_SYSCALLS
    transform_syscalls = FD_ARGUMENT_SYSCALLS

    def __init__(self, num_variants: int = 2, *, scheme: "FdOrbitScheme | None" = None):
        if scheme is None:
            scheme = FdOrbitScheme(num_variants)
        if scheme.num_partitions != num_variants:
            raise ValueError(
                f"scheme {scheme.kind!r} carves {scheme.num_partitions} partitions, "
                f"variation wants {num_variants}"
            )
        self.scheme = scheme
        self.num_variants = num_variants

    # -- reexpression ------------------------------------------------------------

    def reexpression(self, index: int) -> ReexpressionFunction:
        """``R_i(fd) = fd + (i << shift)`` (identity for variant 0)."""
        self._check_index(index)
        return self.scheme.reexpression(index, domain="fd")

    def encode(self, index: int, fd: int) -> int:
        """Variant *index*'s concrete representation of real descriptor *fd*."""
        return self.scheme.translate(index, fd)

    def decode(self, index: int, value: int) -> int:
        """The real descriptor behind variant *index*'s concrete *value*."""
        return self.scheme.untranslate(index, value)

    # -- system-call hooks ---------------------------------------------------------

    def transform_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Apply ``R_index^-1`` to the descriptor argument ahead of the kernel."""
        self._check_index(index)
        if request.name in FD_ARGUMENT_SYSCALLS:
            return request.with_args(self._decode_fd_arg(index, request.args))
        return request

    def transform_result(
        self, index: int, request: SyscallRequest, result: SyscallResult
    ) -> SyscallResult:
        """Apply ``R_index`` to trusted descriptor results (open/socket/accept)."""
        self._check_index(index)
        if (
            request.name in FD_RESULT_SYSCALLS
            and result.ok
            and isinstance(result.value, int)
            and not isinstance(result.value, bool)
            and result.value >= 0
        ):
            return SyscallResult(value=self.encode(index, result.value), errno=result.errno)
        return result

    def canonicalize_request(self, index: int, request: SyscallRequest) -> SyscallRequest:
        """Decode the descriptor argument so the monitor compares real fds."""
        self._check_index(index)
        if request.name in FD_ARGUMENT_SYSCALLS:
            return request.with_args(self._decode_fd_arg(index, request.args))
        return request

    # -- helpers -------------------------------------------------------------------

    def _decode_fd_arg(self, index: int, args: tuple) -> tuple:
        if not args:
            return args
        value = args[0]
        # Negative values are error sentinels every variant holds verbatim
        # (failed results are never re-expressed), so decoding them would
        # *break* normal equivalence rather than preserve it.
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            return args
        return (self.decode(index, value),) + tuple(args[1:])
