"""Instruction-set tagging variation (row 3 of Table 1).

Each variant's code is rewritten so that every instruction carries that
variant's tag (``R_0(inst) = 0 || inst``, ``R_1(inst) = 1 || inst``); the tag
is checked and stripped immediately before execution.  Injected code is
identical in both variants, so it fails the tag check in at least one of
them -- detection without any secret.

The actual tagging machinery lives in :mod:`repro.isa.tagging`; this class
adapts it to the :class:`~repro.core.variations.base.Variation` interface so
it appears in the Table 1 reproduction and can be stacked with other
variations for code-injection experiments.
"""

from __future__ import annotations

from repro.core.reexpression import ReexpressionFunction
from repro.core.variations.base import Variation
from repro.isa.instructions import Instruction
from repro.isa.tagging import tag_stream, untag_stream


class InstructionSetTagging(Variation):
    """Per-variant instruction tags, checked and stripped before execution."""

    name = "instruction-set-tagging"
    target_type = "instruction"
    reference = "Cox et al., USENIX Security 2006 [16]"

    #: Tagging rewrites code images, not system calls.
    canonical_syscalls = frozenset()
    transform_syscalls = frozenset()

    def __init__(self) -> None:
        self.num_variants = 2

    def reexpression(self, index: int) -> ReexpressionFunction:
        """Reexpression over integer-encoded instructions.

        ``forward`` prepends the variant's tag above the 32-bit instruction
        encoding; ``inverse`` strips a *matching* tag, and maps any value
        whose tag does not match onto a per-variant fault sentinel (a
        negative value no instruction encoding can take).  The sentinel makes
        the partiality of the real inverse (an illegal-instruction trap)
        visible to the generic property checkers: an untagged or
        foreign-tagged value never decodes to the same thing in two variants,
        which is exactly the disjointedness argument for this variation.  The
        stream-level transformation used by the execution path is exposed
        through :meth:`tag_program` / :meth:`untag_program`.
        """
        self._check_index(index)

        def forward(value: int, i: int = index) -> int:
            return (i << 32) | (value & 0xFFFFFFFF)

        def inverse(value: int, i: int = index) -> int:
            if (value >> 32) == i:
                return value & 0xFFFFFFFF
            return -(i + 1)  # fault sentinel: "illegal instruction in variant i"

        return ReexpressionFunction(
            name=f"tag-{index}",
            forward=forward,
            inverse=inverse,
            domain="instruction",
            formula=f"R{index}(inst) = {index} || inst",
            inverse_formula=f"R{index}^-1({index} || inst) = inst",
        )

    def tag_program(self, instructions: list[Instruction], index: int) -> bytes:
        """Apply ``R_index`` to a whole program: the variant's code image."""
        self._check_index(index)
        return tag_stream(instructions, index)

    def untag_program(self, tagged: bytes, index: int) -> list[Instruction]:
        """Apply ``R_index^-1``: check tags and recover executable instructions.

        Raises :class:`~repro.kernel.errors.IllegalInstructionFault` when the
        stream carries wrong tags -- the detection event for injected code.
        """
        self._check_index(index)
        return untag_stream(tagged, index)
