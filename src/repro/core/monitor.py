"""The N-variant monitor.

The monitor observes every variant at system-call granularity (Section 3.1)
and raises an alarm whenever the variants are not in equivalent states:

* different system calls at the same lockstep point,
* the same call with non-equivalent arguments (compared *after* each
  variant's canonicalization function has been applied, so representation
  differences introduced by the reexpression functions do not trigger false
  alarms),
* a detection call (Table 2) observing divergent UID data or divergent
  control flow,
* a variant raising a hardware-style fault (segmentation fault, illegal
  instruction), or
* one variant terminating while another keeps running.

The monitor is deliberately passive: it classifies and records divergences;
the lockstep engine decides what to do about them (the default policy halts
the system, which is the paper's behaviour).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.alarm import Alarm, AlarmType
from repro.kernel.errors import VariantFault
from repro.kernel.syscalls import (
    DETECTION_SYSCALLS,
    Syscall,
    SyscallRequest,
    UID_COMPARISON_SYSCALLS,
    UID_PARAMETER_SYSCALLS,
)


@dataclasses.dataclass
class MonitorStats:
    """Counters describing how much checking the monitor performed."""

    lockstep_points: int = 0
    syscalls_compared: int = 0
    detection_calls_checked: int = 0
    alarms_raised: int = 0


class Monitor:
    """Compares canonicalized variant behaviour and records alarms."""

    def __init__(self) -> None:
        self.alarms: list[Alarm] = []
        self.stats = MonitorStats()

    # -- outcome ------------------------------------------------------------

    @property
    def attack_detected(self) -> bool:
        """True once any alarm has been raised."""
        return bool(self.alarms)

    def first_alarm(self) -> Optional[Alarm]:
        """The first alarm raised, if any."""
        return self.alarms[0] if self.alarms else None

    def _record(self, alarm: Alarm) -> Alarm:
        self.alarms.append(alarm)
        self.stats.alarms_raised += 1
        return alarm

    # -- syscall comparison ------------------------------------------------------

    def check_syscalls(
        self,
        canonical_requests: Sequence[SyscallRequest],
        *,
        lockstep_index: int | None = None,
    ) -> Optional[Alarm]:
        """Compare one lockstep round of canonicalized requests.

        Returns the alarm raised, or ``None`` when the variants are
        equivalent at this point.
        """
        self.stats.lockstep_points += 1
        self.stats.syscalls_compared += len(canonical_requests)

        names = {request.name for request in canonical_requests}
        if len(names) > 1:
            return self._record(
                Alarm(
                    alarm_type=AlarmType.SYSCALL_MISMATCH,
                    description="variants issued different system calls",
                    syscall="/".join(sorted(name.value for name in names)),
                    variant_values=tuple(r.describe() for r in canonical_requests),
                    lockstep_index=lockstep_index,
                )
            )

        name = canonical_requests[0].name
        if name in DETECTION_SYSCALLS:
            self.stats.detection_calls_checked += 1

        args = [request.args for request in canonical_requests]
        if all(arg == args[0] for arg in args[1:]):
            return None

        alarm_type = self._classify_argument_mismatch(name)
        return self._record(
            Alarm(
                alarm_type=alarm_type,
                description=self._mismatch_description(name),
                syscall=name.value,
                variant_values=tuple(args),
                lockstep_index=lockstep_index,
            )
        )

    @staticmethod
    def _classify_argument_mismatch(name: Syscall) -> AlarmType:
        if name is Syscall.COND_CHK:
            return AlarmType.CONTROL_FLOW_DIVERGENCE
        if name is Syscall.UID_VALUE or name in UID_COMPARISON_SYSCALLS:
            return AlarmType.UID_DIVERGENCE
        if name in UID_PARAMETER_SYSCALLS:
            return AlarmType.UID_DIVERGENCE
        return AlarmType.ARGUMENT_MISMATCH

    @staticmethod
    def _mismatch_description(name: Syscall) -> str:
        if name is Syscall.COND_CHK:
            return "variants evaluated a UID-dependent condition differently"
        if name is Syscall.UID_VALUE or name in UID_COMPARISON_SYSCALLS:
            return "variants observed non-equivalent UID values"
        if name in UID_PARAMETER_SYSCALLS:
            return "variants passed non-equivalent UIDs to a credential call"
        return "variants passed non-equivalent arguments"

    # -- faults and lifecycle -------------------------------------------------------

    def report_fault(
        self,
        variant_index: int,
        fault: VariantFault,
        *,
        lockstep_index: int | None = None,
    ) -> Alarm:
        """Record that a variant trapped (segfault, illegal instruction, kill)."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.VARIANT_FAULT,
                description=f"variant {variant_index} faulted: {fault.kind}: {fault.message}",
                faulting_variant=variant_index,
                lockstep_index=lockstep_index,
            )
        )

    def report_lifecycle_divergence(
        self,
        description: str,
        *,
        lockstep_index: int | None = None,
        variant_values: tuple = (),
    ) -> Alarm:
        """Record that variants disagreed about continuing vs terminating."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.LIFECYCLE_DIVERGENCE,
                description=description,
                variant_values=variant_values,
                lockstep_index=lockstep_index,
            )
        )

    def report_output_mismatch(
        self,
        syscall: Syscall,
        variant_values: tuple,
        *,
        lockstep_index: int | None = None,
    ) -> Alarm:
        """Record divergent output data noticed by the wrapper layer."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.OUTPUT_MISMATCH,
                description="variants attempted to emit different output data",
                syscall=syscall.value,
                variant_values=variant_values,
                lockstep_index=lockstep_index,
            )
        )
