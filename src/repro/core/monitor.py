"""The N-variant monitor.

The monitor observes every variant at system-call granularity (Section 3.1)
and raises an alarm whenever the variants are not in equivalent states:

* different system calls at the same lockstep point,
* the same call with non-equivalent arguments (compared *after* each
  variant's canonicalization function has been applied, so representation
  differences introduced by the reexpression functions do not trigger false
  alarms),
* a detection call (Table 2) observing divergent UID data or divergent
  control flow,
* a variant raising a hardware-style fault (segmentation fault, illegal
  instruction), or
* one variant terminating while another keeps running.

The monitor is deliberately passive: it classifies and records divergences;
the lockstep engine decides what to do about them (the default policy halts
the system, which is the paper's behaviour).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.alarm import Alarm, AlarmType
from repro.interpose import CLASSIC_TABLE, InterpositionTable
from repro.kernel.errors import VariantFault
from repro.kernel.syscalls import Syscall, SyscallRequest

# Re-exported for backwards compatibility: the classification families now
# live on the interposition table, and these module names are views of the
# classic table's derived sets (identical by construction).
DETECTION_SYSCALLS = CLASSIC_TABLE.detection_syscalls
UID_COMPARISON_SYSCALLS = CLASSIC_TABLE.uid_comparison_syscalls
UID_PARAMETER_SYSCALLS = CLASSIC_TABLE.uid_parameter_syscalls


@dataclasses.dataclass
class MonitorStats:
    """Counters describing how much checking the monitor performed.

    ``alarm_breakdown`` maps syscall name (or alarm-type value for alarms
    without a syscall, e.g. variant faults) to the number of alarms raised
    there -- the per-syscall divergence breakdown experiment telemetry
    surfaces.
    """

    lockstep_points: int = 0
    syscalls_compared: int = 0
    detection_calls_checked: int = 0
    alarms_raised: int = 0
    fast_path_rounds: int = 0
    alarm_breakdown: dict[str, int] = dataclasses.field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (fresh accounting for a new run).

        Structural on purpose: a counter added to the dataclass can never be
        forgotten here and survive a reset.  Fields with a default factory
        (the breakdown dict) reset to a fresh instance of it.
        """
        for field in dataclasses.fields(self):
            if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                setattr(self, field.name, field.default_factory())  # type: ignore[misc]
            else:
                setattr(self, field.name, 0)


class Monitor:
    """Compares canonicalized variant behaviour and records alarms.

    Classification families (detection calls, UID parameters and
    comparisons, output-tagged calls) come from the active
    :class:`~repro.interpose.InterpositionTable`; the default is the
    ``"classic"`` table, which reproduces the historical frozen-set
    behaviour exactly.
    """

    def __init__(self, table: InterpositionTable | None = None) -> None:
        self.table = table if table is not None else CLASSIC_TABLE
        self.alarms: list[Alarm] = []
        self.stats = MonitorStats()

    def reset(self) -> None:
        """Forget recorded alarms and zero the stats counters."""
        self.alarms.clear()
        self.stats.reset()

    # -- outcome ------------------------------------------------------------

    @property
    def attack_detected(self) -> bool:
        """True once any alarm has been raised."""
        return bool(self.alarms)

    def first_alarm(self) -> Optional[Alarm]:
        """The first alarm raised, if any."""
        return self.alarms[0] if self.alarms else None

    def _record(self, alarm: Alarm) -> Alarm:
        self.alarms.append(alarm)
        self.stats.alarms_raised += 1
        key = alarm.syscall if alarm.syscall else alarm.alarm_type.value
        breakdown = self.stats.alarm_breakdown
        breakdown[key] = breakdown.get(key, 0) + 1
        return alarm

    # -- syscall comparison ------------------------------------------------------

    def check_syscalls(
        self,
        canonical_requests: Sequence[SyscallRequest],
        *,
        lockstep_index: int | None = None,
    ) -> Optional[Alarm]:
        """Compare one lockstep round of canonicalized requests.

        Returns the alarm raised, or ``None`` when the variants are
        equivalent at this point.
        """
        self.stats.lockstep_points += 1
        self.stats.syscalls_compared += len(canonical_requests)

        names = {request.name for request in canonical_requests}
        if len(names) > 1:
            return self._record(
                Alarm(
                    alarm_type=AlarmType.SYSCALL_MISMATCH,
                    description="variants issued different system calls",
                    syscall="/".join(sorted(name.value for name in names)),
                    variant_values=tuple(r.describe() for r in canonical_requests),
                    lockstep_index=lockstep_index,
                )
            )

        name = canonical_requests[0].name
        if name in self.table.detection_syscalls:
            self.stats.detection_calls_checked += 1

        args = [request.args for request in canonical_requests]
        if all(arg == args[0] for arg in args[1:]):
            return None

        alarm_type = self._classify_argument_mismatch(name)
        return self._record(
            Alarm(
                alarm_type=alarm_type,
                description=self._mismatch_description(name),
                syscall=name.value,
                variant_values=tuple(args),
                lockstep_index=lockstep_index,
            )
        )

    def _classify_argument_mismatch(self, name: Syscall) -> AlarmType:
        if name is Syscall.COND_CHK:
            return AlarmType.CONTROL_FLOW_DIVERGENCE
        if name is Syscall.UID_VALUE or name in self.table.uid_comparison_syscalls:
            return AlarmType.UID_DIVERGENCE
        if name in self.table.uid_parameter_syscalls:
            return AlarmType.UID_DIVERGENCE
        if name in self.table.output_syscalls:
            return AlarmType.OUTPUT_MISMATCH
        return AlarmType.ARGUMENT_MISMATCH

    def _mismatch_description(self, name: Syscall) -> str:
        if name is Syscall.COND_CHK:
            return "variants evaluated a UID-dependent condition differently"
        if name is Syscall.UID_VALUE or name in self.table.uid_comparison_syscalls:
            return "variants observed non-equivalent UID values"
        if name in self.table.uid_parameter_syscalls:
            return "variants passed non-equivalent UIDs to a credential call"
        if name in self.table.output_syscalls:
            return "variants attempted divergent externally-visible behaviour"
        return "variants passed non-equivalent arguments"

    # -- faults and lifecycle -------------------------------------------------------

    def report_fault(
        self,
        variant_index: int,
        fault: VariantFault,
        *,
        lockstep_index: int | None = None,
    ) -> Alarm:
        """Record that a variant trapped (segfault, illegal instruction, kill)."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.VARIANT_FAULT,
                description=f"variant {variant_index} faulted: {fault.kind}: {fault.message}",
                faulting_variant=variant_index,
                lockstep_index=lockstep_index,
            )
        )

    def report_lifecycle_divergence(
        self,
        description: str,
        *,
        lockstep_index: int | None = None,
        variant_values: tuple = (),
    ) -> Alarm:
        """Record that variants disagreed about continuing vs terminating."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.LIFECYCLE_DIVERGENCE,
                description=description,
                variant_values=variant_values,
                lockstep_index=lockstep_index,
            )
        )

    def report_output_mismatch(
        self,
        syscall: Syscall,
        variant_values: tuple,
        *,
        lockstep_index: int | None = None,
    ) -> Alarm:
        """Record divergent output data noticed by the wrapper layer."""
        return self._record(
            Alarm(
                alarm_type=AlarmType.OUTPUT_MISMATCH,
                description="variants attempted to emit different output data",
                syscall=syscall.value,
                variant_values=variant_values,
                lockstep_index=lockstep_index,
            )
        )


class SyscallComparator:
    """Per-session fast path for the lockstep point's comparison work.

    Every lockstep round the engine must (a) canonicalize each variant's
    request so representation differences don't trigger false alarms and
    (b) inverse-reexpress each request's diversified arguments before the
    kernel sees them.  Both rewrites touch only a small, statically known set
    of system calls (for the UID variation: the setuid family, the cc_*
    comparisons, and ``uid_value``), while the bulk of a web workload is
    reads, writes, opens and socket calls that no variation rewrites.

    The comparator precomputes the union of the variations' declared rewrite
    footprints (:attr:`~repro.core.variations.base.Variation.canonical_syscalls`
    and :attr:`~repro.core.variations.base.Variation.transform_syscalls`) so
    those common rounds skip the per-variation hook walk entirely and fall
    into one batched tuple comparison.  A variation that cannot declare its
    footprint (``None``) disables the corresponding fast path, so correctness
    never depends on the declaration being present -- only speed does.
    """

    def __init__(
        self,
        variations: "VariationStack",
        monitor: Monitor,
        table: InterpositionTable | None = None,
    ):
        self.variations = variations
        self.monitor = monitor
        self.table = table if table is not None else monitor.table
        self._detection = self.table.detection_syscalls
        self._canonical_affected = variations.canonical_syscalls()
        self._transform_affected = variations.transform_syscalls()

    def check_round(
        self,
        requests: Sequence[SyscallRequest],
        *,
        lockstep_index: int | None = None,
    ) -> Optional[Alarm]:
        """Canonicalize-and-compare one lockstep round of raw requests.

        Equivalent to canonicalizing every request through the variation
        stack and calling :meth:`Monitor.check_syscalls`, but skips the
        canonicalization walk for syscalls no variation rewrites.
        """
        first = requests[0]
        affected = self._canonical_affected
        if affected is not None and first.name not in affected:
            name_uniform = all(r.name is first.name for r in requests[1:])
            if name_uniform:
                args = first.args
                if all(r.args == args for r in requests[1:]):
                    stats = self.monitor.stats
                    stats.lockstep_points += 1
                    stats.syscalls_compared += len(requests)
                    stats.fast_path_rounds += 1
                    if first.name in self._detection:
                        stats.detection_calls_checked += 1
                    return None
            # A divergence (or mixed names): fall through to the slow path so
            # the alarm carries the same classification and rendering as ever.
        canonical = [
            self.variations.canonicalize_request(index, request)
            for index, request in enumerate(requests)
        ]
        return self.monitor.check_syscalls(canonical, lockstep_index=lockstep_index)

    def transform_round(self, requests: Sequence[SyscallRequest]) -> list[SyscallRequest]:
        """Apply each variant's outgoing request transformation for one round.

        Every request's own name is checked (not just variant 0's): a
        mixed-name round executed under ``halt_on_alarm=False`` must still
        decode the UID-carrying calls of the variants that issued them.
        """
        affected = self._transform_affected
        if affected is not None and all(r.name not in affected for r in requests):
            return list(requests)
        return [
            self.variations.transform_request(index, request)
            for index, request in enumerate(requests)
        ]
