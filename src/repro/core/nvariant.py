"""The lockstep N-variant execution engine.

This is the reproduction of the paper's ``nvexec`` framework: it launches N
variants of a program, synchronises them at system-call boundaries, routes
every call through the monitor and the wrapper layer, and converts any
divergence into an alarm.

Programs are generator coroutines (see :mod:`repro.kernel.scheduler`); a
*program factory* builds one generator per variant from a
:class:`VariantContext` carrying that variant's process, address space and
embedded data codec.  The codec is how the reproduction models the build-time
source transformation of Section 3.3: the transformed program asks its
context for the variant's representation of UID constants instead of using
literal values.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Optional, Sequence

from repro.core.alarm import Alarm, AlarmType
from repro.core.monitor import Monitor
from repro.core.variations.base import Variation, VariationStack
from repro.core.variations.uid import UIDVariation
from repro.core.wrappers import SyscallWrappers, UnsharedFileRegistry, WrapperStats
from repro.kernel.errors import VariantFault
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.libc import Libc
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult

Program = Generator[SyscallRequest, SyscallResult, Any]


class UIDCodec:
    """A variant's embedded view of UID representations.

    Transformed programs (Section 3.3) replace every UID constant ``c`` with
    ``R_i(c)``; in this reproduction the program calls ``codec.constant(c)``
    at the points where the source transformation would have substituted the
    literal.  For an untransformed program, or for variant 0, the codec is
    the identity.
    """

    def __init__(self, encode: Callable[[int], int], decode: Callable[[int], int]):
        self._encode = encode
        self._decode = decode

    @classmethod
    def identity(cls) -> "UIDCodec":
        """The codec of an untransformed program."""
        return cls(lambda value: value, lambda value: value)

    def constant(self, uid: int) -> int:
        """The variant's representation of the trusted UID constant *uid*."""
        return self._encode(uid)

    def encode(self, uid: int) -> int:
        """Alias of :meth:`constant`; reads better in data-flow contexts."""
        return self._encode(uid)

    def decode(self, value: int) -> int:
        """Semantic UID behind the variant's concrete *value*."""
        return self._decode(value)

    @property
    def root(self) -> int:
        """The variant's representation of root (``VARIANT_ROOT`` in the paper)."""
        return self._encode(0)


@dataclasses.dataclass
class VariantContext:
    """Everything a variant program needs at construction time."""

    index: int
    process: Process
    libc: Libc
    uid_codec: UIDCodec

    @property
    def address_space(self):
        """The variant's address space (possibly partitioned)."""
        return self.process.address_space


@dataclasses.dataclass
class VariantOutcome:
    """Final state of one variant after a lockstep run."""

    index: int
    exit_code: Optional[int]
    fault: Optional[str]
    return_value: Any = None
    syscall_count: int = 0

    @property
    def exited_normally(self) -> bool:
        """True when the variant finished without trapping."""
        return self.fault is None


@dataclasses.dataclass
class NVariantResult:
    """Outcome of running an N-variant system to completion (or to an alarm)."""

    alarms: list[Alarm]
    variants: list[VariantOutcome]
    lockstep_rounds: int
    wrapper_stats: WrapperStats
    monitor: Monitor

    @property
    def attack_detected(self) -> bool:
        """True when the monitor raised at least one alarm."""
        return bool(self.alarms)

    @property
    def completed_normally(self) -> bool:
        """True when every variant exited cleanly and no alarm fired."""
        return not self.alarms and all(v.exited_normally for v in self.variants)

    def first_alarm(self) -> Optional[Alarm]:
        """The first alarm raised, if any."""
        return self.alarms[0] if self.alarms else None

    def describe(self) -> str:
        """Readable multi-line summary for examples and reports."""
        lines = [
            f"lockstep rounds: {self.lockstep_rounds}",
            f"alarms: {len(self.alarms)}",
        ]
        for alarm in self.alarms:
            lines.append(f"  {alarm.describe()}")
        for variant in self.variants:
            status = "ok" if variant.exited_normally else f"fault: {variant.fault}"
            lines.append(
                f"  variant {variant.index}: exit={variant.exit_code} "
                f"syscalls={variant.syscall_count} [{status}]"
            )
        return "\n".join(lines)


@dataclasses.dataclass
class _VariantRuntime:
    """Internal per-variant bookkeeping for the lockstep loop."""

    context: VariantContext
    program: Program
    started: bool = False
    finished: bool = False
    fault: Optional[VariantFault] = None
    return_value: Any = None
    pending_result: Optional[SyscallResult] = None
    pending_request: Optional[SyscallRequest] = None


class NVariantSystem:
    """Runs N variants of one program in system-call lockstep."""

    def __init__(
        self,
        kernel: SimulatedKernel,
        program_factory: Callable[[VariantContext], Program],
        variations: Sequence[Variation] = (),
        *,
        num_variants: int = 2,
        halt_on_alarm: bool = True,
        max_rounds: int = 2_000_000,
        name: str = "nvariant",
    ):
        self.kernel = kernel
        self.program_factory = program_factory
        self.variations = VariationStack(list(variations), num_variants)
        self.num_variants = num_variants
        self.halt_on_alarm = halt_on_alarm
        self.max_rounds = max_rounds
        self.name = name
        self.monitor = Monitor()

        registry = UnsharedFileRegistry(num_variants)
        registry.register_mapping(self.variations.setup_unshared_files(kernel.fs))

        self._contexts: list[VariantContext] = []
        processes: list[Process] = []
        for index in range(num_variants):
            process = kernel.spawn_process(
                f"{name}-v{index}",
                address_space=self.variations.make_address_space(index),
            )
            processes.append(process)
            self._contexts.append(
                VariantContext(
                    index=index,
                    process=process,
                    libc=Libc(),
                    uid_codec=self._build_codec(index),
                )
            )
        self.wrappers = SyscallWrappers(kernel, processes, registry)

    # -- construction helpers --------------------------------------------------

    def _build_codec(self, index: int) -> UIDCodec:
        for variation in self.variations:
            if isinstance(variation, UIDVariation):
                return UIDCodec(
                    encode=lambda value, v=variation, i=index: v.encode(i, value),
                    decode=lambda value, v=variation, i=index: v.decode(i, value),
                )
        return UIDCodec.identity()

    @property
    def contexts(self) -> list[VariantContext]:
        """The per-variant contexts (useful for inspection in tests)."""
        return self._contexts

    @property
    def processes(self) -> list[Process]:
        """The per-variant kernel processes."""
        return [context.process for context in self._contexts]

    # -- the lockstep loop ------------------------------------------------------------

    def run(self) -> NVariantResult:
        """Run the system until completion or (by default) the first alarm."""
        runtimes = [
            _VariantRuntime(context=context, program=self.program_factory(context))
            for context in self._contexts
        ]
        rounds = 0
        while rounds < self.max_rounds:
            rounds += 1
            self._advance_all(runtimes, rounds)

            active = [r for r in runtimes if not r.finished]
            faulted = [r for r in runtimes if r.fault is not None]

            if faulted:
                for runtime in faulted:
                    if not self._already_reported(runtime):
                        self.monitor.report_fault(
                            runtime.context.index, runtime.fault, lockstep_index=rounds
                        )
                if self.halt_on_alarm:
                    self._halt(runtimes)
                    break
                for runtime in faulted:
                    runtime.fault = None  # keep going without re-reporting

            if not active:
                break

            if len(active) != len(runtimes):
                finished_indices = tuple(r.context.index for r in runtimes if r.finished)
                self.monitor.report_lifecycle_divergence(
                    "some variants terminated while others kept running",
                    lockstep_index=rounds,
                    variant_values=finished_indices,
                )
                if self.halt_on_alarm:
                    self._halt(runtimes)
                    break
                # Without halting there is nothing sensible to synchronise on.
                break

            requests = [r.pending_request for r in runtimes]
            if any(request is None for request in requests):
                continue

            transformed = [
                self.variations.transform_request(r.context.index, request)
                for r, request in zip(runtimes, requests)
            ]
            canonical = [
                self.variations.canonicalize_request(r.context.index, request)
                for r, request in zip(runtimes, requests)
            ]
            alarm = self.monitor.check_syscalls(canonical, lockstep_index=rounds)
            if alarm is not None and self.halt_on_alarm:
                self._halt(runtimes)
                break

            raw_results = self.wrappers.execute_round(transformed)
            for runtime, request, raw in zip(runtimes, requests, raw_results):
                runtime.pending_result = self.variations.transform_result(
                    runtime.context.index, request, raw
                )
                runtime.pending_request = None
                if request.name is Syscall.EXIT or not runtime.context.process.alive:
                    runtime.finished = True
                    runtime.program.close()
        else:
            raise RuntimeError(f"lockstep engine exceeded {self.max_rounds} rounds")

        return self._build_result(runtimes, rounds)

    # -- loop internals ---------------------------------------------------------------------

    def _advance_all(self, runtimes: list[_VariantRuntime], round_index: int) -> None:
        """Advance every unfinished variant to its next system call."""
        for runtime in runtimes:
            if runtime.finished or runtime.pending_request is not None:
                continue
            try:
                if not runtime.started:
                    runtime.pending_request = runtime.program.send(None)
                    runtime.started = True
                else:
                    runtime.pending_request = runtime.program.send(runtime.pending_result)
            except StopIteration as stop:
                runtime.return_value = stop.value
                runtime.finished = True
                if runtime.context.process.alive and runtime.context.process.exit_code is None:
                    runtime.context.process.exit(0)
            except VariantFault as fault:
                runtime.fault = fault
                runtime.finished = True
                runtime.context.process.fault(f"{fault.kind}: {fault.message}")

    def _already_reported(self, runtime: _VariantRuntime) -> bool:
        return any(
            alarm.alarm_type is AlarmType.VARIANT_FAULT
            and alarm.faulting_variant == runtime.context.index
            for alarm in self.monitor.alarms
        )

    def _halt(self, runtimes: list[_VariantRuntime]) -> None:
        """Stop every variant (the paper's halt-on-divergence policy)."""
        for runtime in runtimes:
            if not runtime.finished:
                runtime.finished = True
                runtime.program.close()
            process = runtime.context.process
            if process.alive:
                process.fault("halted by monitor after divergence")

    def _build_result(self, runtimes: list[_VariantRuntime], rounds: int) -> NVariantResult:
        variants = []
        for runtime in runtimes:
            process = runtime.context.process
            variants.append(
                VariantOutcome(
                    index=runtime.context.index,
                    exit_code=process.exit_code,
                    fault=process.fault_reason if runtime.fault or process.fault_reason else None,
                    return_value=runtime.return_value,
                    syscall_count=process.stats.syscall_count,
                )
            )
        return NVariantResult(
            alarms=list(self.monitor.alarms),
            variants=variants,
            lockstep_rounds=rounds,
            wrapper_stats=self.wrappers.stats,
            monitor=self.monitor,
        )


def nvexec(
    kernel: SimulatedKernel,
    program_factory: Callable[[VariantContext], Program],
    variations: Sequence[Variation] = (),
    *,
    num_variants: int = 2,
    halt_on_alarm: bool = True,
    name: str = "nvariant",
) -> NVariantResult:
    """Launch and run an N-variant system in one call (the paper's ``nvexec``)."""
    system = NVariantSystem(
        kernel,
        program_factory,
        variations,
        num_variants=num_variants,
        halt_on_alarm=halt_on_alarm,
        name=name,
    )
    return system.run()
