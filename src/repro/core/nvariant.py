"""The lockstep N-variant execution engine.

This is the reproduction of the paper's ``nvexec`` framework: it launches N
variants of a program, synchronises them at system-call boundaries, routes
every call through the monitor and the wrapper layer, and converts any
divergence into an alarm.

Programs are generator coroutines (see :mod:`repro.kernel.scheduler`); a
*program factory* builds one generator per variant from a
:class:`VariantContext` carrying that variant's process, address space and
embedded data codec.  The codec is how the reproduction models the build-time
source transformation of Section 3.3: the transformed program asks its
context for the variant's representation of UID constants instead of using
literal values.

The lockstep loop itself lives in :mod:`repro.engine.session`, where it is a
resumable *session* that a cooperative scheduler can interleave with other
sessions; :class:`NVariantSystem` is the single-session (M=1) facade kept for
the original API.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Optional, Sequence

from repro.core.alarm import Alarm
from repro.core.monitor import Monitor
from repro.core.variations.base import Variation, VariationStack
from repro.core.wrappers import SyscallWrappers, WrapperStats
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.libc import Libc
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallRequest, SyscallResult

Program = Generator[SyscallRequest, SyscallResult, Any]


class UIDCodec:
    """A variant's embedded view of UID representations.

    Transformed programs (Section 3.3) replace every UID constant ``c`` with
    ``R_i(c)``; in this reproduction the program calls ``codec.constant(c)``
    at the points where the source transformation would have substituted the
    literal.  For an untransformed program, or for variant 0, the codec is
    the identity.
    """

    def __init__(self, encode: Callable[[int], int], decode: Callable[[int], int]):
        self._encode = encode
        self._decode = decode

    @classmethod
    def identity(cls) -> "UIDCodec":
        """The codec of an untransformed program."""
        return cls(lambda value: value, lambda value: value)

    def constant(self, uid: int) -> int:
        """The variant's representation of the trusted UID constant *uid*."""
        return self._encode(uid)

    def encode(self, uid: int) -> int:
        """Alias of :meth:`constant`; reads better in data-flow contexts."""
        return self._encode(uid)

    def decode(self, value: int) -> int:
        """Semantic UID behind the variant's concrete *value*."""
        return self._decode(value)

    @property
    def root(self) -> int:
        """The variant's representation of root (``VARIANT_ROOT`` in the paper)."""
        return self._encode(0)


@dataclasses.dataclass
class VariantContext:
    """Everything a variant program needs at construction time."""

    index: int
    process: Process
    libc: Libc
    uid_codec: UIDCodec

    @property
    def address_space(self):
        """The variant's address space (possibly partitioned)."""
        return self.process.address_space


@dataclasses.dataclass
class VariantOutcome:
    """Final state of one variant after a lockstep run."""

    index: int
    exit_code: Optional[int]
    fault: Optional[str]
    return_value: Any = None
    syscall_count: int = 0

    @property
    def exited_normally(self) -> bool:
        """True when the variant finished without trapping."""
        return self.fault is None


@dataclasses.dataclass
class NVariantResult:
    """Outcome of running an N-variant system to completion (or to an alarm)."""

    alarms: list[Alarm]
    variants: list[VariantOutcome]
    lockstep_rounds: int
    wrapper_stats: WrapperStats
    monitor: Monitor

    @property
    def attack_detected(self) -> bool:
        """True when the monitor raised at least one alarm."""
        return bool(self.alarms)

    @property
    def completed_normally(self) -> bool:
        """True when every variant exited cleanly and no alarm fired."""
        return not self.alarms and all(v.exited_normally for v in self.variants)

    def first_alarm(self) -> Optional[Alarm]:
        """The first alarm raised, if any."""
        return self.alarms[0] if self.alarms else None

    def describe(self) -> str:
        """Readable multi-line summary for examples and reports."""
        lines = [
            f"lockstep rounds: {self.lockstep_rounds}",
            f"alarms: {len(self.alarms)}",
        ]
        for alarm in self.alarms:
            lines.append(f"  {alarm.describe()}")
        for variant in self.variants:
            status = "ok" if variant.exited_normally else f"fault: {variant.fault}"
            lines.append(
                f"  variant {variant.index}: exit={variant.exit_code} "
                f"syscalls={variant.syscall_count} [{status}]"
            )
        return "\n".join(lines)


class NVariantSystem:
    """Runs N variants of one program in system-call lockstep.

    Since the introduction of the concurrent engine this class is a thin
    facade: it builds one :class:`~repro.engine.session.NVariantSession`
    (the M=1 special case of the multi-session engine) and drives it to
    completion.  All historical attributes -- ``monitor``, ``wrappers``,
    ``contexts``, ``processes`` -- remain available and reference the
    session's per-session state.
    """

    def __init__(
        self,
        kernel: SimulatedKernel,
        program_factory: Callable[[VariantContext], Program],
        variations: Sequence[Variation] = (),
        *,
        num_variants: int = 2,
        halt_on_alarm: bool = True,
        max_rounds: int = 2_000_000,
        name: str = "nvariant",
        interposition: str = "classic",
    ):
        # Deferred import: repro.engine.session imports this module for the
        # shared context/result dataclasses.
        from repro.engine.session import NVariantSession

        self.session = NVariantSession(
            kernel,
            program_factory,
            variations,
            num_variants=num_variants,
            halt_on_alarm=halt_on_alarm,
            max_rounds=max_rounds,
            name=name,
            interposition=interposition,
        )
        self.kernel = kernel
        self.program_factory = program_factory
        self.num_variants = num_variants
        self.name = name

    # halt_on_alarm and max_rounds are read by the lockstep loop at run time,
    # so they forward to the session -- assigning them after construction
    # keeps working as it did before the engine refactor.

    @property
    def halt_on_alarm(self) -> bool:
        """Whether the first alarm stops the system (the paper's policy)."""
        return self.session.halt_on_alarm

    @halt_on_alarm.setter
    def halt_on_alarm(self, value: bool) -> None:
        self.session.halt_on_alarm = value

    @property
    def max_rounds(self) -> int:
        """Upper bound on lockstep rounds before the run is aborted."""
        return self.session.max_rounds

    @max_rounds.setter
    def max_rounds(self, value: int) -> None:
        self.session.max_rounds = value

    @property
    def variations(self) -> VariationStack:
        """The session's variation stack."""
        return self.session.variations

    @property
    def monitor(self) -> Monitor:
        """The session's monitor (fresh per session, fresh stats per run)."""
        return self.session.monitor

    @property
    def wrappers(self) -> SyscallWrappers:
        """The session's syscall wrapper layer."""
        return self.session.wrappers

    @property
    def contexts(self) -> list[VariantContext]:
        """The per-variant contexts (useful for inspection in tests)."""
        return self.session.contexts

    @property
    def processes(self) -> list[Process]:
        """The per-variant kernel processes."""
        return self.session.processes

    def run(self) -> NVariantResult:
        """Run the system until completion or (by default) the first alarm."""
        return self.session.run()


def nvexec(
    kernel: SimulatedKernel,
    program_factory: Callable[[VariantContext], Program],
    variations: Sequence[Variation] = (),
    *,
    num_variants: int = 2,
    halt_on_alarm: bool = True,
    name: str = "nvariant",
) -> NVariantResult:
    """Launch and run an N-variant system in one call (the paper's ``nvexec``)."""
    system = NVariantSystem(
        kernel,
        program_factory,
        variations,
        num_variants=num_variants,
        halt_on_alarm=halt_on_alarm,
        name=name,
    )
    return system.run()
