"""Reexpression functions and their algebra.

Data diversity (Section 2 of the paper) builds each variant from a
*reexpression function* ``R_i`` and its inverse ``R_i^-1``.  Two properties
carry the entire security argument:

* **inverse property** -- ``∀x: R_i^-1(R_i(x)) = x`` -- needed for normal
  equivalence: a correctly transformed variant behaves like the original
  program on benign inputs.
* **disjointedness property** -- ``∀x: R_0^-1(x) ≠ R_1^-1(x)`` -- needed for
  detection: an attacker-injected concrete value decodes to *different*
  semantic values in the two variants, so the monitor sees a divergence the
  moment the value is used.

:class:`ReexpressionFunction` packages a forward/inverse pair with a domain
description; the module-level helpers check the two properties over samples
or exhaustively over small domains, and are reused by the Table 1 benchmark
and the hypothesis property tests.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence


@dataclasses.dataclass(frozen=True)
class ReexpressionFunction:
    """A named reexpression function with its inverse.

    ``forward`` maps original (semantic) values to the variant's concrete
    representation; ``inverse`` maps concrete representations back.  The
    ``domain`` string documents the target data type from Table 1 (addresses,
    instructions, UIDs, ...), and ``formula`` is the human-readable formula
    printed in reproduction of that table.
    """

    name: str
    forward: Callable[[int], int]
    inverse: Callable[[int], int]
    domain: str = "integer"
    formula: str = ""
    inverse_formula: str = ""

    def __call__(self, value: int) -> int:
        """Apply the forward reexpression."""
        return self.forward(value)

    def invert(self, value: int) -> int:
        """Apply the inverse reexpression."""
        return self.inverse(value)

    def round_trips(self, value: int) -> bool:
        """True when the inverse property holds for *value*."""
        return self.inverse(self.forward(value)) == value


def identity_reexpression(domain: str = "integer") -> ReexpressionFunction:
    """The identity reexpression used for variant 0 in every paper variation."""
    return ReexpressionFunction(
        name="identity",
        forward=lambda value: value,
        inverse=lambda value: value,
        domain=domain,
        formula="R(x) = x",
        inverse_formula="R^-1(x) = x",
    )


def xor_reexpression(mask: int, domain: str = "uid") -> ReexpressionFunction:
    """XOR-with-constant reexpression (self-inverse), e.g. the paper's R_1."""
    return ReexpressionFunction(
        name=f"xor-0x{mask:08X}",
        forward=lambda value: value ^ mask,
        inverse=lambda value: value ^ mask,
        domain=domain,
        formula=f"R(x) = x XOR 0x{mask:08X}",
        inverse_formula=f"R^-1(x) = x XOR 0x{mask:08X}",
    )


def offset_reexpression(offset: int, modulus: int = 1 << 32, domain: str = "address") -> ReexpressionFunction:
    """Additive-offset reexpression, e.g. address partitioning's ``a + 0x80000000``."""
    return ReexpressionFunction(
        name=f"offset-0x{offset:08X}",
        forward=lambda value: (value + offset) % modulus,
        inverse=lambda value: (value - offset) % modulus,
        domain=domain,
        formula=f"R(a) = a + 0x{offset:08X}",
        inverse_formula=f"R^-1(a) = a - 0x{offset:08X}",
    )


# ---------------------------------------------------------------------------
# Property checks (Sections 2.2 and 2.3)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PropertyReport:
    """Outcome of checking a reexpression property over a set of samples."""

    property_name: str
    holds: bool
    samples_checked: int
    counterexample: int | None = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "holds" if self.holds else f"FAILS at 0x{self.counterexample:08X}"
        return f"{self.property_name}: {status} ({self.samples_checked} samples)"


def check_inverse_property(
    function: ReexpressionFunction, samples: Iterable[int]
) -> PropertyReport:
    """Check ``R^-1(R(x)) = x`` over *samples*."""
    count = 0
    for value in samples:
        count += 1
        if not function.round_trips(value):
            return PropertyReport("inverse", False, count, counterexample=value)
    return PropertyReport("inverse", True, count)


def check_disjointness(
    inverses: Sequence[ReexpressionFunction], samples: Iterable[int]
) -> PropertyReport:
    """Check ``∀x: R_0^-1(x) ≠ R_1^-1(x) ≠ ...`` pairwise over *samples*.

    The paper states the property for two variants; we check all pairs so
    systems with more than two variants get the same guarantee.
    """
    count = 0
    for value in samples:
        count += 1
        decoded = [function.invert(value) for function in inverses]
        if len(set(decoded)) != len(decoded):
            return PropertyReport("disjointedness", False, count, counterexample=value)
    return PropertyReport("disjointedness", True, count)


def check_partial_overwrite_resilience(
    inverses: Sequence[ReexpressionFunction],
    originals: Sequence[int],
    *,
    byte_count: int,
    injected: int,
    word_bits: int = 32,
) -> bool:
    """Decide whether a low-*byte_count*-byte overwrite is detected.

    The attacker overwrites the low bytes of the targeted word with the same
    *injected* bytes in every variant, leaving each variant's original high
    bytes in place (Section 2.3).  Detection happens when the decoded values
    differ afterwards.  ``originals`` are the per-variant concrete values
    before the attack (i.e. ``R_i(semantic value)``).
    """
    low_mask = (1 << (8 * byte_count)) - 1
    keep_mask = ((1 << word_bits) - 1) ^ low_mask
    decoded = []
    for original, function in zip(originals, inverses):
        corrupted = (original & keep_mask) | (injected & low_mask)
        decoded.append(function.invert(corrupted))
    return len(set(decoded)) > 1


def sample_domain(bits: int = 32, *, stride: int = 2654435761, count: int = 4096) -> list[int]:
    """Deterministic, well-spread sample of a *bits*-wide unsigned domain.

    Uses a Weyl-style sequence (golden-ratio stride) so samples cover low,
    high and middle values without requiring randomness.  The Table 1
    benchmark and the property tests share this sampler.
    """
    modulus = 1 << bits
    samples = [0, 1, modulus - 1, modulus // 2, modulus // 2 - 1]
    value = 0
    for _ in range(count):
        value = (value + stride) % modulus
        samples.append(value)
    return samples
