"""Alarm taxonomy for the N-variant monitor.

The paper's security argument ends in exactly one observable event: the
monitor raises an alarm because the variants diverged.  This module defines
the alarm record and the classes of divergence the monitor distinguishes.
Keeping the taxonomy explicit makes the detection benchmarks and the attack
campaign reports precise about *how* each attack was caught.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any


class AlarmType(enum.Enum):
    """How the monitor noticed the divergence."""

    #: Variants issued different system calls at the same lockstep point.
    SYSCALL_MISMATCH = "syscall-mismatch"
    #: Same system call but non-equivalent arguments (after canonicalization).
    ARGUMENT_MISMATCH = "argument-mismatch"
    #: A uid_value / cc_* / cond_chk detection call observed divergent data.
    UID_DIVERGENCE = "uid-divergence"
    #: A cond_chk detection call observed variants taking different branches.
    CONTROL_FLOW_DIVERGENCE = "control-flow-divergence"
    #: One variant raised a hardware-style fault (segfault, illegal instruction).
    VARIANT_FAULT = "variant-fault"
    #: One variant exited or faulted while another kept running.
    LIFECYCLE_DIVERGENCE = "lifecycle-divergence"
    #: Variants returned different data for an output the monitor compared.
    OUTPUT_MISMATCH = "output-mismatch"


@dataclasses.dataclass(frozen=True)
class Alarm:
    """One monitor-detected divergence."""

    alarm_type: AlarmType
    description: str
    syscall: str | None = None
    variant_values: tuple[Any, ...] = ()
    faulting_variant: int | None = None
    lockstep_index: int | None = None

    def describe(self) -> str:
        """Readable one-line description used in reports and logs."""
        parts = [f"[{self.alarm_type.value}] {self.description}"]
        if self.syscall:
            parts.append(f"syscall={self.syscall}")
        if self.faulting_variant is not None:
            parts.append(f"variant={self.faulting_variant}")
        if self.variant_values:
            rendered = ", ".join(repr(v) for v in self.variant_values)
            parts.append(f"values=({rendered})")
        return " ".join(parts)


class DivergenceDetected(Exception):
    """Raised by the lockstep engine when the halt-on-alarm policy fires.

    Carrying the alarm keeps the exception path informative; most callers use
    the engine's result object instead of catching this directly.
    """

    def __init__(self, alarm: Alarm):
        self.alarm = alarm
        super().__init__(alarm.describe())
