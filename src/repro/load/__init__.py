"""Open-loop load: arrivals, admission control, checkpoint/migration, latency.

The load subsystem turns the serving apps into an open-loop experiment
surface.  :mod:`repro.load.arrivals` emits seeded request schedules on the
virtual clock, independent of how fast the server drains;
:mod:`repro.load.admission` decides at the door which arrivals enter and
counts what was shed; :mod:`repro.load.latency` measures admitted requests'
sojourn tails; :mod:`repro.load.checkpoint` serializes a quiescent session
-- keyed secrets included -- so it can continue byte-identically on another
engine; and :mod:`repro.load.driver` wires all four into a deterministic
run the ``loadtest`` experiment sweeps.
"""

from repro.load.admission import (
    AcceptAllPolicy,
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionStats,
    BoundedQueuePolicy,
    POLICIES,
    TokenBucketPolicy,
    UnknownAdmissionError,
    admission_kinds,
    create_admission_policy,
)
from repro.load.arrivals import (
    ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    ConstantArrivals,
    LoadError,
    PoissonArrivals,
    RampArrivals,
    UnknownArrivalError,
    arrival_kinds,
    create_arrival_process,
)
from repro.load.checkpoint import (
    PendingRequest,
    ServingConfig,
    SessionCheckpoint,
    build_serving_session,
    checkpoint,
    keyed_secrets,
    migrate,
    restore,
)
from repro.load.driver import (
    ATTACK_KINDS,
    DEFAULT_SEED,
    LOADTEST_RUNNER,
    LoadRunResult,
    RequestRecord,
    run_loadtest,
    run_loadtest_payload,
)
from repro.load.latency import LatencyHistogram

__all__ = [
    "ARRIVALS",
    "ATTACK_KINDS",
    "AcceptAllPolicy",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionStats",
    "ArrivalProcess",
    "BoundedQueuePolicy",
    "BurstyArrivals",
    "ConstantArrivals",
    "DEFAULT_SEED",
    "LOADTEST_RUNNER",
    "LatencyHistogram",
    "LoadError",
    "LoadRunResult",
    "POLICIES",
    "PendingRequest",
    "PoissonArrivals",
    "RampArrivals",
    "RequestRecord",
    "ServingConfig",
    "SessionCheckpoint",
    "TokenBucketPolicy",
    "UnknownAdmissionError",
    "UnknownArrivalError",
    "admission_kinds",
    "arrival_kinds",
    "build_serving_session",
    "checkpoint",
    "create_admission_policy",
    "create_arrival_process",
    "keyed_secrets",
    "migrate",
    "restore",
    "run_loadtest",
    "run_loadtest_payload",
]
