"""The open-loop load driver: arrivals x admission x serving bursts.

This is where the three load primitives meet the serving apps.  An arrival
process emits request ticks on a *global* virtual timeline; the driver
delivers each due arrival to the admission policy and, when admitted,
queues its wire bytes onto the session's kernel.  The session serves in
**bursts**: the mini servers exit when their accept queue runs dry (a real
accept loop would block; the simulated one observes EAGAIN once and
drains), so whenever the session completes with arrivals still outstanding
the driver fast-forwards the kernel clock to the next arrival, restarts the
session *without* rotating keys, and keeps serving.  Alarms, rounds and
consumed ticks are accumulated across bursts; sojourn times are measured on
the global timeline, so idle gaps and migrations never corrupt latency.

Burst boundaries are also the quiescent points where
:mod:`repro.load.checkpoint` applies: with ``migrate_after=k`` the driver
checkpoints at the first boundary after *k* completions, restores onto a
brand-new kernel, and continues there -- the global timeline carries over
via a base offset, and the run result records whether the hand-off
happened.  A migrated run must serve byte-identical responses and reach the
same detection outcomes as an unmigrated one; the ``loadtest`` experiment
asserts exactly that.

``run_loadtest_payload`` is the process-backend entry point (the
:data:`LOADTEST_RUNNER` module:function path shipped in
:class:`~repro.engine.procpool.ProcessJob` payloads); with a seed, both
backends reproduce the same result dict byte for byte because every random
draw flows through :func:`repro.api.seeding.derive_seed`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Any, Mapping, Optional, Sequence

from repro.api.seeding import derive_seed, seeded_spec
from repro.api.spec import SystemSpec
from repro.apps.catalog import ServingApp, get_app
from repro.engine.session import NVariantSession, SessionState
from repro.load.admission import AdmissionPolicy, create_admission_policy
from repro.load.arrivals import LoadError, create_arrival_process
from repro.load.checkpoint import (
    build_serving_session,
    checkpoint,
    keyed_secrets,
    restore,
)
from repro.load.latency import LatencyHistogram

#: The process-backend runner path, in ProcessJob "module:function" form.
LOADTEST_RUNNER = "repro.load.driver:run_loadtest_payload"

#: Root seed default, shared with the corpus/entropy experiments.
DEFAULT_SEED = 20080625

#: Attack kinds the open-loop driver can append to a benign arrival stream.
ATTACK_KINDS = ("uid-overwrite", "pointer-overwrite")

#: Address planted by the pointer-overwrite attack: valid in at most one
#: variant's partition under any address scheme, so dereference diverges.
_POINTER_TARGET = 0x1000

#: A single request may be re-queued across at most this many bursts before
#: the driver declares the run wedged (a served request never re-queues).
_MAX_REQUEUES = 64


@dataclasses.dataclass
class RequestRecord:
    """One arrival's life: offered -> admitted/shed -> completed/aborted."""

    index: int
    arrival: int
    payload: bytes
    kind: str = "benign"
    attack: Optional[str] = None
    admitted: bool = False
    shed: bool = False
    evicted: bool = False
    aborted: bool = False
    completed_at: Optional[int] = None
    response: bytes = b""
    requeues: int = 0
    connections: tuple = ()

    @property
    def completed(self) -> bool:
        return self.completed_at is not None


@dataclasses.dataclass
class LoadRunResult:
    """Everything one open-loop run measured, JSON-round-trippable."""

    spec_name: str
    app: str
    arrival: str
    admission: str
    rate: float
    requests: int
    offered: int
    admitted: int
    shed: int
    evicted: int
    aborted: int
    completed: int
    queue_high_water: int
    latency: LatencyHistogram
    alarms: int
    bursts: int
    rounds: int
    virtual_elapsed: int
    end_tick: int
    migrated: bool
    attack_outcomes: tuple[dict[str, Any], ...] = ()
    response_digest: str = ""
    secret_digest: str = ""

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered requests the policy turned away."""
        return self.shed / self.offered if self.offered else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-ready payload (the backend-parity unit)."""
        return {
            "admission": self.admission,
            "admitted": self.admitted,
            "alarms": self.alarms,
            "app": self.app,
            "arrival": self.arrival,
            "attack_outcomes": [dict(sorted(o.items())) for o in self.attack_outcomes],
            "bursts": self.bursts,
            "completed": self.completed,
            "end_tick": self.end_tick,
            "evicted": self.evicted,
            "aborted": self.aborted,
            "latency": self.latency.to_dict(),
            "migrated": self.migrated,
            "offered": self.offered,
            "queue_high_water": self.queue_high_water,
            "rate": round(self.rate, 6),
            "requests": self.requests,
            "response_digest": self.response_digest,
            "rounds": self.rounds,
            "secret_digest": self.secret_digest,
            "shed": self.shed,
            "spec": self.spec_name,
            "virtual_elapsed": self.virtual_elapsed,
        }


def _attack_payload(app: ServingApp, kind: str) -> bytes:
    if kind == "uid-overwrite":
        return app.uid_overwrite()
    if kind == "pointer-overwrite":
        return app.pointer_overwrite(_POINTER_TARGET)
    raise LoadError(
        f"unknown attack kind {kind!r}; known kinds: {', '.join(ATTACK_KINDS)}"
    )


def _build_records(
    app: ServingApp,
    arrival: str,
    rate: float,
    requests: int,
    rng: random.Random,
    arrival_params: Mapping[str, Any],
    attacks: Sequence[str],
) -> list[RequestRecord]:
    process = create_arrival_process(arrival, rate, rng=rng, **dict(arrival_params))
    ticks = process.schedule(requests)
    records = []
    for index, tick in enumerate(ticks):
        # Alternate the two benign paths so consecutive requests exercise
        # distinct server-side work, like the webbench mix does.
        payload = (
            app.benign_payload()
            if index % 2 == 0
            else app.benign_payload(path=app.alternate_path)
        )
        records.append(RequestRecord(index=index, arrival=tick, payload=payload))
    # Attacks trail the benign stream, one mean gap apart, so benign latency
    # statistics are never polluted by halted bursts.
    gap = max(1, int(round(process.mean_gap)))
    last = ticks[-1] if ticks else 0
    for offset, kind in enumerate(attacks):
        records.append(
            RequestRecord(
                index=len(records),
                arrival=last + (offset + 1) * gap,
                payload=_attack_payload(app, kind),
                kind="attack",
                attack=kind,
            )
        )
    return records


class _OpenLoopRun:
    """Mutable state of one driver run (kept off the public API)."""

    def __init__(
        self,
        spec: SystemSpec,
        app: ServingApp,
        policy: AdmissionPolicy,
        records: list[RequestRecord],
        *,
        multiplex: int,
        migrate_after: Optional[int],
        max_bursts: int,
        name: str,
    ):
        self.spec = spec
        self.app = app
        self.policy = policy
        self.records = records
        self.multiplex = multiplex
        self.migrate_after = migrate_after
        self.max_bursts = max_bursts
        self.name = name

        self.session = build_serving_session(
            spec, app, name=name, max_requests=None, multiplex=multiplex
        )
        self.base = 0  # global tick = base + kernel.clock (survives migration)
        self.delivered = 0
        self.pending: list[RequestRecord] = []
        self.latency = LatencyHistogram()
        self.bursts = 1
        self.rounds = 0
        self.ticks = 0
        self.alarms = 0
        self.completed = 0
        self.migrated = False

    # -- timeline ---------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.base + self.session.kernel.clock

    def _connect(self, record: RequestRecord) -> None:
        kernel = self.session.kernel
        before = len(kernel.network.connections)
        self.app.connect(kernel, record.payload, client=f"c{record.index}")
        record.connections = tuple(kernel.network.connections[before:])

    def _deliver_due(self) -> None:
        while self.delivered < len(self.records):
            record = self.records[self.delivered]
            if record.arrival > self.now:
                break
            self.delivered += 1
            decision = self.policy.offer(record.arrival)
            if not decision.admitted:
                record.shed = True
                continue
            record.admitted = True
            if decision.evict_oldest:
                self._evict_oldest(record)
                if not record.admitted:
                    continue
            self._connect(record)
            self.pending.append(record)

    def _evict_oldest(self, incoming: RequestRecord) -> None:
        """Head-drop: evict the oldest not-yet-accepted queued request.

        With every queued entry already in service (nothing left to unwind),
        the freshly admitted arrival itself is the victim -- drop-oldest
        degenerates to drop-newest at that point.
        """
        listeners = self.session.kernel.network.listeners
        for record in self.pending:
            if any(
                connection in listener.pending
                for listener in listeners.values()
                for connection in record.connections
            ):
                self._scrub_connections(record)
                self.pending.remove(record)
                record.evicted = True
                record.shed = True
                self.policy.released()
                return
        incoming.evicted = True
        incoming.shed = True
        self.policy.released()
        # The incoming record never enters pending; flag it so _deliver_due's
        # caller skips the connect.
        incoming.admitted = False

    def _scrub_connections(self, record: RequestRecord) -> None:
        """Remove a record's queued connections from every accept queue."""
        for listener in self.session.kernel.network.listeners.values():
            for connection in record.connections:
                try:
                    listener.pending.remove(connection)
                except ValueError:
                    pass

    def _harvest_completions(self) -> None:
        for record in list(self.pending):
            primary = record.connections[0] if record.connections else None
            if primary is None:
                continue
            if primary.closed_by_server and primary.response_bytes():
                record.completed_at = self.now
                record.response = primary.response_bytes()
                self.pending.remove(record)
                self.policy.released()
                self.completed += 1
                self.latency.add(record.completed_at - record.arrival)

    # -- burst boundaries -------------------------------------------------------

    def _absorb_burst(self) -> None:
        """Accumulate the finished burst's counters; mark a halt's victim."""
        self.rounds += self.session.rounds
        self.ticks += self.session.virtual_elapsed
        self.alarms += len(self.session.monitor.alarms)
        self._harvest_completions()
        if self.session.state is SessionState.HALTED and self.pending:
            victim = self._in_service_record()
            self._scrub_connections(victim)
            self.pending.remove(victim)
            victim.aborted = True
            self.policy.released()

    def _in_service_record(self) -> RequestRecord:
        """The request the halted burst was serving: oldest accepted, else oldest."""
        listeners = self.session.kernel.network.listeners
        for record in self.pending:
            queued = any(
                connection in listener.pending
                for listener in listeners.values()
                for connection in record.connections
            )
            if not queued:
                return record
        return self.pending[0]

    def _resolved(self) -> bool:
        return self.delivered >= len(self.records) and not self.pending

    def _next_burst(self) -> None:
        """Requeue survivors, optionally migrate, restart, fast-forward."""
        # Catch up the timeline until something is actually waiting to serve.
        while not self.pending and self.delivered < len(self.records):
            target = self.records[self.delivered].arrival
            if target > self.now:
                self.session.kernel.clock += target - self.now
            self._deliver_due()
        if self._resolved():
            return
        survivors = list(self.pending)
        for record in survivors:
            record.requeues += 1
            if record.requeues > _MAX_REQUEUES:
                raise LoadError(
                    f"request {record.index} re-queued {record.requeues} times "
                    "without completing; the run is wedged"
                )
            self._scrub_connections(record)
        # A halted burst never closed its listen socket; demote any still-
        # bound listener to a placeholder so the next burst can rebind.
        for listener in self.session.kernel.network.listeners.values():
            listener.bound = False
        if (
            self.migrate_after is not None
            and not self.migrated
            and self.completed >= self.migrate_after
        ):
            cp = checkpoint(self.session)
            old_clock = self.session.kernel.clock
            self.session = restore(cp, name=f"{self.name}-migrated")
            self.base += old_clock
            self.migrated = True
        else:
            self.session.restart(rotate_keys=False)
        for record in survivors:
            self._connect(record)
        self.bursts += 1
        if self.bursts > self.max_bursts:
            raise LoadError(
                f"open-loop run exceeded {self.max_bursts} service bursts"
            )

    # -- the loop ---------------------------------------------------------------

    def run(self) -> None:
        while True:
            self._deliver_due()
            if self.session.done:
                self._absorb_burst()
                if self._resolved():
                    break
                self._next_burst()
                if self._resolved():
                    break
                continue
            self.session.step()
            self._harvest_completions()


def run_loadtest(
    spec: SystemSpec,
    *,
    app: str = "httpd",
    arrival: str = "poisson",
    rate: float = 8.0,
    requests: int = 32,
    admission: str = "accept-all",
    admission_params: Optional[Mapping[str, Any]] = None,
    arrival_params: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = DEFAULT_SEED,
    multiplex: int = 1,
    attacks: Sequence[str] = (),
    migrate_after: Optional[int] = None,
    max_bursts: int = 4096,
    name: str = "loadtest",
) -> LoadRunResult:
    """Drive one open-loop load cell to resolution and measure it.

    Every arrival is offered to the admission policy at its scheduled global
    tick; admitted requests are served across as many service bursts as the
    load shape requires.  The run resolves when each request is completed,
    shed, or aborted by a monitor halt.  With a *seed*, the whole run --
    arrival schedule, keyed-scheme draws, and therefore every byte of every
    response -- is deterministic and backend-independent.
    """
    if requests < 0:
        raise LoadError(f"requests must be >= 0, got {requests}")
    if multiplex < 1:
        raise LoadError(f"multiplex must be >= 1, got {multiplex}")
    for kind in attacks:
        if kind not in ATTACK_KINDS:
            raise LoadError(
                f"unknown attack kind {kind!r}; known kinds: {', '.join(ATTACK_KINDS)}"
            )
    app_record = get_app(app)
    spec = seeded_spec(spec, seed)
    if seed is not None:
        rng = random.Random(derive_seed(seed, "loadtest", spec.name, app, arrival))
    else:
        rng = random.Random()
    policy = create_admission_policy(admission, **dict(admission_params or {}))
    records = _build_records(
        app_record, arrival, rate, requests, rng, arrival_params or {}, attacks
    )
    run = _OpenLoopRun(
        spec,
        app_record,
        policy,
        records,
        multiplex=multiplex,
        migrate_after=migrate_after,
        max_bursts=max_bursts,
        name=name,
    )
    run.run()

    digest = hashlib.sha256()
    for record in records:
        if record.completed:
            digest.update(f"{record.index}:".encode())
            digest.update(record.response)
    secret = hashlib.sha256(repr(keyed_secrets(run.session)).encode()).hexdigest()
    stats = policy.stats
    return LoadRunResult(
        spec_name=spec.name,
        app=app_record.name,
        arrival=arrival,
        admission=admission,
        rate=rate,
        requests=requests,
        offered=stats.offered,
        admitted=stats.admitted,
        shed=stats.shed,
        evicted=sum(1 for r in records if r.evicted),
        aborted=sum(1 for r in records if r.aborted),
        completed=run.completed,
        queue_high_water=stats.queue_high_water,
        latency=run.latency,
        alarms=run.alarms,
        bursts=run.bursts,
        rounds=run.rounds,
        virtual_elapsed=run.ticks,
        end_tick=run.now,
        migrated=run.migrated,
        attack_outcomes=tuple(
            {
                "attack": r.attack,
                "halted": r.aborted,
                "completed": r.completed,
                "shed": r.shed,
            }
            for r in records
            if r.kind == "attack"
        ),
        response_digest=digest.hexdigest(),
        secret_digest=secret,
    )


#: The payload keys :func:`run_loadtest_payload` understands.
_PAYLOAD_KEYS = frozenset(
    {
        "spec",
        "app",
        "arrival",
        "rate",
        "requests",
        "admission",
        "admission_params",
        "arrival_params",
        "seed",
        "multiplex",
        "attacks",
        "migrate_after",
        "name",
    }
)


def run_loadtest_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker-side cell runner: a picklable dict in, a result mapping out.

    The contract is :data:`repro.engine.procpool.RESULT_KEYS`; ``value`` is
    :meth:`LoadRunResult.to_dict`, which is what the experiment's backend-
    parity claim compares byte for byte.
    """
    unknown = sorted(set(payload) - _PAYLOAD_KEYS)
    if unknown:
        raise LoadError(f"unknown loadtest payload keys: {', '.join(unknown)}")
    if "spec" not in payload:
        raise LoadError("loadtest payload needs a 'spec' entry")
    spec = SystemSpec.from_dict(payload["spec"])
    result = run_loadtest(
        spec,
        app=payload.get("app", "httpd"),
        arrival=payload.get("arrival", "poisson"),
        rate=payload.get("rate", 8.0),
        requests=payload.get("requests", 32),
        admission=payload.get("admission", "accept-all"),
        admission_params=payload.get("admission_params"),
        arrival_params=payload.get("arrival_params"),
        seed=payload.get("seed", DEFAULT_SEED),
        multiplex=payload.get("multiplex", 1),
        attacks=tuple(payload.get("attacks", ())),
        migrate_after=payload.get("migrate_after"),
        name=payload.get("name", "loadtest"),
    )
    return {
        "state": "completed",
        "rounds": result.rounds,
        "virtual_elapsed": result.virtual_elapsed,
        "value": result.to_dict(),
    }
