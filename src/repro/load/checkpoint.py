"""Session checkpoint, restore and engine-to-engine migration.

A production fleet drains nodes: a serving session must be movable to
another engine (another kernel, typically another OS process or host)
without clients noticing.  `NVariantSession` has been resumable since PR 1,
so a checkpoint is *serialization*, not surgery: the declarative
construction recipe (the stamped :class:`~repro.api.spec.SystemSpec` plus
the serving-app configuration), the still-queued client conversations
harvested from the kernel's listeners, and -- crucially -- every keyed
scheme's drawn secret.  Restoring replays the recipe, installs the recorded
secrets *before* the variant processes spawn (address spaces are carved at
spawn from the scheme's layout), and re-queues the pending wire bytes, so
the restored session serves byte-identical responses to the one it
replaced.

Checkpoints are quiescent-point snapshots: a session may be checkpointed
fresh (no round stepped yet) or at a service-burst boundary (a terminal
state), never mid-round -- variant program state lives in running
generators, which do not serialize.  The open-loop driver
(:mod:`repro.load.driver`) only ever pauses at burst boundaries, so this is
not a restriction in practice.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional

from repro.api.builders import build_session, build_variations
from repro.api.spec import SystemSpec
from repro.apps.catalog import ServingApp, get_app
from repro.engine.scheduler import MultiSessionEngine
from repro.engine.session import NVariantSession, SessionState
from repro.kernel.host import build_standard_host
from repro.kernel.kernel import SimulatedKernel
from repro.load.arrivals import LoadError
from repro.memory.partition import KeyedScheme


def _require_known_keys(kind: str, data: Mapping[str, Any], known: frozenset) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise LoadError(
            f"unknown {kind} keys: {', '.join(unknown)}; expected a subset of "
            f"{', '.join(sorted(known))}"
        )


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """The serving-app half of a session's construction recipe."""

    app: str
    max_requests: Optional[int] = None
    multiplex: int = 1

    _KEYS = frozenset({"app", "max_requests", "multiplex"})

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "max_requests": self.max_requests,
            "multiplex": self.multiplex,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingConfig":
        _require_known_keys("serving config", data, cls._KEYS)
        return cls(
            app=data["app"],
            max_requests=data.get("max_requests"),
            multiplex=data.get("multiplex", 1),
        )


@dataclasses.dataclass(frozen=True)
class PendingRequest:
    """One not-yet-accepted client connection, as wire bytes on a port."""

    port: int
    client: str
    data: bytes

    def to_dict(self) -> dict[str, Any]:
        return {"client": self.client, "data": self.data.hex(), "port": self.port}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PendingRequest":
        _require_known_keys("pending request", data, frozenset({"client", "data", "port"}))
        return cls(
            port=int(data["port"]),
            client=str(data["client"]),
            data=bytes.fromhex(data["data"]),
        )


@dataclasses.dataclass(frozen=True)
class SessionCheckpoint:
    """Everything needed to continue a quiescent session elsewhere."""

    session_name: str
    spec: SystemSpec
    serving: ServingConfig
    #: Cumulative progress at checkpoint time (informational: a restored
    #: session starts fresh counters; the driver carries the totals).
    rounds_completed: int = 0
    ticks_consumed: int = 0
    #: Queued-but-unserved client conversations, in per-port FIFO order.
    pending: tuple[PendingRequest, ...] = ()
    #: ``(variation position, secret values)`` for every keyed variation.
    secrets: tuple[tuple[int, tuple[int, ...]], ...] = ()
    version: int = 1

    _KEYS = frozenset(
        {
            "session_name",
            "spec",
            "serving",
            "rounds_completed",
            "ticks_consumed",
            "pending",
            "secrets",
            "version",
        }
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (round-trips through :meth:`from_dict`)."""
        return {
            "pending": [entry.to_dict() for entry in self.pending],
            "rounds_completed": self.rounds_completed,
            "secrets": [
                {"position": position, "values": list(values)}
                for position, values in self.secrets
            ],
            "serving": self.serving.to_dict(),
            "session_name": self.session_name,
            "spec": self.spec.to_dict(),
            "ticks_consumed": self.ticks_consumed,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionCheckpoint":
        _require_known_keys("checkpoint", data, cls._KEYS)
        version = data.get("version", 1)
        if version != 1:
            raise LoadError(f"unsupported checkpoint version {version!r}")
        return cls(
            session_name=str(data["session_name"]),
            spec=SystemSpec.from_dict(data["spec"]),
            serving=ServingConfig.from_dict(data["serving"]),
            rounds_completed=int(data.get("rounds_completed", 0)),
            ticks_consumed=int(data.get("ticks_consumed", 0)),
            pending=tuple(
                PendingRequest.from_dict(entry) for entry in data.get("pending", ())
            ),
            secrets=tuple(
                (int(entry["position"]), tuple(int(v) for v in entry["values"]))
                for entry in data.get("secrets", ())
            ),
            version=1,
        )


def keyed_secrets(session: NVariantSession) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Every keyed variation's current secret, by stack position."""
    secrets = []
    for position, variation in enumerate(session.variations):
        scheme = getattr(variation, "scheme", None)
        if isinstance(scheme, KeyedScheme):
            secrets.append((position, tuple(scheme.secret())))
    return tuple(secrets)


def build_serving_session(
    spec: SystemSpec,
    app: "str | ServingApp",
    *,
    kernel: Optional[SimulatedKernel] = None,
    name: Optional[str] = None,
    max_requests: Optional[int] = None,
    multiplex: int = 1,
) -> NVariantSession:
    """Build a checkpointable serving session: spec + app, stamps included.

    The standard entry point for load-driver and migration code: the session
    carries both halves of its construction recipe (``session.spec`` from
    :func:`~repro.api.builders.build_session`, ``session.serving`` from
    here), which is exactly what :func:`checkpoint` serializes.
    """
    app_record = get_app(app) if isinstance(app, str) else app
    if kernel is None:
        kernel = build_standard_host()
        app_record.prepare_host(kernel)
    factory = app_record.make_factory(
        transformed=spec.transformed, max_requests=max_requests, multiplex=multiplex
    )
    session = build_session(spec, kernel, factory, name=name)
    session.serving = ServingConfig(
        app=app_record.name, max_requests=max_requests, multiplex=multiplex
    )
    return session


def checkpoint(session: NVariantSession) -> SessionCheckpoint:
    """Snapshot a quiescent serving session into a JSON-round-trippable record."""
    if session.spec is None or session.serving is None:
        raise LoadError(
            f"session {session.name!r} carries no construction recipe; build it "
            "via repro.load.checkpoint.build_serving_session to checkpoint it"
        )
    if session.state is SessionState.RUNNING and session.rounds > 0:
        raise LoadError(
            f"session {session.name!r} is mid-burst (round {session.rounds}); "
            "checkpoints are taken fresh or at a service-burst boundary"
        )
    pending = []
    for port in sorted(session.kernel.network.listeners):
        listener = session.kernel.network.listeners[port]
        for connection in listener.pending:
            pending.append(
                PendingRequest(
                    port=port,
                    client=connection.client,
                    data=bytes(connection.inbound),
                )
            )
    return SessionCheckpoint(
        session_name=session.name,
        spec=session.spec,
        serving=session.serving,
        rounds_completed=session.rounds,
        ticks_consumed=session.virtual_elapsed,
        pending=tuple(pending),
        secrets=keyed_secrets(session),
    )


def restore(
    cp: SessionCheckpoint,
    *,
    kernel: Optional[SimulatedKernel] = None,
    name: Optional[str] = None,
) -> NVariantSession:
    """Rebuild a runnable session from a checkpoint on a fresh kernel.

    Secrets are installed into the freshly built variation stack *before*
    the session spawns its variant processes -- address spaces are carved
    from the scheme layout at spawn, so a post-construction install would
    leave variant memory in the wrong partitions.  Queued conversations are
    replayed onto the new kernel's listeners in their original per-port
    order.
    """
    app_record = get_app(cp.serving.app)
    if kernel is None:
        kernel = build_standard_host()
        app_record.prepare_host(kernel)
    for entry in cp.pending:
        kernel.client_connect(entry.port, entry.data, client=entry.client)
    variations = build_variations(cp.spec)
    for position, values in cp.secrets:
        if position >= len(variations):
            raise LoadError(
                f"checkpoint names a secret at variation position {position}, "
                f"but the spec builds only {len(variations)} variations"
            )
        variation = variations[position]
        install = getattr(variation, "install_secret", None)
        if install is None:
            scheme = getattr(variation, "scheme", None)
            if not isinstance(scheme, KeyedScheme):
                raise LoadError(
                    f"checkpoint carries a secret for position {position}, but "
                    f"variation {type(variation).__name__} is not keyed"
                )
            install = scheme.install_secret
        install(values)
    factory = app_record.make_factory(
        transformed=cp.spec.transformed,
        max_requests=cp.serving.max_requests,
        multiplex=cp.serving.multiplex,
    )
    session = NVariantSession(
        kernel,
        factory,
        variations,
        num_variants=cp.spec.num_variants,
        halt_on_alarm=cp.spec.halt_on_alarm,
        max_rounds=cp.spec.max_rounds,
        name=name if name is not None else cp.session_name,
        interposition=cp.spec.interposition,
    )
    session.spec = cp.spec
    session.serving = cp.serving
    return session


def migrate(
    session: NVariantSession,
    target_engine: MultiSessionEngine,
    *,
    name: Optional[str] = None,
) -> NVariantSession:
    """Checkpoint *session* and hand the restored continuation to an engine.

    The restored session goes through the target engine's admission-
    controlled :meth:`~repro.engine.scheduler.MultiSessionEngine.offer`; a
    shed offer raises (a migration the target refuses must be loud, not a
    silently dropped session).  The source session is left in place --
    callers retire it once the hand-off is confirmed.
    """
    cp = checkpoint(session)
    restored = restore(cp, name=name)
    if not target_engine.offer(restored):
        raise LoadError(
            f"target engine {target_engine.name!r} shed migrated session "
            f"{restored.name!r} at intake"
        )
    return restored
