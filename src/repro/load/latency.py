"""Sojourn-time accounting: arrival-to-completion histograms in virtual ticks.

Open-loop claims are tail claims: the interesting number is not mean
throughput but what the slowest admitted percentile experienced.  The
histogram here records each completed request's sojourn (completion tick
minus arrival tick, both on the global virtual timeline that survives
migration) and reports nearest-rank percentiles.  Per the PR-6 sentinel
convention, every statistic over an empty histogram is ``nan`` -- "no
request completed" must never render as a zero-latency triumph; the JSON
layers map ``nan`` to ``null``.
"""

from __future__ import annotations

import math
from typing import Optional


def _nan_or(value: Optional[float]) -> float:
    return math.nan if value is None else float(value)


class LatencyHistogram:
    """Exact sojourn-time distribution over one run's completed requests."""

    def __init__(self) -> None:
        self._samples: list[int] = []
        self._sorted = True

    def add(self, sojourn_ticks: int) -> None:
        """Record one completed request's arrival-to-completion time."""
        if sojourn_ticks < 0:
            raise ValueError(f"sojourn must be >= 0 ticks, got {sojourn_ticks}")
        self._samples.append(int(sojourn_ticks))
        self._sorted = False

    def _ordered(self) -> list[int]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    @property
    def count(self) -> int:
        """Number of completed requests measured."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean sojourn in ticks (``nan`` when unmeasured)."""
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def min(self) -> float:
        """Fastest measured sojourn (``nan`` when unmeasured)."""
        return _nan_or(self._ordered()[0] if self._samples else None)

    @property
    def max(self) -> float:
        """Slowest measured sojourn (``nan`` when unmeasured)."""
        return _nan_or(self._ordered()[-1] if self._samples else None)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile in ticks (``nan`` when unmeasured)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        ordered = self._ordered()
        if not ordered:
            return math.nan
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return float(ordered[rank - 1])

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    def to_dict(self) -> dict:
        """JSON-ready summary; unmeasured statistics become ``None``.

        (JSON has no spelling for ``nan``; ``null`` is the wire form of the
        sentinel, exactly as the CLI's ``_finite_or_none`` renders it.)
        """

        def _json(value: float):
            return value if math.isfinite(value) else None

        return {
            "count": self.count,
            "max": _json(self.max),
            "mean": _json(round(self.mean, 3) if self._samples else math.nan),
            "min": _json(self.min),
            "p50": _json(self.p50),
            "p90": _json(self.p90),
            "p99": _json(self.p99),
            "p999": _json(self.p999),
        }
