"""Pluggable admission-control policies with per-policy telemetry.

Under open-loop load a server that accepts everything turns overload into
unbounded queueing: every admitted request eventually completes, but sojourn
times grow without limit.  Admission control trades completion for latency
-- shed excess arrivals at the door so the requests that *are* admitted see
bounded queues.  The policies here are pure decision logic over an abstract
clock plus occupancy counters; the driver (or the engine's intake hook) owns
the mechanics of actually refusing or evicting work, and reports every
departure back via :meth:`AdmissionPolicy.released`.

The protocol is deliberately dependency-free so
:class:`repro.engine.scheduler.MultiSessionEngine` can hold a policy without
importing this package at module level (no engine -> load -> api -> engine
cycle).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.load.arrivals import LoadError


class UnknownAdmissionError(LoadError):
    """An unknown admission-policy kind was named (CLI exit-2 material)."""

    def __init__(self, kind: str):
        super().__init__(
            f"unknown admission policy {kind!r}; registered policies: "
            f"{', '.join(admission_kinds())}"
        )
        self.kind = kind


@dataclasses.dataclass
class AdmissionStats:
    """Telemetry one policy accumulates over a run."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    #: Current occupancy: admitted work not yet released back to the policy.
    queued: int = 0
    #: The deepest the occupancy ever got (the overload signature).
    queue_high_water: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counters, sorted-key stable."""
        return {
            "admitted": self.admitted,
            "offered": self.offered,
            "queue_high_water": self.queue_high_water,
            "queued": self.queued,
            "shed": self.shed,
        }


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """One offer's outcome.

    ``evict_oldest`` asks the caller to evict its oldest still-queued entry
    to make room for the newly admitted one (bounded-queue drop-oldest); the
    evicted entry must be reported via :meth:`AdmissionPolicy.released` like
    any other departure.
    """

    admitted: bool
    evict_oldest: bool = False


class AdmissionPolicy:
    """Base class: decide per arrival, count everything."""

    kind = "admission"

    def __init__(self) -> None:
        self.stats = AdmissionStats()

    def _admit(self) -> None:
        self.stats.admitted += 1
        self.stats.queued += 1
        if self.stats.queued > self.stats.queue_high_water:
            self.stats.queue_high_water = self.stats.queued

    def offer(self, now: int) -> AdmissionDecision:
        """Decide one arrival at virtual time *now* (ticks)."""
        raise NotImplementedError

    def released(self) -> None:
        """One admitted unit left the system (completed, aborted or evicted)."""
        if self.stats.queued <= 0:
            raise LoadError(f"{self.kind}: released more work than was admitted")
        self.stats.queued -= 1

    def describe(self) -> str:
        """Readable one-line policy summary."""
        return self.kind


class AcceptAllPolicy(AdmissionPolicy):
    """The no-op policy: every arrival is admitted, nothing is ever shed.

    The overload control group -- under sustained offered load beyond
    capacity its queue (and with it the sojourn tail) grows without bound.
    """

    kind = "accept-all"

    def offer(self, now: int) -> AdmissionDecision:
        self.stats.offered += 1
        self._admit()
        return AdmissionDecision(admitted=True)


class BoundedQueuePolicy(AdmissionPolicy):
    """At most *capacity* requests in the system; overflow drops one.

    ``drop="newest"`` sheds the arriving request (classic tail drop);
    ``drop="oldest"`` admits the arrival and evicts the oldest queued entry
    (head drop -- fresher work is worth more than stale work that has
    already waited past its useful latency).  Either way the occupancy never
    exceeds *capacity*, which is what bounds the admitted-request tail.
    """

    kind = "bounded-queue"

    DROP_CHOICES = ("oldest", "newest")

    def __init__(self, *, capacity: int = 8, drop: str = "newest"):
        super().__init__()
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise LoadError(f"capacity must be a positive integer, got {capacity!r}")
        if drop not in self.DROP_CHOICES:
            raise LoadError(
                f"drop must be one of {', '.join(self.DROP_CHOICES)}, got {drop!r}"
            )
        self.capacity = capacity
        self.drop = drop

    def offer(self, now: int) -> AdmissionDecision:
        self.stats.offered += 1
        if self.stats.queued < self.capacity:
            self._admit()
            return AdmissionDecision(admitted=True)
        if self.drop == "newest":
            self.stats.shed += 1
            return AdmissionDecision(admitted=False)
        # drop-oldest: the arrival enters, the caller evicts its oldest queued
        # entry (and releases it), so occupancy is back at capacity.  The
        # transient +1 is not a real queue state; high-water stays at capacity.
        self.stats.shed += 1
        self.stats.admitted += 1
        self.stats.queued += 1
        return AdmissionDecision(admitted=True, evict_oldest=True)

    def describe(self) -> str:
        return f"{self.kind}(capacity={self.capacity}, drop={self.drop})"


class TokenBucketPolicy(AdmissionPolicy):
    """Rate-based shedding: admit only while tokens last.

    The bucket refills at ``rate`` tokens per kilotick up to ``burst``; each
    admission spends one token.  Unlike the bounded queue this sheds on
    *rate*, not occupancy -- a sustained overload is clipped to the refill
    rate no matter how fast the server drains, which makes the shed fraction
    track offered load directly.
    """

    kind = "token-bucket"

    def __init__(self, *, rate: float = 8.0, burst: float = 4.0):
        super().__init__()
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate <= 0:
            raise LoadError(f"token rate must be a positive number, got {rate!r}")
        if not isinstance(burst, (int, float)) or isinstance(burst, bool) or burst < 1:
            raise LoadError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_now = 0

    def offer(self, now: int) -> AdmissionDecision:
        self.stats.offered += 1
        if now > self._last_now:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_now) * self.rate / 1000.0
            )
            self._last_now = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._admit()
            return AdmissionDecision(admitted=True)
        self.stats.shed += 1
        return AdmissionDecision(admitted=False)

    def describe(self) -> str:
        return f"{self.kind}(rate={self.rate:g}/ktick, burst={self.burst:g})"


PolicyFactory = Callable[..., AdmissionPolicy]

#: Stable kind name -> factory; policy-specific parameters are keyword-only.
POLICIES: dict[str, PolicyFactory] = {
    AcceptAllPolicy.kind: AcceptAllPolicy,
    BoundedQueuePolicy.kind: BoundedQueuePolicy,
    TokenBucketPolicy.kind: TokenBucketPolicy,
}


def admission_kinds() -> list[str]:
    """The registered admission-policy kinds, sorted."""
    return sorted(POLICIES)


def create_admission_policy(kind: str, **params) -> AdmissionPolicy:
    """Instantiate a registered policy; unknown kinds raise."""
    try:
        factory = POLICIES[kind]
    except KeyError:
        raise UnknownAdmissionError(kind) from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise LoadError(f"bad parameters for admission policy {kind!r}: {exc}") from None
