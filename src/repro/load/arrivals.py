"""Seeded open-loop arrival processes on the engine's virtual clock.

A closed-loop driver (webbench, ftpbench) sends the next request when the
previous one finishes, so a slow server is never overloaded -- the driver
politely waits.  Production traffic does not wait: requests arrive on their
own schedule whether the fleet keeps up or not, and every claim about
overload, shedding, and tail latency needs that *open-loop* model.  An
arrival process here is exactly that schedule: a deterministic, seeded
sequence of virtual-clock ticks at which requests hit the listener,
independent of completion rate.

All randomness flows through an injected :class:`random.Random` whose seed
the callers derive via :func:`repro.api.seeding.derive_seed`, so a seeded
loadtest is byte-identical in-process and across forked workers (the same
guarantee the campaign tier established in PR 7).  Rates are expressed in
requests per kilotick, matching the throughput units the workload
measurements already report.
"""

from __future__ import annotations

import random
from typing import Callable, Optional


class LoadError(ValueError):
    """A load-subsystem request could not be understood or satisfied."""


class UnknownArrivalError(LoadError):
    """An unknown arrival-process kind was named (CLI exit-2 material)."""

    def __init__(self, kind: str):
        super().__init__(
            f"unknown arrival process {kind!r}; registered processes: "
            f"{', '.join(arrival_kinds())}"
        )
        self.kind = kind


def _check_rate(rate: float) -> float:
    if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate <= 0:
        raise LoadError(f"arrival rate must be a positive number, got {rate!r}")
    return float(rate)


class ArrivalProcess:
    """Base class: a generator of absolute arrival ticks.

    ``rate`` is the long-run average arrival rate in requests per kilotick;
    :meth:`schedule` renders the next *count* arrivals as a non-decreasing
    list of positive virtual-clock ticks.  Scheduling consumes the injected
    generator's state, so one process instance renders one schedule -- build
    a fresh instance (same seed) to reproduce it.
    """

    kind = "arrival"

    def __init__(self, rate: float, *, rng: Optional[random.Random] = None):
        self.rate = _check_rate(rate)
        self.rng = rng if rng is not None else random.Random()

    @property
    def mean_gap(self) -> float:
        """Mean inter-arrival gap in ticks implied by the rate."""
        return 1000.0 / self.rate

    def _gaps(self, count: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def schedule(self, count: int) -> list[int]:
        """The next *count* arrival ticks (absolute, starting after tick 0)."""
        if count < 0:
            raise LoadError(f"arrival count must be >= 0, got {count}")
        ticks: list[int] = []
        now = 0
        for gap in self._gaps(count):
            now += max(1, int(round(gap)))
            ticks.append(now)
        return ticks


class ConstantArrivals(ArrivalProcess):
    """Evenly spaced arrivals: the deterministic pacing baseline."""

    kind = "constant"

    def _gaps(self, count: int):
        for _ in range(count):
            yield self.mean_gap


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at the given rate."""

    kind = "poisson"

    def _gaps(self, count: int):
        for _ in range(count):
            yield self.rng.expovariate(1.0 / self.mean_gap)


class BurstyArrivals(ArrivalProcess):
    """MMPP-style on-off arrivals: quiet stretches punctuated by bursts.

    A two-state modulated Poisson process: in the ON state arrivals come
    ``burst_factor`` times faster than the long-run rate; the OFF state is
    silent.  Exponential dwell times are balanced so the ON fraction is
    ``1/burst_factor`` and the long-run average rate matches ``rate`` -- the
    process stresses queues with the same offered load a Poisson stream
    carries, concentrated into bursts.
    """

    kind = "bursty"

    def __init__(
        self,
        rate: float,
        *,
        rng: Optional[random.Random] = None,
        burst_factor: float = 4.0,
        mean_on_ticks: float = 1500.0,
    ):
        super().__init__(rate, rng=rng)
        if burst_factor <= 1.0:
            raise LoadError(f"burst_factor must be > 1, got {burst_factor!r}")
        if mean_on_ticks <= 0:
            raise LoadError(f"mean_on_ticks must be positive, got {mean_on_ticks!r}")
        self.burst_factor = float(burst_factor)
        self.mean_on_ticks = float(mean_on_ticks)

    def _gaps(self, count: int):
        on_gap = self.mean_gap / self.burst_factor
        mean_off = self.mean_on_ticks * (self.burst_factor - 1.0)
        remaining_on = self.rng.expovariate(1.0 / self.mean_on_ticks)
        for _ in range(count):
            gap = 0.0
            while True:
                draw = self.rng.expovariate(1.0 / on_gap)
                if draw <= remaining_on:
                    gap += draw
                    remaining_on -= draw
                    break
                # The ON period ends before the next arrival: spend what is
                # left of it, sit out one OFF dwell, then redraw inside a
                # fresh ON period (exponentials are memoryless).
                gap += remaining_on + self.rng.expovariate(1.0 / mean_off)
                remaining_on = self.rng.expovariate(1.0 / self.mean_on_ticks)
            yield gap


class RampArrivals(ArrivalProcess):
    """A linear rate ramp: from ``ramp_from``x to ``ramp_to``x the quoted rate.

    Deterministic by design (the ramp *is* the experiment's independent
    variable); the schedule sweeps the instantaneous rate linearly across the
    request count, so early requests probe an underloaded server and late
    ones an overloaded one within a single run.
    """

    kind = "ramp"

    def __init__(
        self,
        rate: float,
        *,
        rng: Optional[random.Random] = None,
        ramp_from: float = 0.5,
        ramp_to: float = 2.0,
    ):
        super().__init__(rate, rng=rng)
        if ramp_from <= 0 or ramp_to <= 0:
            raise LoadError(
                f"ramp_from/ramp_to must be positive, got {ramp_from!r}/{ramp_to!r}"
            )
        self.ramp_from = float(ramp_from)
        self.ramp_to = float(ramp_to)

    def _gaps(self, count: int):
        for index in range(count):
            fraction = index / (count - 1) if count > 1 else 0.0
            factor = self.ramp_from + (self.ramp_to - self.ramp_from) * fraction
            yield self.mean_gap / factor


ArrivalFactory = Callable[..., ArrivalProcess]

#: Stable kind name -> factory.  Factories take ``rate`` first and process-
#: specific keyword parameters after it.
ARRIVALS: dict[str, ArrivalFactory] = {
    ConstantArrivals.kind: ConstantArrivals,
    PoissonArrivals.kind: PoissonArrivals,
    BurstyArrivals.kind: BurstyArrivals,
    RampArrivals.kind: RampArrivals,
}


def arrival_kinds() -> list[str]:
    """The registered arrival-process kinds, sorted."""
    return sorted(ARRIVALS)


def create_arrival_process(
    kind: str, rate: float, *, rng: Optional[random.Random] = None, **params
) -> ArrivalProcess:
    """Instantiate a registered arrival process; unknown kinds raise."""
    try:
        factory = ARRIVALS[kind]
    except KeyError:
        raise UnknownArrivalError(kind) from None
    try:
        return factory(rate, rng=rng, **params)
    except TypeError as exc:
        raise LoadError(f"bad parameters for arrival process {kind!r}: {exc}") from None
