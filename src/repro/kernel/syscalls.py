"""System call interface between variant programs and the simulated kernel.

Programs in this reproduction are Python generator coroutines.  Whenever the
program needs a kernel service it *yields* a :class:`SyscallRequest`; the
execution engine (either the plain :class:`~repro.kernel.kernel.SimulatedKernel`
for a single process, or the :class:`~repro.core.nvariant.NVariantSystem`
lockstep engine for a redundant system) performs the call and sends back a
:class:`SyscallResult`.  This is the exact boundary the paper instruments:
system calls are the synchronisation points, the monitoring points, and the
place where inverse reexpression functions are applied.

The classification sets at the bottom of the module encode the wrapper policy
from Sections 3.1 and 3.5 of the paper:

* ``INPUT_SYSCALLS`` are performed once and the same data is sent to all
  variants (so the attacker necessarily delivers identical bytes everywhere).
* ``OUTPUT_SYSCALLS`` are checked for equivalence across variants and
  performed once.
* ``UID_PARAMETER_SYSCALLS`` take uid_t/gid_t arguments; the wrapper applies
  the variant's inverse reexpression function to those arguments and checks
  that the decoded values agree across variants.
* ``UID_RESULT_SYSCALLS`` return uid_t/gid_t values; the wrapper applies the
  variant's (forward) reexpression function to the trusted result.
* ``DETECTION_SYSCALLS`` are the new calls from Table 2 of the paper.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

from repro.kernel.errors import Errno


class Syscall(enum.Enum):
    """Names of the system calls understood by the simulated kernel."""

    # -- process control ---------------------------------------------------
    EXIT = "exit"
    GETPID = "getpid"
    FORK = "fork"
    WAITPID = "waitpid"
    KILL = "kill"

    # -- credentials -------------------------------------------------------
    GETUID = "getuid"
    GETEUID = "geteuid"
    GETGID = "getgid"
    GETEGID = "getegid"
    SETUID = "setuid"
    SETEUID = "seteuid"
    SETREUID = "setreuid"
    SETRESUID = "setresuid"
    SETGID = "setgid"
    SETEGID = "setegid"
    SETGROUPS = "setgroups"

    # -- filesystem --------------------------------------------------------
    OPEN = "open"
    CLOSE = "close"
    READ = "read"
    WRITE = "write"
    LSEEK = "lseek"
    STAT = "stat"
    FSTAT = "fstat"
    ACCESS = "access"
    MKDIR = "mkdir"
    UNLINK = "unlink"
    RENAME = "rename"
    CHOWN = "chown"
    CHMOD = "chmod"
    GETDENTS = "getdents"
    CHDIR = "chdir"

    # -- sockets (simplified network model) --------------------------------
    SOCKET = "socket"
    BIND = "bind"
    LISTEN = "listen"
    ACCEPT = "accept"
    RECV = "recv"
    SEND = "send"
    SHUTDOWN = "shutdown"

    # -- misc --------------------------------------------------------------
    TIME = "time"
    GETRANDOM = "getrandom"
    NANOSLEEP = "nanosleep"
    # A checked read of the caller's own address space: returns the bytes at
    # an absolute address or fails with EFAULT instead of segfaulting.  It is
    # deliberately absent from every policy set below, so the wrapper executes
    # it per variant against each variant's own memory -- the probe primitive
    # of the brute-force attacker model (repro.security).
    PEEK = "peek"

    # -- detection system calls added by the paper (Table 2) ----------------
    UID_VALUE = "uid_value"
    COND_CHK = "cond_chk"
    CC_EQ = "cc_eq"
    CC_NEQ = "cc_neq"
    CC_LT = "cc_lt"
    CC_LEQ = "cc_leq"
    CC_GT = "cc_gt"
    CC_GEQ = "cc_geq"


@dataclasses.dataclass(frozen=True)
class SyscallRequest:
    """A trap into the kernel: the call name and its positional arguments."""

    name: Syscall
    args: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, Syscall):
            raise TypeError(f"SyscallRequest.name must be a Syscall, got {self.name!r}")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def with_args(self, args: tuple[Any, ...]) -> "SyscallRequest":
        """Return a copy of this request with substituted arguments."""
        return SyscallRequest(self.name, tuple(args))

    def describe(self) -> str:
        """Human-readable one-line rendering, used in alarms and traces."""
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name.value}({rendered})"


@dataclasses.dataclass(frozen=True)
class SyscallResult:
    """The kernel's reply to a :class:`SyscallRequest`."""

    value: Any = 0
    errno: Errno = Errno.OK

    @property
    def ok(self) -> bool:
        """True when the call succeeded."""
        return self.errno == Errno.OK

    @classmethod
    def success(cls, value: Any = 0) -> "SyscallResult":
        """Build a successful result carrying *value*."""
        return cls(value=value, errno=Errno.OK)

    @classmethod
    def failure(cls, errno: Errno, value: Any = -1) -> "SyscallResult":
        """Build a failed result carrying *errno* (value defaults to -1)."""
        return cls(value=value, errno=Errno(errno))


# ---------------------------------------------------------------------------
# Wrapper policy classification (Sections 3.1 and 3.5 of the paper)
# ---------------------------------------------------------------------------

#: Calls whose data originates outside the system.  Performed once; the same
#: result is replicated to every variant.
INPUT_SYSCALLS = frozenset(
    {
        Syscall.READ,
        Syscall.RECV,
        Syscall.ACCEPT,
        Syscall.GETDENTS,
        Syscall.TIME,
        Syscall.GETRANDOM,
    }
)

#: Calls with externally visible effects.  Arguments are checked for
#: equivalence across variants and the call is issued once.
OUTPUT_SYSCALLS = frozenset(
    {
        Syscall.WRITE,
        Syscall.SEND,
        Syscall.UNLINK,
        Syscall.RENAME,
        Syscall.MKDIR,
        Syscall.CHOWN,
        Syscall.CHMOD,
        Syscall.KILL,
        Syscall.SHUTDOWN,
    }
)

#: Calls taking uid_t/gid_t parameters; the target interface of the UID
#: variation.  The wrapper applies inverse reexpression to the UID arguments.
#: Maps syscall -> indices of the UID-typed arguments.
UID_PARAMETER_SYSCALLS: dict[Syscall, tuple[int, ...]] = {
    Syscall.SETUID: (0,),
    Syscall.SETEUID: (0,),
    Syscall.SETREUID: (0, 1),
    Syscall.SETRESUID: (0, 1, 2),
    Syscall.SETGID: (0,),
    Syscall.SETEGID: (0,),
    Syscall.CHOWN: (1, 2),
}

#: Calls returning uid_t/gid_t values; the wrapper applies the forward
#: reexpression function to the (trusted) result for each variant.
UID_RESULT_SYSCALLS = frozenset(
    {
        Syscall.GETUID,
        Syscall.GETEUID,
        Syscall.GETGID,
        Syscall.GETEGID,
    }
)

#: The new detection calls from Table 2 of the paper.
DETECTION_SYSCALLS = frozenset(
    {
        Syscall.UID_VALUE,
        Syscall.COND_CHK,
        Syscall.CC_EQ,
        Syscall.CC_NEQ,
        Syscall.CC_LT,
        Syscall.CC_LEQ,
        Syscall.CC_GT,
        Syscall.CC_GEQ,
    }
)

#: Detection calls that compare two uid_t parameters (the cc_* family).
UID_COMPARISON_SYSCALLS = frozenset(
    {
        Syscall.CC_EQ,
        Syscall.CC_NEQ,
        Syscall.CC_LT,
        Syscall.CC_LEQ,
        Syscall.CC_GT,
        Syscall.CC_GEQ,
    }
)

#: Calls that accept a pathname as their first argument (used by the
#: unshared-files mechanism to redirect opens of diversified files).
PATH_SYSCALLS = frozenset(
    {
        Syscall.OPEN,
        Syscall.STAT,
        Syscall.ACCESS,
        Syscall.MKDIR,
        Syscall.UNLINK,
        Syscall.CHOWN,
        Syscall.CHMOD,
        Syscall.CHDIR,
        Syscall.GETDENTS,
    }
)


def request(name: Syscall, *args: Any) -> SyscallRequest:
    """Convenience constructor: ``request(Syscall.OPEN, "/etc/passwd", 0)``."""
    return SyscallRequest(name, tuple(args))
