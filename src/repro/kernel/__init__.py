"""Simulated Unix kernel substrate.

This package stands in for the modified Linux kernel of the paper's
prototype.  It provides processes with POSIX-style credentials, a virtual
filesystem with permissions, per-process descriptor tables, a minimal network
stack, the system-call interface (including the paper's new detection calls
from Table 2), and runners for generator-based simulated programs.

The N-variant machinery itself (lockstep execution, monitoring, input
replication, unshared files, reexpression) lives in :mod:`repro.core` and is
layered *on top of* this kernel, mirroring how the paper layered its wrapper
code on top of stock kernel services.
"""

from repro.kernel.credentials import (
    Credentials,
    MAX_VALID_UID,
    NOBODY_UID,
    ROOT_GID,
    ROOT_UID,
    root_credentials,
    user_credentials,
    validate_gid,
    validate_uid,
)
from repro.kernel.errors import (
    Errno,
    IllegalInstructionFault,
    KernelError,
    ProcessKilled,
    SegmentationFault,
    VariantFault,
)
from repro.kernel.filesystem import (
    FileSystem,
    Inode,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    R_OK,
    StatResult,
    W_OK,
    X_OK,
)
from repro.kernel.host import (
    ACCESS_LOG,
    DEFAULT_DOCUMENTS,
    DOCROOT,
    DocumentSpec,
    ERROR_LOG,
    HTTPD_CONF,
    HTTP_PORT,
    SHADOW_FILE,
    build_filesystem,
    build_standard_host,
    install_diversified_user_db,
)
from repro.kernel.kernel import KernelStats, SimulatedKernel
from repro.kernel.libc import Libc, libc
from repro.kernel.network import Connection, ListeningSocket, NetworkStack
from repro.kernel.passwd import (
    GroupEntry,
    PasswdEntry,
    UserDatabase,
    default_group_entries,
    default_passwd_entries,
    diversify_group,
    diversify_passwd,
    format_group,
    format_passwd,
    parse_group,
    parse_passwd,
)
from repro.kernel.process import Process, ProcessState, ProcessTable
from repro.kernel.scheduler import Program, ProgramRunner, RoundRobinScheduler, RunResult, run_program
from repro.kernel.signals import Signal, SignalState
from repro.kernel.syscalls import (
    DETECTION_SYSCALLS,
    INPUT_SYSCALLS,
    OUTPUT_SYSCALLS,
    PATH_SYSCALLS,
    Syscall,
    SyscallRequest,
    SyscallResult,
    UID_COMPARISON_SYSCALLS,
    UID_PARAMETER_SYSCALLS,
    UID_RESULT_SYSCALLS,
    request,
)

__all__ = [
    "ACCESS_LOG",
    "Connection",
    "Credentials",
    "DEFAULT_DOCUMENTS",
    "DETECTION_SYSCALLS",
    "DOCROOT",
    "DocumentSpec",
    "ERROR_LOG",
    "Errno",
    "FileSystem",
    "GroupEntry",
    "HTTPD_CONF",
    "HTTP_PORT",
    "IllegalInstructionFault",
    "INPUT_SYSCALLS",
    "Inode",
    "KernelError",
    "KernelStats",
    "Libc",
    "ListeningSocket",
    "MAX_VALID_UID",
    "NOBODY_UID",
    "NetworkStack",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "OUTPUT_SYSCALLS",
    "PATH_SYSCALLS",
    "PasswdEntry",
    "Process",
    "ProcessKilled",
    "ProcessState",
    "ProcessTable",
    "Program",
    "ProgramRunner",
    "R_OK",
    "ROOT_GID",
    "ROOT_UID",
    "RoundRobinScheduler",
    "RunResult",
    "SHADOW_FILE",
    "SegmentationFault",
    "Signal",
    "SignalState",
    "SimulatedKernel",
    "StatResult",
    "Syscall",
    "SyscallRequest",
    "SyscallResult",
    "UID_COMPARISON_SYSCALLS",
    "UID_PARAMETER_SYSCALLS",
    "UID_RESULT_SYSCALLS",
    "UserDatabase",
    "VariantFault",
    "W_OK",
    "X_OK",
    "build_filesystem",
    "build_standard_host",
    "default_group_entries",
    "default_passwd_entries",
    "diversify_group",
    "diversify_passwd",
    "format_group",
    "format_passwd",
    "install_diversified_user_db",
    "libc",
    "parse_group",
    "parse_passwd",
    "request",
    "root_credentials",
    "run_program",
    "user_credentials",
    "validate_gid",
    "validate_uid",
]
