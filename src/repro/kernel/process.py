"""Simulated processes.

A process bundles the state the paper's kernel modifications track per
variant: credentials (the data under attack), a descriptor table (kept
slot-synchronised across variants for unshared files), an address space, a
signal state, and bookkeeping counters used by the performance model.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.kernel.credentials import Credentials, root_credentials
from repro.kernel.filetable import FileDescriptorTable
from repro.kernel.signals import SignalState
from repro.memory.address_space import AddressSpace


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    EXITED = "exited"
    FAULTED = "faulted"


@dataclasses.dataclass
class ProcessStats:
    """Per-process accounting used by the virtual-time performance model."""

    syscall_count: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_units: float = 0.0

    def charge_compute(self, units: float) -> None:
        """Add *units* of CPU work performed by this process."""
        self.compute_units += units


class Process:
    """One simulated process (or one variant of an N-variant system)."""

    def __init__(
        self,
        pid: int,
        name: str = "proc",
        *,
        credentials: Optional[Credentials] = None,
        address_space: Optional[AddressSpace] = None,
        cwd: str = "/",
    ):
        self.pid = pid
        self.name = name
        self.credentials = credentials if credentials is not None else root_credentials()
        self.address_space = address_space if address_space is not None else AddressSpace()
        self.fds = FileDescriptorTable()
        self.signals = SignalState()
        self.cwd = cwd
        self.state = ProcessState.RUNNABLE
        self.exit_code: Optional[int] = None
        self.fault_reason: Optional[str] = None
        self.stats = ProcessStats()

    # -- lifecycle ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the process has not exited or faulted."""
        return self.state in (ProcessState.RUNNABLE, ProcessState.BLOCKED)

    def exit(self, code: int) -> None:
        """Mark the process as exited with *code* and release descriptors."""
        self.exit_code = code
        self.state = ProcessState.EXITED
        self.fds.close_all()

    def fault(self, reason: str) -> None:
        """Mark the process as terminated by a fault (segfault, kill, ...)."""
        self.fault_reason = reason
        self.state = ProcessState.FAULTED
        self.fds.close_all()

    def __repr__(self) -> str:
        return f"<Process pid={self.pid} name={self.name!r} state={self.state.value}>"


class ProcessTable:
    """The kernel's table of live and reaped processes."""

    def __init__(self) -> None:
        self._processes: dict[int, Process] = {}
        self._next_pid = 1

    def spawn(
        self,
        name: str = "proc",
        *,
        credentials: Optional[Credentials] = None,
        address_space: Optional[AddressSpace] = None,
    ) -> Process:
        """Create a new process and register it."""
        process = Process(
            self._next_pid,
            name,
            credentials=credentials,
            address_space=address_space,
        )
        self._processes[process.pid] = process
        self._next_pid += 1
        return process

    def get(self, pid: int) -> Optional[Process]:
        """Look up a process by pid (``None`` if unknown)."""
        return self._processes.get(pid)

    def alive(self) -> list[Process]:
        """All processes that have not exited or faulted."""
        return [p for p in self._processes.values() if p.alive]

    def all(self) -> list[Process]:
        """All processes ever spawned, in pid order."""
        return [self._processes[pid] for pid in sorted(self._processes)]
