"""In-memory Unix-like virtual filesystem.

The paper's case study depends on the filesystem in two ways:

* Apache reads trusted configuration data (``/etc/passwd``, ``/etc/group``,
  ``httpd.conf``) whose UID contents must be diversified per variant -- the
  *unshared files* mechanism of Section 3.4 opens ``/etc/passwd-0`` for
  variant 0 and ``/etc/passwd-1`` for variant 1.
* Whether a request succeeds depends on file permissions checked against the
  server's (possibly corrupted) credentials, which is exactly what the UID
  attack tries to subvert.

This module provides a small but complete VFS: hierarchical directories,
regular files with byte contents, ownership and permission bits, and
permission checks that consult :class:`~repro.kernel.credentials.Credentials`.
"""

from __future__ import annotations

import dataclasses
import posixpath
import stat as stat_module
from typing import Iterator

from repro.kernel.credentials import Credentials, ROOT_GID, ROOT_UID
from repro.kernel.errors import Errno, KernelError

# Permission bit masks (same values as the POSIX ones).
S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRGRP = 0o040
S_IWGRP = 0o020
S_IXGRP = 0o010
S_IROTH = 0o004
S_IWOTH = 0o002
S_IXOTH = 0o001

# ``access`` / permission-check modes.
R_OK = 4
W_OK = 2
X_OK = 1
F_OK = 0

# ``open`` flags (subset).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_ACCMODE = 0o3


@dataclasses.dataclass(frozen=True)
class StatResult:
    """Result of ``stat``/``fstat``: the canonical metadata of an inode."""

    inode_number: int
    mode: int
    uid: int
    gid: int
    size: int
    is_directory: bool

    def as_tuple(self) -> tuple[int, ...]:
        """Tuple form used by monitors when comparing stat results."""
        return (
            self.inode_number,
            self.mode,
            self.uid,
            self.gid,
            self.size,
            int(self.is_directory),
        )


class Inode:
    """A filesystem object: either a regular file or a directory."""

    _next_number = 1

    def __init__(self, *, mode: int, uid: int, gid: int, is_directory: bool):
        self.number = Inode._next_number
        Inode._next_number += 1
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.is_directory = is_directory
        self.data = bytearray()
        self.entries: dict[str, "Inode"] = {} if is_directory else {}

    # -- metadata ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Size in bytes (0 for directories)."""
        return 0 if self.is_directory else len(self.data)

    def stat(self) -> StatResult:
        """Return the :class:`StatResult` describing this inode."""
        file_type = stat_module.S_IFDIR if self.is_directory else stat_module.S_IFREG
        return StatResult(
            inode_number=self.number,
            mode=file_type | self.mode,
            uid=self.uid,
            gid=self.gid,
            size=self.size,
            is_directory=self.is_directory,
        )

    # -- permission checking ------------------------------------------------

    def permits(self, creds: Credentials, want: int) -> bool:
        """Check whether *creds* grants the access bits in *want* (R/W/X_OK).

        Root bypasses read/write checks and execute checks when any execute
        bit is set, mirroring Unix semantics.
        """
        if want == F_OK:
            return True
        if creds.euid == ROOT_UID:
            if want & X_OK and not self.is_directory:
                any_exec = self.mode & (S_IXUSR | S_IXGRP | S_IXOTH)
                return bool(any_exec)
            return True
        if creds.euid == self.uid:
            shift = 6
        elif creds.in_group(self.gid):
            shift = 3
        else:
            shift = 0
        granted = (self.mode >> shift) & 0o7
        return (granted & want) == want


class FileSystem:
    """A tree of :class:`Inode` objects rooted at ``/``."""

    def __init__(self) -> None:
        self.root = Inode(mode=0o755, uid=ROOT_UID, gid=ROOT_GID, is_directory=True)

    # -- path handling -------------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path or not path.startswith("/"):
            raise KernelError(Errno.EINVAL, f"path must be absolute: {path!r}")
        return posixpath.normpath(path)

    @staticmethod
    def split(path: str) -> list[str]:
        """Split an absolute path into its components (no empty parts)."""
        normalized = FileSystem._normalize(path)
        if normalized == "/":
            return []
        return [part for part in normalized.split("/") if part]

    def _lookup(self, path: str) -> Inode:
        node = self.root
        for part in self.split(path):
            if not node.is_directory:
                raise KernelError(Errno.ENOTDIR, path)
            child = node.entries.get(part)
            if child is None:
                raise KernelError(Errno.ENOENT, path)
            node = child
        return node

    def _lookup_parent(self, path: str) -> tuple[Inode, str]:
        parts = self.split(path)
        if not parts:
            raise KernelError(Errno.EINVAL, "cannot operate on /")
        parent = self.root
        for part in parts[:-1]:
            child = parent.entries.get(part)
            if child is None:
                raise KernelError(Errno.ENOENT, path)
            if not child.is_directory:
                raise KernelError(Errno.ENOTDIR, path)
            parent = child
        return parent, parts[-1]

    # -- queries -------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if *path* resolves to an inode."""
        try:
            self._lookup(path)
        except KernelError:
            return False
        return True

    def lookup(self, path: str) -> Inode:
        """Resolve *path* to its inode, raising ``ENOENT``/``ENOTDIR``."""
        return self._lookup(path)

    def stat(self, path: str) -> StatResult:
        """``stat`` the inode at *path*."""
        return self._lookup(path).stat()

    def listdir(self, path: str) -> list[str]:
        """Return the sorted names in the directory at *path*."""
        node = self._lookup(path)
        if not node.is_directory:
            raise KernelError(Errno.ENOTDIR, path)
        return sorted(node.entries)

    def walk(self, path: str = "/") -> Iterator[tuple[str, Inode]]:
        """Yield ``(path, inode)`` pairs for the subtree rooted at *path*."""
        node = self._lookup(path)
        yield self._normalize(path), node
        if node.is_directory:
            base = self._normalize(path)
            for name in sorted(node.entries):
                child_path = posixpath.join(base, name)
                yield from self.walk(child_path)

    def access(self, path: str, creds: Credentials, mode: int) -> bool:
        """Check whether *creds* may access *path* with *mode* (R/W/X/F_OK)."""
        node = self._lookup(path)
        return node.permits(creds, mode)

    # -- mutation --------------------------------------------------------------

    def mkdir(
        self,
        path: str,
        *,
        mode: int = 0o755,
        uid: int = ROOT_UID,
        gid: int = ROOT_GID,
        parents: bool = False,
    ) -> Inode:
        """Create a directory at *path*."""
        if parents:
            accumulated = ""
            node = self.root
            for part in self.split(path):
                accumulated += "/" + part
                if not self.exists(accumulated):
                    self.mkdir(accumulated, mode=mode, uid=uid, gid=gid)
            return self._lookup(path)
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise KernelError(Errno.EEXIST, path)
        node = Inode(mode=mode, uid=uid, gid=gid, is_directory=True)
        parent.entries[name] = node
        return node

    def create_file(
        self,
        path: str,
        content: bytes | str = b"",
        *,
        mode: int = 0o644,
        uid: int = ROOT_UID,
        gid: int = ROOT_GID,
    ) -> Inode:
        """Create (or replace) a regular file at *path* with *content*."""
        if isinstance(content, str):
            content = content.encode()
        parent, name = self._lookup_parent(path)
        existing = parent.entries.get(name)
        if existing is not None and existing.is_directory:
            raise KernelError(Errno.EISDIR, path)
        node = Inode(mode=mode, uid=uid, gid=gid, is_directory=False)
        node.data = bytearray(content)
        parent.entries[name] = node
        return node

    def write_file(self, path: str, content: bytes | str) -> Inode:
        """Replace the content of an existing file at *path*."""
        if isinstance(content, str):
            content = content.encode()
        node = self._lookup(path)
        if node.is_directory:
            raise KernelError(Errno.EISDIR, path)
        node.data = bytearray(content)
        return node

    def read_file(self, path: str) -> bytes:
        """Return the full content of the file at *path*."""
        node = self._lookup(path)
        if node.is_directory:
            raise KernelError(Errno.EISDIR, path)
        return bytes(node.data)

    def unlink(self, path: str) -> None:
        """Remove the file at *path*."""
        parent, name = self._lookup_parent(path)
        node = parent.entries.get(name)
        if node is None:
            raise KernelError(Errno.ENOENT, path)
        if node.is_directory:
            if node.entries:
                raise KernelError(Errno.ENOTEMPTY, path)
        del parent.entries[name]

    def rename(self, old: str, new: str) -> None:
        """Rename/move the inode at *old* to *new*."""
        node = self._lookup(old)
        new_parent, new_name = self._lookup_parent(new)
        old_parent, old_name = self._lookup_parent(old)
        new_parent.entries[new_name] = node
        del old_parent.entries[old_name]

    def chown(self, path: str, uid: int, gid: int) -> None:
        """Change ownership of the inode at *path* (-1 leaves a field alone)."""
        node = self._lookup(path)
        if uid != -1:
            node.uid = uid
        if gid != -1:
            node.gid = gid

    def chmod(self, path: str, mode: int) -> None:
        """Change the permission bits of the inode at *path*."""
        node = self._lookup(path)
        node.mode = mode & 0o7777
