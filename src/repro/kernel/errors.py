"""Error model for the simulated kernel.

The simulated kernel mirrors the Unix convention of reporting failures with
``errno`` codes.  System calls made by simulated programs never raise Python
exceptions across the kernel boundary for *expected* failures (permission
denied, missing file, bad descriptor, ...); instead they return a
:class:`~repro.kernel.syscalls.SyscallResult` carrying an :class:`Errno`.

Faults that correspond to hardware traps in the paper's setting --
segmentation faults from address-space partitioning, illegal-instruction
traps from instruction-set tagging -- are modelled as exceptions derived from
:class:`VariantFault`.  The N-variant monitor catches these and converts them
into alarms, exactly as the paper's monitor observes a variant crashing.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """Subset of Unix errno values used by the simulated kernel."""

    OK = 0
    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    EBADF = 9
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EPIPE = 32
    ERANGE = 34
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    ENOTSOCK = 88
    EADDRINUSE = 98
    ECONNRESET = 104
    ENOTCONN = 107
    ETIMEDOUT = 110
    ECONNREFUSED = 111


class KernelError(Exception):
    """Internal kernel error carrying an errno.

    Kernel subsystems (VFS, credential checks, descriptor tables) raise this
    to signal a failed operation.  The syscall dispatcher catches it and turns
    it into an error :class:`~repro.kernel.syscalls.SyscallResult`, so variant
    programs observe errno values rather than exceptions.
    """

    def __init__(self, errno: Errno, message: str = ""):
        self.errno = Errno(errno)
        self.message = message or self.errno.name
        super().__init__(f"[{self.errno.name}] {self.message}")


class VariantFault(Exception):
    """Base class for hardware-style faults that terminate a variant.

    These are the events the paper relies on for detection: a variant that
    receives attack data crafted for its sibling traps instead of executing
    the attacker's intent, and the monitor observes the divergence.
    """

    #: short machine-readable fault kind, overridden by subclasses
    kind = "fault"

    def __init__(self, message: str = "", *, address: int | None = None):
        self.address = address
        self.message = message
        super().__init__(message)


class SegmentationFault(VariantFault):
    """Raised when a variant accesses memory outside its address space.

    Under address-space partitioning (Figure 1 of the paper) an injected
    absolute address is valid in at most one variant; the other variant's
    access raises this fault, which the monitor reports as an attack.
    """

    kind = "segfault"


class IllegalInstructionFault(VariantFault):
    """Raised when a variant executes an instruction with the wrong tag.

    Under instruction-set tagging, injected (untagged or wrongly tagged)
    instructions fail the tag check in at least one variant.
    """

    kind = "illegal-instruction"


class ProcessKilled(VariantFault):
    """Raised when the kernel forcibly terminates a variant process."""

    kind = "killed"
