"""The simulated kernel: system-call dispatch against host state.

This is the substrate the paper's prototype modified.  A
:class:`SimulatedKernel` owns the host-wide state (filesystem, network stack,
process table, virtual clock) and executes one system call at a time on
behalf of a process.  It knows nothing about variants: the N-variant engine
in :mod:`repro.core` wraps this kernel, deciding *which* variant's call is
actually executed, replicating input results, redirecting unshared-file
opens, and applying reexpression functions -- exactly the division of labour
between the stock kernel and the paper's wrapper layer.

The dispatcher converts :class:`~repro.kernel.errors.KernelError` into error
results carrying errno values so that simulated programs observe Unix-style
failures rather than Python exceptions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.kernel.credentials import ROOT_UID
from repro.kernel.errors import Errno, KernelError, SegmentationFault
from repro.kernel.filesystem import (
    FileSystem,
    O_ACCMODE,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    R_OK,
    W_OK,
)
from repro.kernel.filetable import OpenFile, SocketDescriptor
from repro.kernel.network import Connection, ListeningSocket, NetworkStack
from repro.kernel.process import Process, ProcessTable
from repro.kernel.signals import Signal
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult


@dataclasses.dataclass
class KernelStats:
    """Host-wide accounting used by the virtual-time performance model."""

    syscall_count: int = 0
    syscall_breakdown: dict[str, int] = dataclasses.field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0

    def record(self, name: Syscall) -> None:
        """Count one executed system call."""
        self.syscall_count += 1
        self.syscall_breakdown[name.value] = self.syscall_breakdown.get(name.value, 0) + 1


class SimulatedKernel:
    """Executes system calls for simulated processes."""

    def __init__(
        self,
        filesystem: FileSystem | None = None,
        network: NetworkStack | None = None,
    ):
        self.fs = filesystem if filesystem is not None else FileSystem()
        self.network = network if network is not None else NetworkStack()
        self.processes = ProcessTable()
        self.stats = KernelStats()
        self.clock = 0
        self._random_state = 0x12345678
        self._handlers: dict[Syscall, Callable[..., Any]] = {
            Syscall.EXIT: self._sys_exit,
            Syscall.GETPID: self._sys_getpid,
            Syscall.FORK: self._sys_unsupported,
            Syscall.WAITPID: self._sys_unsupported,
            Syscall.KILL: self._sys_kill,
            Syscall.GETUID: self._sys_getuid,
            Syscall.GETEUID: self._sys_geteuid,
            Syscall.GETGID: self._sys_getgid,
            Syscall.GETEGID: self._sys_getegid,
            Syscall.SETUID: self._sys_setuid,
            Syscall.SETEUID: self._sys_seteuid,
            Syscall.SETREUID: self._sys_setreuid,
            Syscall.SETRESUID: self._sys_setresuid,
            Syscall.SETGID: self._sys_setgid,
            Syscall.SETEGID: self._sys_setegid,
            Syscall.SETGROUPS: self._sys_setgroups,
            Syscall.OPEN: self._sys_open,
            Syscall.CLOSE: self._sys_close,
            Syscall.READ: self._sys_read,
            Syscall.WRITE: self._sys_write,
            Syscall.LSEEK: self._sys_lseek,
            Syscall.STAT: self._sys_stat,
            Syscall.FSTAT: self._sys_fstat,
            Syscall.ACCESS: self._sys_access,
            Syscall.MKDIR: self._sys_mkdir,
            Syscall.UNLINK: self._sys_unlink,
            Syscall.RENAME: self._sys_rename,
            Syscall.CHOWN: self._sys_chown,
            Syscall.CHMOD: self._sys_chmod,
            Syscall.GETDENTS: self._sys_getdents,
            Syscall.CHDIR: self._sys_chdir,
            Syscall.SOCKET: self._sys_socket,
            Syscall.BIND: self._sys_bind,
            Syscall.LISTEN: self._sys_listen,
            Syscall.ACCEPT: self._sys_accept,
            Syscall.RECV: self._sys_recv,
            Syscall.SEND: self._sys_send,
            Syscall.SHUTDOWN: self._sys_shutdown,
            Syscall.TIME: self._sys_time,
            Syscall.GETRANDOM: self._sys_getrandom,
            Syscall.NANOSLEEP: self._sys_nanosleep,
            Syscall.PEEK: self._sys_peek,
            Syscall.UID_VALUE: self._sys_uid_value,
            Syscall.COND_CHK: self._sys_cond_chk,
            Syscall.CC_EQ: self._sys_cc(lambda a, b: a == b),
            Syscall.CC_NEQ: self._sys_cc(lambda a, b: a != b),
            Syscall.CC_LT: self._sys_cc(lambda a, b: a < b),
            Syscall.CC_LEQ: self._sys_cc(lambda a, b: a <= b),
            Syscall.CC_GT: self._sys_cc(lambda a, b: a > b),
            Syscall.CC_GEQ: self._sys_cc(lambda a, b: a >= b),
        }

    # -- process management ----------------------------------------------------

    def spawn_process(self, name: str = "proc", **kwargs: Any) -> Process:
        """Create a new process registered with this kernel."""
        return self.processes.spawn(name, **kwargs)

    # -- dispatch ----------------------------------------------------------------

    def execute(self, process: Process, request: SyscallRequest) -> SyscallResult:
        """Execute *request* on behalf of *process* and return its result."""
        if not process.alive:
            return SyscallResult.failure(Errno.ESRCH)
        handler = self._handlers.get(request.name)
        if handler is None:
            return SyscallResult.failure(Errno.ENOSYS)
        self.clock += 1
        self.stats.record(request.name)
        process.stats.syscall_count += 1
        try:
            value = handler(process, *request.args)
        except KernelError as error:
            return SyscallResult.failure(error.errno)
        except TypeError as error:
            # Wrong number/kind of arguments from the program: EINVAL, not a
            # Python crash -- mirrors the kernel rejecting a malformed call.
            if "positional argument" in str(error) or "argument" in str(error):
                return SyscallResult.failure(Errno.EINVAL)
            raise
        return SyscallResult.success(value)

    # -- process control handlers ---------------------------------------------------

    def _sys_exit(self, process: Process, code: int = 0) -> int:
        process.exit(int(code))
        return 0

    def _sys_getpid(self, process: Process) -> int:
        return process.pid

    def _sys_unsupported(self, process: Process, *args: Any) -> int:
        raise KernelError(
            Errno.ENOSYS,
            "fork/waitpid are not supported by the simulated kernel; the "
            "mini-httpd uses a single-process event loop (see DESIGN.md)",
        )

    def _sys_kill(self, process: Process, pid: int, signal: int) -> int:
        target = self.processes.get(pid)
        if target is None:
            raise KernelError(Errno.ESRCH, f"no process {pid}")
        if not process.credentials.is_privileged() and process.credentials.euid not in (
            target.credentials.ruid,
            target.credentials.euid,
        ):
            raise KernelError(Errno.EPERM, "kill not permitted")
        target.signals.post(Signal(signal))
        if target.signals.is_fatal(Signal(signal)):
            target.fault(f"killed by signal {Signal(signal).name}")
        return 0

    # -- credential handlers ------------------------------------------------------------

    def _sys_getuid(self, process: Process) -> int:
        return process.credentials.ruid

    def _sys_geteuid(self, process: Process) -> int:
        return process.credentials.euid

    def _sys_getgid(self, process: Process) -> int:
        return process.credentials.rgid

    def _sys_getegid(self, process: Process) -> int:
        return process.credentials.egid

    def _sys_setuid(self, process: Process, uid: int) -> int:
        process.credentials.setuid(uid)
        return 0

    def _sys_seteuid(self, process: Process, euid: int) -> int:
        process.credentials.seteuid(euid)
        return 0

    def _sys_setreuid(self, process: Process, ruid: int, euid: int) -> int:
        process.credentials.setreuid(ruid, euid)
        return 0

    def _sys_setresuid(self, process: Process, ruid: int, euid: int, suid: int) -> int:
        process.credentials.setresuid(ruid, euid, suid)
        return 0

    def _sys_setgid(self, process: Process, gid: int) -> int:
        process.credentials.setgid(gid)
        return 0

    def _sys_setegid(self, process: Process, egid: int) -> int:
        process.credentials.setegid(egid)
        return 0

    def _sys_setgroups(self, process: Process, groups: tuple[int, ...]) -> int:
        process.credentials.setgroups(groups)
        return 0

    # -- filesystem handlers ----------------------------------------------------------------

    def _sys_open(self, process: Process, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        creds = process.credentials
        accmode = flags & O_ACCMODE
        if not self.fs.exists(path):
            if not flags & O_CREAT:
                raise KernelError(Errno.ENOENT, path)
            parent = path.rsplit("/", 1)[0] or "/"
            if not self.fs.access(parent, creds, W_OK):
                raise KernelError(Errno.EACCES, f"cannot create in {parent}")
            self.fs.create_file(path, b"", mode=mode, uid=creds.euid, gid=creds.egid)
        inode = self.fs.lookup(path)
        if inode.is_directory and accmode != O_RDONLY:
            raise KernelError(Errno.EISDIR, path)
        want = 0
        if accmode in (O_RDONLY, O_RDWR):
            want |= R_OK
        if accmode in (O_WRONLY, O_RDWR):
            want |= W_OK
        if not inode.permits(creds, want):
            raise KernelError(Errno.EACCES, path)
        if flags & O_TRUNC and not inode.is_directory:
            inode.data = bytearray()
        open_file = OpenFile(inode=inode, flags=flags, path=path)
        return process.fds.allocate(open_file)

    def _sys_close(self, process: Process, fd: int) -> int:
        process.fds.close(fd)
        return 0

    def _sys_read(self, process: Process, fd: int, count: int) -> bytes:
        entry = process.fds.get(fd)
        if isinstance(entry, SocketDescriptor):
            return self._socket_recv(entry, count)
        data = process.fds.get_file(fd).read(count)
        self.stats.bytes_read += len(data)
        process.stats.bytes_read += len(data)
        return data

    def _sys_write(self, process: Process, fd: int, data: bytes) -> int:
        if isinstance(data, str):
            data = data.encode()
        entry = process.fds.get(fd)
        if isinstance(entry, SocketDescriptor):
            written = self._socket_send(entry, data)
        else:
            written = process.fds.get_file(fd).write(bytes(data))
        self.stats.bytes_written += written
        process.stats.bytes_written += written
        return written

    def _sys_lseek(self, process: Process, fd: int, offset: int, whence: int = 0) -> int:
        return process.fds.get_file(fd).seek(offset, whence)

    def _sys_stat(self, process: Process, path: str) -> tuple[int, ...]:
        return self.fs.stat(path).as_tuple()

    def _sys_fstat(self, process: Process, fd: int) -> tuple[int, ...]:
        return process.fds.get_file(fd).inode.stat().as_tuple()

    def _sys_access(self, process: Process, path: str, mode: int) -> int:
        if not self.fs.access(path, process.credentials, mode):
            raise KernelError(Errno.EACCES, path)
        return 0

    def _sys_mkdir(self, process: Process, path: str, mode: int = 0o755) -> int:
        creds = process.credentials
        parent = path.rsplit("/", 1)[0] or "/"
        if not self.fs.access(parent, creds, W_OK):
            raise KernelError(Errno.EACCES, parent)
        self.fs.mkdir(path, mode=mode, uid=creds.euid, gid=creds.egid)
        return 0

    def _sys_unlink(self, process: Process, path: str) -> int:
        creds = process.credentials
        parent = path.rsplit("/", 1)[0] or "/"
        if not self.fs.access(parent, creds, W_OK):
            raise KernelError(Errno.EACCES, parent)
        self.fs.unlink(path)
        return 0

    def _sys_rename(self, process: Process, old: str, new: str) -> int:
        self.fs.rename(old, new)
        return 0

    def _sys_chown(self, process: Process, path: str, uid: int, gid: int) -> int:
        creds = process.credentials
        if not creds.is_privileged():
            raise KernelError(Errno.EPERM, "chown requires privilege")
        self.fs.chown(path, uid, gid)
        return 0

    def _sys_chmod(self, process: Process, path: str, mode: int) -> int:
        creds = process.credentials
        inode = self.fs.lookup(path)
        if not creds.is_privileged() and creds.euid != inode.uid:
            raise KernelError(Errno.EPERM, "chmod requires ownership")
        self.fs.chmod(path, mode)
        return 0

    def _sys_getdents(self, process: Process, path: str) -> tuple[str, ...]:
        return tuple(self.fs.listdir(path))

    def _sys_chdir(self, process: Process, path: str) -> int:
        inode = self.fs.lookup(path)
        if not inode.is_directory:
            raise KernelError(Errno.ENOTDIR, path)
        process.cwd = path
        return 0

    # -- socket handlers ---------------------------------------------------------------------

    def _sys_socket(self, process: Process) -> int:
        return process.fds.allocate(SocketDescriptor(endpoint=None))

    def _sys_bind(self, process: Process, fd: int, port: int) -> int:
        descriptor = process.fds.get_socket(fd)
        if port < 1024 and not process.credentials.is_privileged():
            raise KernelError(Errno.EACCES, f"binding port {port} requires privilege")
        descriptor.endpoint = self.network.bind(port)
        descriptor.path = f"<listener:{port}>"
        return 0

    def _sys_listen(self, process: Process, fd: int, backlog: int = 128) -> int:
        descriptor = process.fds.get_socket(fd)
        if not isinstance(descriptor.endpoint, ListeningSocket):
            raise KernelError(Errno.EINVAL, "listen on an unbound socket")
        descriptor.endpoint.backlog = backlog
        return 0

    def _sys_accept(self, process: Process, fd: int) -> int:
        descriptor = process.fds.get_socket(fd)
        if not isinstance(descriptor.endpoint, ListeningSocket):
            raise KernelError(Errno.EINVAL, "accept on a non-listening socket")
        connection = descriptor.endpoint.accept()
        conn_descriptor = SocketDescriptor(
            endpoint=connection, path=f"<conn:{connection.connection_id}>"
        )
        return process.fds.allocate(conn_descriptor)

    def _socket_recv(self, descriptor: SocketDescriptor, count: int) -> bytes:
        if not isinstance(descriptor.endpoint, Connection):
            raise KernelError(Errno.ENOTCONN, "recv on a non-connected socket")
        data = descriptor.endpoint.recv(count)
        self.stats.bytes_read += len(data)
        return data

    def _socket_send(self, descriptor: SocketDescriptor, data: bytes) -> int:
        if not isinstance(descriptor.endpoint, Connection):
            raise KernelError(Errno.ENOTCONN, "send on a non-connected socket")
        return descriptor.endpoint.send(bytes(data))

    def _sys_recv(self, process: Process, fd: int, count: int) -> bytes:
        data = self._socket_recv(process.fds.get_socket(fd), count)
        process.stats.bytes_read += len(data)
        return data

    def _sys_send(self, process: Process, fd: int, data: bytes) -> int:
        if isinstance(data, str):
            data = data.encode()
        written = self._socket_send(process.fds.get_socket(fd), data)
        self.stats.bytes_written += written
        process.stats.bytes_written += written
        return written

    def _sys_shutdown(self, process: Process, fd: int) -> int:
        descriptor = process.fds.get_socket(fd)
        if isinstance(descriptor.endpoint, Connection):
            descriptor.endpoint.closed_by_server = True
        elif isinstance(descriptor.endpoint, ListeningSocket):
            self.network.unbind(descriptor.endpoint.port)
        return 0

    # -- misc handlers ---------------------------------------------------------------------

    def _sys_time(self, process: Process) -> int:
        return self.clock

    def _sys_getrandom(self, process: Process, count: int) -> bytes:
        # Deterministic xorshift stream: reproducible runs matter more for the
        # simulation than cryptographic quality.
        output = bytearray()
        state = self._random_state
        while len(output) < count:
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            output.extend(state.to_bytes(4, "little"))
        self._random_state = state
        return bytes(output[:count])

    def _sys_nanosleep(self, process: Process, ticks: int) -> int:
        self.clock += max(0, int(ticks))
        return 0

    def _sys_peek(self, process: Process, address: int, count: int = 4) -> bytes:
        # A checked read of the caller's own address space.  An unmapped or
        # out-of-partition address returns EFAULT as an errno result instead
        # of killing the process: a unanimous miss stays silent (no variant
        # faults, no lifecycle divergence), which is what makes it the probe
        # primitive of the attacker model -- only a *partial* hit, where some
        # variants read data and others do not, diverges and alarms.
        if count <= 0 or count > 4096:
            raise KernelError(Errno.EINVAL, f"peek count {count} out of range")
        try:
            return process.address_space.load_bytes(int(address), int(count))
        except SegmentationFault as fault:
            raise KernelError(Errno.EFAULT, str(fault)) from None

    # -- detection syscalls (Table 2), single-variant semantics --------------------------------
    #
    # In a plain (non-redundant) run these calls behave exactly as the paper
    # specifies for one variant: uid_value and cond_chk return their argument,
    # the cc_* family computes the comparison.  The cross-variant equivalence
    # checks are performed by the N-variant wrapper layer before the call
    # reaches this kernel.

    def _sys_uid_value(self, process: Process, uid: int) -> int:
        return uid

    def _sys_cond_chk(self, process: Process, condition: bool) -> bool:
        return bool(condition)

    def _sys_cc(self, comparison: Callable[[int, int], bool]) -> Callable[..., bool]:
        def handler(process: Process, left: int, right: int) -> bool:
            return bool(comparison(left, right))

        return handler

    # -- helpers for drivers (not syscalls) -------------------------------------------------------

    def client_connect(self, port: int, request: bytes, *, client: str = "client") -> Connection:
        """Inject a client connection carrying *request* bytes (driver-side)."""
        return self.network.connect(port, request, client=client)
