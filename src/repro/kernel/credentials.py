"""Process credentials: user and group identities.

The paper's UID variation protects the data the kernel consults when deciding
what a process may do.  This module provides that data model: the real,
effective and saved user/group ids of a process, together with the POSIX
rules that govern how ``setuid``-family system calls may change them.

Two representation details matter for the reproduction:

* UID values are 32-bit unsigned integers.  The paper's ``R_1`` reexpression
  function is ``u XOR 0x7FFFFFFF``, chosen over ``0xFFFFFFFF`` because the
  kernel treats "negative" UIDs (high bit set) specially.  We reproduce that
  constraint: :func:`validate_uid` rejects values with the sign bit set, so a
  full-flip reexpression really does break inside the simulated kernel (see
  the ablation benchmark).
* ``ROOT_UID`` is 0, and privilege checks are expressed through
  :meth:`Credentials.is_privileged` so that every decision point the attacker
  might target funnels through one place.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.kernel.errors import Errno, KernelError

#: Number of bits in a uid_t / gid_t value.
UID_BITS = 32

#: Mask of all uid_t bits.
UID_MASK = (1 << UID_BITS) - 1

#: The superuser id.
ROOT_UID = 0

#: The superuser's primary group.
ROOT_GID = 0

#: Conventional "overflow"/nobody uid used for unmapped identities.
NOBODY_UID = 65534

#: Highest UID value the simulated kernel accepts.  UIDs with the sign bit
#: set are rejected, mirroring the Linux behaviour the paper cites as the
#: reason the authors could not flip the high bit in their reexpression
#: function.
MAX_VALID_UID = 0x7FFFFFFF


def validate_uid(value: int) -> int:
    """Validate *value* as a uid_t the kernel will accept.

    Returns the value unchanged if it is a non-negative integer that fits in
    31 bits.  Raises :class:`KernelError` with ``EINVAL`` otherwise.  This is
    the simulated analogue of the kernel's special treatment of negative UID
    values described in Section 3.2 of the paper.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise KernelError(Errno.EINVAL, f"uid must be an integer, got {value!r}")
    if value < 0:
        raise KernelError(Errno.EINVAL, f"negative uid {value}")
    if value > MAX_VALID_UID:
        raise KernelError(
            Errno.EINVAL,
            f"uid 0x{value:08x} has the sign bit set; the kernel treats such "
            "values as special and rejects them",
        )
    return value


def validate_gid(value: int) -> int:
    """Validate *value* as a gid_t; same rules as :func:`validate_uid`."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise KernelError(Errno.EINVAL, f"gid must be an integer, got {value!r}")
    if value < 0 or value > MAX_VALID_UID:
        raise KernelError(Errno.EINVAL, f"invalid gid {value}")
    return value


@dataclasses.dataclass
class Credentials:
    """The identity of a simulated process.

    Follows the POSIX model of real / effective / saved ids.  The effective
    ids are the ones consulted for permission checks; the real and saved ids
    bound what an unprivileged process may switch its effective ids to.
    """

    ruid: int = ROOT_UID
    euid: int = ROOT_UID
    suid: int = ROOT_UID
    rgid: int = ROOT_GID
    egid: int = ROOT_GID
    sgid: int = ROOT_GID
    groups: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for uid in (self.ruid, self.euid, self.suid):
            validate_uid(uid)
        for gid in (self.rgid, self.egid, self.sgid):
            validate_gid(gid)
        self.groups = tuple(validate_gid(g) for g in self.groups)

    # -- queries ----------------------------------------------------------

    def is_privileged(self) -> bool:
        """True when the process runs with superuser privileges."""
        return self.euid == ROOT_UID

    def in_group(self, gid: int) -> bool:
        """True when *gid* is the effective group or a supplementary group."""
        return gid == self.egid or gid in self.groups

    def copy(self) -> "Credentials":
        """Return an independent copy of these credentials."""
        return dataclasses.replace(self)

    def as_tuple(self) -> tuple[int, ...]:
        """Canonical tuple form, used by the monitor for equivalence checks."""
        return (
            self.ruid,
            self.euid,
            self.suid,
            self.rgid,
            self.egid,
            self.sgid,
        ) + tuple(sorted(self.groups))

    # -- mutation following POSIX setuid/setgid semantics ------------------

    def setuid(self, uid: int) -> None:
        """Apply ``setuid(uid)`` semantics.

        A privileged process sets all three of real, effective and saved uid,
        irrevocably dropping privilege when *uid* is not root.  An
        unprivileged process may only switch to its real or saved uid.
        """
        validate_uid(uid)
        if self.is_privileged():
            self.ruid = self.euid = self.suid = uid
        elif uid in (self.ruid, self.suid):
            self.euid = uid
        else:
            raise KernelError(Errno.EPERM, f"setuid({uid}) not permitted")

    def seteuid(self, euid: int) -> None:
        """Apply ``seteuid(euid)`` semantics."""
        validate_uid(euid)
        if self.is_privileged() or euid in (self.ruid, self.euid, self.suid):
            self.euid = euid
        else:
            raise KernelError(Errno.EPERM, f"seteuid({euid}) not permitted")

    def setreuid(self, ruid: int, euid: int) -> None:
        """Apply ``setreuid(ruid, euid)`` semantics; -1 leaves a field alone."""
        new_ruid = self.ruid if ruid == -1 else validate_uid(ruid)
        new_euid = self.euid if euid == -1 else validate_uid(euid)
        if not self.is_privileged():
            allowed = {self.ruid, self.euid, self.suid}
            if new_ruid not in allowed or new_euid not in allowed:
                raise KernelError(Errno.EPERM, "setreuid not permitted")
        # POSIX: if the real uid changes or the effective uid is set to a
        # value other than the previous real uid, the saved uid is set to the
        # new effective uid.
        if new_ruid != self.ruid or new_euid != self.ruid:
            self.suid = new_euid
        self.ruid = new_ruid
        self.euid = new_euid

    def setresuid(self, ruid: int, euid: int, suid: int) -> None:
        """Apply ``setresuid`` semantics; -1 leaves a field alone."""
        targets = []
        for requested, current in ((ruid, self.ruid), (euid, self.euid), (suid, self.suid)):
            targets.append(current if requested == -1 else validate_uid(requested))
        if not self.is_privileged():
            allowed = {self.ruid, self.euid, self.suid}
            for value in targets:
                if value not in allowed:
                    raise KernelError(Errno.EPERM, "setresuid not permitted")
        self.ruid, self.euid, self.suid = targets

    def setgid(self, gid: int) -> None:
        """Apply ``setgid(gid)`` semantics (mirror of :meth:`setuid`)."""
        validate_gid(gid)
        if self.is_privileged():
            self.rgid = self.egid = self.sgid = gid
        elif gid in (self.rgid, self.sgid):
            self.egid = gid
        else:
            raise KernelError(Errno.EPERM, f"setgid({gid}) not permitted")

    def setegid(self, egid: int) -> None:
        """Apply ``setegid(egid)`` semantics."""
        validate_gid(egid)
        if self.is_privileged() or egid in (self.rgid, self.egid, self.sgid):
            self.egid = egid
        else:
            raise KernelError(Errno.EPERM, f"setegid({egid}) not permitted")

    def setgroups(self, groups: Iterable[int]) -> None:
        """Apply ``setgroups`` semantics: privileged processes only."""
        if not self.is_privileged():
            raise KernelError(Errno.EPERM, "setgroups requires privilege")
        self.groups = tuple(validate_gid(g) for g in groups)


def root_credentials() -> Credentials:
    """Fresh credentials for a process started by init as root."""
    return Credentials()


def user_credentials(uid: int, gid: int, groups: Iterable[int] = ()) -> Credentials:
    """Credentials for an unprivileged user process."""
    return Credentials(
        ruid=uid, euid=uid, suid=uid, rgid=gid, egid=gid, sgid=gid, groups=tuple(groups)
    )
