"""Per-process file descriptor tables and open-file objects.

Section 3.4 of the paper modifies the kernel so that *each variant keeps its
own file table*, kept slot-synchronised across variants: slot *n* of variant
0's table corresponds to slot *n* of variant 1's table, and a shared-file
bitmap records whether a given slot refers to a shared file (one physical
file, I/O performed once, result replicated) or an unshared file (each
variant has its own diversified copy and performs its own I/O).

The :class:`FileDescriptorTable` here models one variant's table; the
shared/unshared bookkeeping lives in the N-variant wrapper layer
(:mod:`repro.core.wrappers`), mirroring where the paper put it (the kernel's
wrapper code rather than per-process state).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.kernel.errors import Errno, KernelError
from repro.kernel.filesystem import Inode, O_ACCMODE, O_APPEND, O_RDONLY, O_RDWR, O_WRONLY


@dataclasses.dataclass
class OpenFile:
    """An open file description: inode reference, offset and flags."""

    inode: Inode
    flags: int
    offset: int = 0
    path: str = ""

    @property
    def readable(self) -> bool:
        """True when the open flags permit reading."""
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        """True when the open flags permit writing."""
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)

    def read(self, count: int) -> bytes:
        """Read up to *count* bytes from the current offset."""
        if not self.readable:
            raise KernelError(Errno.EBADF, f"{self.path} not open for reading")
        if count < 0:
            raise KernelError(Errno.EINVAL, "negative read count")
        data = bytes(self.inode.data[self.offset : self.offset + count])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write *data* at the current offset (append if O_APPEND)."""
        if not self.writable:
            raise KernelError(Errno.EBADF, f"{self.path} not open for writing")
        if self.flags & O_APPEND:
            self.offset = len(self.inode.data)
        end = self.offset + len(data)
        if end > len(self.inode.data):
            self.inode.data.extend(b"\x00" * (end - len(self.inode.data)))
        self.inode.data[self.offset : end] = data
        self.offset = end
        return len(data)

    def seek(self, offset: int, whence: int) -> int:
        """Reposition the offset (whence: 0=SET, 1=CUR, 2=END)."""
        if whence == 0:
            new_offset = offset
        elif whence == 1:
            new_offset = self.offset + offset
        elif whence == 2:
            new_offset = len(self.inode.data) + offset
        else:
            raise KernelError(Errno.EINVAL, f"bad whence {whence}")
        if new_offset < 0:
            raise KernelError(Errno.EINVAL, "negative seek offset")
        self.offset = new_offset
        return self.offset


@dataclasses.dataclass
class SocketDescriptor:
    """A descriptor referring to a simulated socket endpoint.

    ``endpoint`` is either a :class:`~repro.kernel.network.ListeningSocket`
    or a :class:`~repro.kernel.network.Connection`; the kernel dispatches on
    the concrete type.
    """

    endpoint: object
    path: str = "<socket>"


class FileDescriptorTable:
    """One process's (or variant's) descriptor table.

    Descriptors are small integers allocated lowest-free-first, as on Unix.
    A configurable limit models ``EMFILE``.
    """

    def __init__(self, max_descriptors: int = 256):
        self.max_descriptors = max_descriptors
        self._table: dict[int, OpenFile | SocketDescriptor] = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, fd: int) -> bool:
        return fd in self._table

    def descriptors(self) -> list[int]:
        """Return the currently allocated descriptor numbers, sorted."""
        return sorted(self._table)

    def allocate(self, entry: OpenFile | SocketDescriptor) -> int:
        """Install *entry* at the lowest free descriptor and return it."""
        for fd in range(self.max_descriptors):
            if fd not in self._table:
                self._table[fd] = entry
                return fd
        raise KernelError(Errno.EMFILE, "too many open files")

    def install(self, fd: int, entry: OpenFile | SocketDescriptor) -> None:
        """Install *entry* at a specific descriptor number (used by the
        unshared-files machinery to keep variant tables slot-aligned)."""
        if fd < 0 or fd >= self.max_descriptors:
            raise KernelError(Errno.EBADF, f"descriptor {fd} out of range")
        self._table[fd] = entry

    def get(self, fd: int) -> OpenFile | SocketDescriptor:
        """Look up descriptor *fd*, raising ``EBADF`` if not open."""
        entry = self._table.get(fd)
        if entry is None:
            raise KernelError(Errno.EBADF, f"bad file descriptor {fd}")
        return entry

    def get_file(self, fd: int) -> OpenFile:
        """Look up *fd* expecting a regular open file."""
        entry = self.get(fd)
        if not isinstance(entry, OpenFile):
            raise KernelError(Errno.EINVAL, f"descriptor {fd} is not a file")
        return entry

    def get_socket(self, fd: int) -> SocketDescriptor:
        """Look up *fd* expecting a socket."""
        entry = self.get(fd)
        if not isinstance(entry, SocketDescriptor):
            raise KernelError(Errno.ENOTSOCK, f"descriptor {fd} is not a socket")
        return entry

    def close(self, fd: int) -> None:
        """Close descriptor *fd*."""
        if fd not in self._table:
            raise KernelError(Errno.EBADF, f"bad file descriptor {fd}")
        del self._table[fd]

    def close_all(self) -> None:
        """Close every descriptor (process exit)."""
        self._table.clear()

    def peek(self, fd: int) -> Optional[OpenFile | SocketDescriptor]:
        """Return the entry at *fd* or ``None`` without raising."""
        return self._table.get(fd)
