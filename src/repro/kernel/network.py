"""Simplified network stack for the simulated kernel.

The paper's threat model is a *remote attacker*: all attack data arrives over
the same network channel as legitimate client requests, and the N-variant
framework replicates that input to every variant.  We therefore only need a
network model rich enough to (a) let the mini-httpd bind, listen, accept,
receive and send, and (b) let workload generators and attack drivers inject
request bytes and read back responses.

Connections are plain in-memory byte queues.  Delivery is deterministic and
FIFO, which keeps N-variant runs reproducible -- the simulated analogue of
the paper's framework removing input non-determinism by having the kernel
perform each input system call once.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.kernel.errors import Errno, KernelError


@dataclasses.dataclass
class Connection:
    """One client connection: inbound request bytes and outbound response bytes."""

    connection_id: int
    client: str = "client"
    inbound: bytearray = dataclasses.field(default_factory=bytearray)
    outbound: bytearray = dataclasses.field(default_factory=bytearray)
    closed_by_client: bool = False
    closed_by_server: bool = False

    def queue_request(self, data: bytes) -> None:
        """Append client request bytes for the server to read."""
        self.inbound.extend(data)

    def finish_request(self) -> None:
        """Mark that the client has finished sending (half-close)."""
        self.closed_by_client = True

    def recv(self, count: int) -> bytes:
        """Server-side receive of up to *count* bytes (empty means EOF)."""
        if count < 0:
            raise KernelError(Errno.EINVAL, "negative recv count")
        data = bytes(self.inbound[:count])
        del self.inbound[:count]
        return data

    def send(self, data: bytes) -> int:
        """Server-side send; bytes accumulate for the client to read."""
        if self.closed_by_server:
            raise KernelError(Errno.EPIPE, "connection closed by server")
        self.outbound.extend(data)
        return len(data)

    def response_bytes(self) -> bytes:
        """Client-side view of everything the server has sent."""
        return bytes(self.outbound)


@dataclasses.dataclass
class ListeningSocket:
    """A bound, listening server socket with a queue of pending connections.

    ``bound`` distinguishes a listener the server has actually bound from a
    placeholder created by an early client connect (workload drivers queue
    their requests before the simulated server runs; see
    :meth:`NetworkStack.connect`).
    """

    port: int
    backlog: int = 128
    bound: bool = False
    pending: collections.deque = dataclasses.field(default_factory=collections.deque)

    def enqueue(self, connection: Connection) -> None:
        """Queue an incoming client connection for ``accept``."""
        if len(self.pending) >= self.backlog:
            raise KernelError(Errno.ECONNREFUSED, f"backlog full on port {self.port}")
        self.pending.append(connection)

    def has_pending(self) -> bool:
        """True when a connection is waiting to be accepted."""
        return bool(self.pending)

    def accept(self) -> Connection:
        """Dequeue the next pending connection."""
        if not self.pending:
            raise KernelError(Errno.EAGAIN, "no pending connections")
        return self.pending.popleft()


class NetworkStack:
    """Host-wide network state: bound ports and all connections ever made."""

    def __init__(self) -> None:
        self.listeners: dict[int, ListeningSocket] = {}
        self.connections: list[Connection] = []
        self._next_connection_id = 1

    def bind(self, port: int, backlog: int = 128) -> ListeningSocket:
        """Bind and listen on *port*; raises ``EADDRINUSE`` if already bound.

        If clients connected before the server bound (the workload drivers
        queue every request up front because the simulation is not
        concurrent), the placeholder listener and its pending connections are
        adopted rather than rejected.
        """
        existing = self.listeners.get(port)
        if existing is not None:
            if existing.bound:
                raise KernelError(Errno.EADDRINUSE, f"port {port} already bound")
            existing.bound = True
            existing.backlog = max(existing.backlog, backlog)
            return existing
        listener = ListeningSocket(port=port, backlog=backlog, bound=True)
        self.listeners[port] = listener
        return listener

    def unbind(self, port: int) -> None:
        """Release *port* (server shutdown)."""
        self.listeners.pop(port, None)

    def connect(self, port: int, request: bytes = b"", *, client: str = "client") -> Connection:
        """Client-side connect: create a connection and queue it on the listener.

        The *request* bytes, if given, are queued immediately so the server's
        subsequent ``recv`` calls see them.  Returns the connection so the
        caller can later read the server's response.
        """
        listener = self.listeners.get(port)
        if listener is None:
            # Create a placeholder listener so drivers can queue requests
            # before the simulated server has had a chance to run and bind.
            listener = ListeningSocket(port=port, backlog=1 << 16, bound=False)
            self.listeners[port] = listener
        connection = Connection(connection_id=self._next_connection_id, client=client)
        self._next_connection_id += 1
        if request:
            connection.queue_request(request)
            connection.finish_request()
        listener.enqueue(connection)
        self.connections.append(connection)
        return connection

    def pending_count(self, port: int) -> int:
        """Number of connections waiting to be accepted on *port*."""
        listener = self.listeners.get(port)
        return len(listener.pending) if listener else 0
