"""A tiny "libc" for simulated programs.

Programs are generators that yield system-call requests; writing every call
site as ``result = yield request(Syscall.OPEN, path, flags)`` quickly becomes
noisy.  :class:`Libc` provides named helpers that are themselves generators,
so program code reads like ordinary C-with-syscalls::

    result = yield from libc.open("/etc/passwd", O_RDONLY)
    if result.ok:
        data = (yield from libc.read(result.value, 4096)).value

Every helper returns the raw :class:`~repro.kernel.syscalls.SyscallResult` so
programs can implement their own error handling (the mini-httpd, for
instance, turns ``ENOENT`` into a 404 response rather than crashing).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.filesystem import O_RDONLY
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult

SyscallGen = Generator[SyscallRequest, SyscallResult, SyscallResult]


class Libc:
    """Named system-call helpers for generator programs."""

    # -- the generic trampoline ------------------------------------------------

    @staticmethod
    def syscall(name: Syscall, *args: Any) -> SyscallGen:
        """Issue an arbitrary system call and return its result."""
        result = yield SyscallRequest(name, tuple(args))
        return result

    # -- process ----------------------------------------------------------------

    def exit(self, code: int = 0) -> SyscallGen:
        """Terminate the calling program."""
        return self.syscall(Syscall.EXIT, code)

    def getpid(self) -> SyscallGen:
        """Return the process id."""
        return self.syscall(Syscall.GETPID)

    # -- credentials --------------------------------------------------------------

    def getuid(self) -> SyscallGen:
        """Return the real user id."""
        return self.syscall(Syscall.GETUID)

    def geteuid(self) -> SyscallGen:
        """Return the effective user id."""
        return self.syscall(Syscall.GETEUID)

    def getgid(self) -> SyscallGen:
        """Return the real group id."""
        return self.syscall(Syscall.GETGID)

    def getegid(self) -> SyscallGen:
        """Return the effective group id."""
        return self.syscall(Syscall.GETEGID)

    def setuid(self, uid: int) -> SyscallGen:
        """Set the real/effective/saved user id."""
        return self.syscall(Syscall.SETUID, uid)

    def seteuid(self, euid: int) -> SyscallGen:
        """Set the effective user id."""
        return self.syscall(Syscall.SETEUID, euid)

    def setgid(self, gid: int) -> SyscallGen:
        """Set the real/effective/saved group id."""
        return self.syscall(Syscall.SETGID, gid)

    def setegid(self, egid: int) -> SyscallGen:
        """Set the effective group id."""
        return self.syscall(Syscall.SETEGID, egid)

    def setgroups(self, groups: tuple[int, ...]) -> SyscallGen:
        """Set the supplementary group list."""
        return self.syscall(Syscall.SETGROUPS, tuple(groups))

    # -- files ----------------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> SyscallGen:
        """Open *path*, returning a descriptor in ``result.value``."""
        return self.syscall(Syscall.OPEN, path, flags, mode)

    def close(self, fd: int) -> SyscallGen:
        """Close descriptor *fd*."""
        return self.syscall(Syscall.CLOSE, fd)

    def read(self, fd: int, count: int) -> SyscallGen:
        """Read up to *count* bytes from *fd*."""
        return self.syscall(Syscall.READ, fd, count)

    def write(self, fd: int, data: bytes | str) -> SyscallGen:
        """Write *data* to *fd*."""
        return self.syscall(Syscall.WRITE, fd, data)

    def lseek(self, fd: int, offset: int, whence: int = 0) -> SyscallGen:
        """Reposition the file offset of *fd*."""
        return self.syscall(Syscall.LSEEK, fd, offset, whence)

    def stat(self, path: str) -> SyscallGen:
        """Stat the inode at *path*."""
        return self.syscall(Syscall.STAT, path)

    def fstat(self, fd: int) -> SyscallGen:
        """Stat the inode open at *fd*."""
        return self.syscall(Syscall.FSTAT, fd)

    def access(self, path: str, mode: int) -> SyscallGen:
        """Check accessibility of *path* for the caller's credentials."""
        return self.syscall(Syscall.ACCESS, path, mode)

    def mkdir(self, path: str, mode: int = 0o755) -> SyscallGen:
        """Create a directory."""
        return self.syscall(Syscall.MKDIR, path, mode)

    def unlink(self, path: str) -> SyscallGen:
        """Remove a file."""
        return self.syscall(Syscall.UNLINK, path)

    def chown(self, path: str, uid: int, gid: int) -> SyscallGen:
        """Change ownership of *path*."""
        return self.syscall(Syscall.CHOWN, path, uid, gid)

    def chmod(self, path: str, mode: int) -> SyscallGen:
        """Change the permission bits of *path*."""
        return self.syscall(Syscall.CHMOD, path, mode)

    def getdents(self, path: str) -> SyscallGen:
        """List the names in the directory at *path*."""
        return self.syscall(Syscall.GETDENTS, path)

    # -- sockets ---------------------------------------------------------------------

    def socket(self) -> SyscallGen:
        """Create a socket descriptor."""
        return self.syscall(Syscall.SOCKET)

    def bind(self, fd: int, port: int) -> SyscallGen:
        """Bind socket *fd* to *port*."""
        return self.syscall(Syscall.BIND, fd, port)

    def listen(self, fd: int, backlog: int = 128) -> SyscallGen:
        """Mark socket *fd* as listening."""
        return self.syscall(Syscall.LISTEN, fd, backlog)

    def accept(self, fd: int) -> SyscallGen:
        """Accept a pending connection on listening socket *fd*."""
        return self.syscall(Syscall.ACCEPT, fd)

    def recv(self, fd: int, count: int) -> SyscallGen:
        """Receive up to *count* bytes from connected socket *fd*."""
        return self.syscall(Syscall.RECV, fd, count)

    def send(self, fd: int, data: bytes | str) -> SyscallGen:
        """Send *data* on connected socket *fd*."""
        return self.syscall(Syscall.SEND, fd, data)

    def shutdown(self, fd: int) -> SyscallGen:
        """Shut down the socket at *fd*."""
        return self.syscall(Syscall.SHUTDOWN, fd)

    # -- misc ----------------------------------------------------------------------------

    def time(self) -> SyscallGen:
        """Return the kernel's virtual clock."""
        return self.syscall(Syscall.TIME)

    def getrandom(self, count: int) -> SyscallGen:
        """Return *count* deterministic pseudo-random bytes."""
        return self.syscall(Syscall.GETRANDOM, count)

    def nanosleep(self, ticks: int) -> SyscallGen:
        """Advance the virtual clock by *ticks*."""
        return self.syscall(Syscall.NANOSLEEP, ticks)

    def peek(self, address: int, count: int = 4) -> SyscallGen:
        """Checked read of *count* bytes at absolute *address* (EFAULT on miss)."""
        return self.syscall(Syscall.PEEK, address, count)

    # -- detection calls (Table 2 of the paper) ----------------------------------------

    def uid_value(self, uid: int) -> SyscallGen:
        """Expose a single UID use to the monitor; returns the passed value."""
        return self.syscall(Syscall.UID_VALUE, uid)

    def cond_chk(self, condition: bool) -> SyscallGen:
        """Expose a UID-influenced conditional to the monitor."""
        return self.syscall(Syscall.COND_CHK, bool(condition))

    def cc_eq(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID equality comparison."""
        return self.syscall(Syscall.CC_EQ, left, right)

    def cc_neq(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID inequality comparison."""
        return self.syscall(Syscall.CC_NEQ, left, right)

    def cc_lt(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID less-than comparison."""
        return self.syscall(Syscall.CC_LT, left, right)

    def cc_leq(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID less-or-equal comparison."""
        return self.syscall(Syscall.CC_LEQ, left, right)

    def cc_gt(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID greater-than comparison."""
        return self.syscall(Syscall.CC_GT, left, right)

    def cc_geq(self, left: int, right: int) -> SyscallGen:
        """Cross-checked UID greater-or-equal comparison."""
        return self.syscall(Syscall.CC_GEQ, left, right)


#: A module-level instance; Libc is stateless so sharing it is safe.
libc = Libc()
