"""User account databases: ``/etc/passwd`` and ``/etc/group``.

Apache (and our mini-httpd) maps the ``User``/``Group`` directives from its
configuration file to numeric UIDs/GIDs by reading these files.  Section 3.4
of the paper points out that this trusted external data must also be
reexpressed per variant, otherwise the untransformed UID would have the wrong
representation when it reaches the target interpreter.  The paper's solution
is *unshared files*: the framework keeps ``/etc/passwd-0`` and
``/etc/passwd-1``, identical except that UID/GID columns are transformed with
the respective variant's reexpression function.

This module provides parsing and formatting of the classic colon-separated
formats plus :func:`diversify_passwd` / :func:`diversify_group`, which apply a
reexpression function to the numeric columns to produce a variant's copy.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from repro.kernel.errors import Errno, KernelError


@dataclasses.dataclass(frozen=True)
class PasswdEntry:
    """One line of ``/etc/passwd``."""

    name: str
    password: str
    uid: int
    gid: int
    gecos: str
    home: str
    shell: str

    def format(self) -> str:
        """Render the entry back into passwd(5) format."""
        return ":".join(
            [
                self.name,
                self.password,
                str(self.uid),
                str(self.gid),
                self.gecos,
                self.home,
                self.shell,
            ]
        )


@dataclasses.dataclass(frozen=True)
class GroupEntry:
    """One line of ``/etc/group``."""

    name: str
    password: str
    gid: int
    members: tuple[str, ...]

    def format(self) -> str:
        """Render the entry back into group(5) format."""
        return ":".join([self.name, self.password, str(self.gid), ",".join(self.members)])


def parse_passwd(text: str) -> list[PasswdEntry]:
    """Parse the contents of an ``/etc/passwd`` file."""
    entries = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(":")
        if len(fields) != 7:
            raise KernelError(
                Errno.EINVAL, f"malformed passwd line {line_number}: expected 7 fields"
            )
        name, password, uid, gid, gecos, home, shell = fields
        entries.append(
            PasswdEntry(
                name=name,
                password=password,
                uid=int(uid),
                gid=int(gid),
                gecos=gecos,
                home=home,
                shell=shell,
            )
        )
    return entries


def parse_group(text: str) -> list[GroupEntry]:
    """Parse the contents of an ``/etc/group`` file."""
    entries = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(":")
        if len(fields) != 4:
            raise KernelError(
                Errno.EINVAL, f"malformed group line {line_number}: expected 4 fields"
            )
        name, password, gid, members = fields
        member_names = tuple(m for m in members.split(",") if m)
        entries.append(
            GroupEntry(name=name, password=password, gid=int(gid), members=member_names)
        )
    return entries


def format_passwd(entries: Iterable[PasswdEntry]) -> str:
    """Render passwd entries into file contents (trailing newline included)."""
    lines = [entry.format() for entry in entries]
    return "\n".join(lines) + ("\n" if lines else "")


def format_group(entries: Iterable[GroupEntry]) -> str:
    """Render group entries into file contents (trailing newline included)."""
    lines = [entry.format() for entry in entries]
    return "\n".join(lines) + ("\n" if lines else "")


class UserDatabase:
    """Convenience lookups over parsed passwd/group entries.

    This is the user-space view that ``getpwnam``/``getgrnam`` style library
    routines provide; the mini-httpd uses it to turn its configured user and
    group names into numeric ids.
    """

    def __init__(self, passwd: Sequence[PasswdEntry], groups: Sequence[GroupEntry] = ()):
        self.passwd = list(passwd)
        self.groups = list(groups)

    @classmethod
    def from_text(cls, passwd_text: str, group_text: str = "") -> "UserDatabase":
        """Build a database from raw file contents."""
        return cls(parse_passwd(passwd_text), parse_group(group_text))

    def getpwnam(self, name: str) -> PasswdEntry:
        """Look up a passwd entry by user name."""
        for entry in self.passwd:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def getpwuid(self, uid: int) -> PasswdEntry:
        """Look up a passwd entry by uid."""
        for entry in self.passwd:
            if entry.uid == uid:
                return entry
        raise KeyError(uid)

    def getgrnam(self, name: str) -> GroupEntry:
        """Look up a group entry by group name."""
        for entry in self.groups:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def getgrgid(self, gid: int) -> GroupEntry:
        """Look up a group entry by gid."""
        for entry in self.groups:
            if entry.gid == gid:
                return entry
        raise KeyError(gid)


def diversify_passwd(
    entries: Iterable[PasswdEntry], reexpress: Callable[[int], int]
) -> list[PasswdEntry]:
    """Apply *reexpress* to the UID and GID columns of passwd entries.

    This is how the framework generates ``/etc/passwd-i`` for variant *i*:
    everything is identical except the numeric identity columns, which carry
    that variant's representation of each UID/GID.
    """
    return [
        dataclasses.replace(entry, uid=reexpress(entry.uid), gid=reexpress(entry.gid))
        for entry in entries
    ]


def diversify_group(
    entries: Iterable[GroupEntry], reexpress: Callable[[int], int]
) -> list[GroupEntry]:
    """Apply *reexpress* to the GID column of group entries."""
    return [dataclasses.replace(entry, gid=reexpress(entry.gid)) for entry in entries]


def default_passwd_entries() -> list[PasswdEntry]:
    """A realistic default account database for the simulated host."""
    return [
        PasswdEntry("root", "x", 0, 0, "root", "/root", "/bin/sh"),
        PasswdEntry("daemon", "x", 1, 1, "daemon", "/usr/sbin", "/usr/sbin/nologin"),
        PasswdEntry("bin", "x", 2, 2, "bin", "/bin", "/usr/sbin/nologin"),
        PasswdEntry("www-data", "x", 33, 33, "www-data", "/var/www", "/usr/sbin/nologin"),
        PasswdEntry("backup", "x", 34, 34, "backup", "/var/backups", "/usr/sbin/nologin"),
        PasswdEntry("alice", "x", 1000, 1000, "Alice", "/home/alice", "/bin/sh"),
        PasswdEntry("bob", "x", 1001, 1001, "Bob", "/home/bob", "/bin/sh"),
        PasswdEntry("nobody", "x", 65534, 65534, "nobody", "/nonexistent", "/usr/sbin/nologin"),
    ]


def default_group_entries() -> list[GroupEntry]:
    """A realistic default group database for the simulated host."""
    return [
        GroupEntry("root", "x", 0, ()),
        GroupEntry("daemon", "x", 1, ()),
        GroupEntry("bin", "x", 2, ()),
        GroupEntry("www-data", "x", 33, ()),
        GroupEntry("backup", "x", 34, ()),
        GroupEntry("alice", "x", 1000, ("alice",)),
        GroupEntry("bob", "x", 1001, ("bob",)),
        GroupEntry("nogroup", "x", 65534, ()),
    ]
