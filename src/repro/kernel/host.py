"""Standard host image used by examples, tests and benchmarks.

The paper's case study runs Apache on a Fedora Core 5 host.  This module
builds the simulated equivalent: a filesystem populated with the account
databases, a web document root with a WebBench-like mix of static pages, the
server configuration file, log and runtime directories, and a few root-only
files that exist purely so a successful privilege-escalation attack has
something worth reading.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from repro.kernel.filesystem import FileSystem
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.passwd import (
    GroupEntry,
    PasswdEntry,
    default_group_entries,
    default_passwd_entries,
    diversify_group,
    diversify_passwd,
    format_group,
    format_passwd,
)

#: Default port the mini-httpd listens on.
HTTP_PORT = 80

#: Default document root.
DOCROOT = "/var/www/html"

#: Default server configuration path.
HTTPD_CONF = "/etc/httpd.conf"

#: Default error-log path.
ERROR_LOG = "/var/log/httpd/error_log"

#: Default access-log path.
ACCESS_LOG = "/var/log/httpd/access_log"

#: A root-only file that a successful UID attack would be able to read.
SHADOW_FILE = "/etc/shadow"

#: Default FTP command port (the mini-ftpd's control channel).
FTP_PORT = 21

#: Default FTP data port (one pre-connected data channel per client).
FTP_DATA_PORT = 20

#: Default ftpd configuration path.
FTPD_CONF = "/etc/ftpd.conf"

#: Default FTP site root the mini-ftpd serves from.
FTP_ROOT = "/srv/ftp"

#: Default ftpd error-log path.
FTP_ERROR_LOG = "/var/log/ftpd/error_log"

#: Default ftpd transfer-log path.
FTP_TRANSFER_LOG = "/var/log/ftpd/transfer_log"


@dataclasses.dataclass(frozen=True)
class DocumentSpec:
    """One static document in the WebBench-like document tree."""

    path: str
    size: int

    def content(self) -> bytes:
        """Deterministic filler content of the requested size."""
        pattern = f"<!-- {self.path} -->".encode()
        repeats = self.size // len(pattern) + 1
        return (pattern * repeats)[: self.size]


#: The standard static document mix.  WebBench 5.0's static workload requests
#: a spread of small-to-large pages; these sizes reproduce that spread so the
#: throughput numbers (KB/s) are dominated by a realistic byte mix.
DEFAULT_DOCUMENTS: tuple[DocumentSpec, ...] = (
    DocumentSpec(f"{DOCROOT}/index.html", 1024),
    DocumentSpec(f"{DOCROOT}/news.html", 2048),
    DocumentSpec(f"{DOCROOT}/products.html", 4096),
    DocumentSpec(f"{DOCROOT}/catalog.html", 8192),
    DocumentSpec(f"{DOCROOT}/images/logo.gif", 3072),
    DocumentSpec(f"{DOCROOT}/images/banner.jpg", 16384),
    DocumentSpec(f"{DOCROOT}/docs/manual.html", 32768),
    DocumentSpec(f"{DOCROOT}/docs/faq.html", 6144),
    DocumentSpec(f"{DOCROOT}/cgi-data/report.html", 12288),
    DocumentSpec(f"{DOCROOT}/downloads/archive.bin", 65536),
)

#: Default httpd configuration contents.
DEFAULT_HTTPD_CONF = f"""\
# Simulated httpd configuration
Listen {HTTP_PORT}
User www-data
Group www-data
DocumentRoot {DOCROOT}
ErrorLog {ERROR_LOG}
AccessLog {ACCESS_LOG}
AdminUser root
"""


def build_filesystem(
    passwd_entries: Sequence[PasswdEntry] | None = None,
    group_entries: Sequence[GroupEntry] | None = None,
    documents: Iterable[DocumentSpec] = DEFAULT_DOCUMENTS,
    httpd_conf: str = DEFAULT_HTTPD_CONF,
) -> FileSystem:
    """Build the standard host filesystem image."""
    passwd_entries = list(passwd_entries) if passwd_entries is not None else default_passwd_entries()
    group_entries = list(group_entries) if group_entries is not None else default_group_entries()

    fs = FileSystem()
    for directory in (
        "/etc",
        "/root",
        "/home",
        "/home/alice",
        "/home/bob",
        "/tmp",
        "/var",
        "/var/www",
        DOCROOT,
        f"{DOCROOT}/images",
        f"{DOCROOT}/docs",
        f"{DOCROOT}/cgi-data",
        f"{DOCROOT}/downloads",
        "/var/log",
        "/var/log/httpd",
        "/var/run",
    ):
        if not fs.exists(directory):
            fs.mkdir(directory, parents=True)
    # World-writable scratch space, as on a real host.
    fs.chmod("/tmp", 0o777)

    fs.create_file("/etc/passwd", format_passwd(passwd_entries), mode=0o644)
    fs.create_file("/etc/group", format_group(group_entries), mode=0o644)
    fs.create_file(
        SHADOW_FILE,
        "root:$6$secrethash$:19000:0:99999:7:::\n",
        mode=0o600,
    )
    fs.create_file(HTTPD_CONF, httpd_conf, mode=0o644)
    fs.create_file(ERROR_LOG, b"", mode=0o640)
    fs.create_file(ACCESS_LOG, b"", mode=0o640)
    fs.create_file("/root/secrets.txt", "top secret\n", mode=0o600)

    for document in documents:
        fs.create_file(document.path, document.content(), mode=0o644)

    # Home directories owned by their users, world-unreadable private files.
    fs.chown("/home/alice", 1000, 1000)
    fs.chown("/home/bob", 1001, 1001)
    fs.create_file("/home/alice/diary.txt", "alice's private notes\n", mode=0o600, uid=1000, gid=1000)
    fs.create_file("/home/bob/notes.txt", "bob's private notes\n", mode=0o600, uid=1001, gid=1001)
    return fs


def install_diversified_user_db(
    fs: FileSystem,
    reexpression_functions: Sequence[Callable[[int], int]],
    *,
    passwd_path: str = "/etc/passwd",
    group_path: str = "/etc/group",
) -> list[tuple[str, str]]:
    """Create the per-variant unshared copies of the account databases.

    For each variant *i*, writes ``<passwd_path>-i`` and ``<group_path>-i``
    whose UID/GID columns are transformed with ``reexpression_functions[i]``
    (Section 3.4 of the paper).  Returns the list of ``(original, variant)``
    path pairs created, which callers register with the unshared-file layer.
    """
    from repro.kernel.passwd import parse_group, parse_passwd

    passwd_entries = parse_passwd(fs.read_file(passwd_path).decode())
    group_entries = parse_group(fs.read_file(group_path).decode())
    created: list[tuple[str, str]] = []
    for index, reexpress in enumerate(reexpression_functions):
        variant_passwd = f"{passwd_path}-{index}"
        variant_group = f"{group_path}-{index}"
        fs.create_file(
            variant_passwd,
            format_passwd(diversify_passwd(passwd_entries, reexpress)),
            mode=0o644,
        )
        fs.create_file(
            variant_group,
            format_group(diversify_group(group_entries, reexpress)),
            mode=0o644,
        )
        created.append((passwd_path, variant_passwd))
        created.append((group_path, variant_group))
    return created


#: The standard FTP site content, sized like a small public mirror.
DEFAULT_FTP_DOCUMENTS: tuple[DocumentSpec, ...] = (
    DocumentSpec(f"{FTP_ROOT}/welcome.txt", 512),
    DocumentSpec(f"{FTP_ROOT}/pub/readme.txt", 1024),
    DocumentSpec(f"{FTP_ROOT}/pub/tools.tar", 8192),
    DocumentSpec(f"{FTP_ROOT}/pub/dataset.bin", 16384),
    DocumentSpec(f"{FTP_ROOT}/incoming/notes.txt", 2048),
)

#: Default ftpd configuration contents.  The server runs as the existing
#: ``daemon`` account so installing the FTP site never perturbs the account
#: databases the httpd experiments depend on byte-for-byte.
DEFAULT_FTPD_CONF = f"""\
# Simulated ftpd configuration
Listen {FTP_PORT}
DataPort {FTP_DATA_PORT}
User daemon
Group daemon
FtpRoot {FTP_ROOT}
ErrorLog {FTP_ERROR_LOG}
TransferLog {FTP_TRANSFER_LOG}
AdminUser root
"""


def install_ftp_site(
    fs: FileSystem,
    documents: Iterable[DocumentSpec] = DEFAULT_FTP_DOCUMENTS,
    ftpd_conf: str = DEFAULT_FTPD_CONF,
) -> None:
    """Add the FTP site (root, configuration, logs, documents) to *fs*.

    Deliberately additive: the standard host image is left byte-identical so
    the httpd workloads keep producing the historical results, and hosts that
    never run the ftpd never pay for its files.
    """
    for directory in (
        "/srv",
        FTP_ROOT,
        f"{FTP_ROOT}/pub",
        f"{FTP_ROOT}/incoming",
        "/var/log/ftpd",
    ):
        if not fs.exists(directory):
            fs.mkdir(directory, parents=True)
    fs.create_file(FTPD_CONF, ftpd_conf, mode=0o644)
    fs.create_file(FTP_ERROR_LOG, b"", mode=0o640)
    fs.create_file(FTP_TRANSFER_LOG, b"", mode=0o640)
    for document in documents:
        fs.create_file(document.path, document.content(), mode=0o644)


def build_ftp_host(
    passwd_entries: Sequence[PasswdEntry] | None = None,
    group_entries: Sequence[GroupEntry] | None = None,
) -> SimulatedKernel:
    """A standard host with the FTP site installed on top."""
    kernel = build_standard_host(passwd_entries, group_entries)
    install_ftp_site(kernel.fs)
    return kernel


def build_standard_host(
    passwd_entries: Sequence[PasswdEntry] | None = None,
    group_entries: Sequence[GroupEntry] | None = None,
    documents: Iterable[DocumentSpec] = DEFAULT_DOCUMENTS,
) -> SimulatedKernel:
    """Build a kernel whose filesystem is the standard host image."""
    fs = build_filesystem(passwd_entries, group_entries, documents)
    return SimulatedKernel(filesystem=fs)
