"""Minimal signal model.

The paper notes (Section 3.1) that its prototype framework does not yet
handle scheduling divergence caused by asynchronous signal delivery -- a
signal arriving at different points in two variants' executions can cause a
*false* divergence.  We model signals just richly enough to reproduce that
discussion: signals are posted to processes, delivery is checked only at
system-call boundaries (so delivery points are deterministic in lockstep
runs), and the N-variant engine offers a fault-injection hook that delivers a
signal to only one variant to demonstrate the false-alarm scenario.
"""

from __future__ import annotations

import enum


class Signal(enum.IntEnum):
    """Subset of Unix signal numbers used by the simulation."""

    SIGHUP = 1
    SIGINT = 2
    SIGKILL = 9
    SIGSEGV = 11
    SIGPIPE = 13
    SIGTERM = 15
    SIGCHLD = 17
    SIGUSR1 = 10
    SIGUSR2 = 12


#: Signals that cannot be caught or ignored.
UNCATCHABLE = frozenset({Signal.SIGKILL})

#: Signals whose default action terminates the process.
FATAL_BY_DEFAULT = frozenset(
    {Signal.SIGHUP, Signal.SIGINT, Signal.SIGKILL, Signal.SIGSEGV, Signal.SIGPIPE, Signal.SIGTERM}
)


class SignalState:
    """Pending and handled signals for one process."""

    def __init__(self) -> None:
        self.pending: list[Signal] = []
        self.handled: set[Signal] = set()
        self.delivered: list[Signal] = []

    def post(self, signal: Signal) -> None:
        """Queue *signal* for delivery at the next system-call boundary."""
        self.pending.append(Signal(signal))

    def register_handler(self, signal: Signal) -> None:
        """Mark *signal* as handled (so its default fatal action is skipped)."""
        signal = Signal(signal)
        if signal in UNCATCHABLE:
            raise ValueError(f"{signal.name} cannot be caught")
        self.handled.add(signal)

    def take_pending(self) -> list[Signal]:
        """Remove and return all pending signals (delivery point)."""
        taken, self.pending = self.pending, []
        self.delivered.extend(taken)
        return taken

    def is_fatal(self, signal: Signal) -> bool:
        """True when delivering *signal* should terminate the process."""
        return signal in FATAL_BY_DEFAULT and signal not in self.handled
