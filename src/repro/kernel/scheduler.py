"""Running simulated programs against the kernel.

A *program* in this reproduction is a Python generator: it yields
:class:`~repro.kernel.syscalls.SyscallRequest` objects whenever it needs a
kernel service and receives :class:`~repro.kernel.syscalls.SyscallResult`
objects back.  This module provides the single-process runner (used for the
"unmodified Apache" baseline, Configuration 1 of Table 3) and a small
round-robin scheduler for running several independent processes.

The N-variant lockstep engine in :mod:`repro.core.nvariant` uses the same
program protocol but interposes the monitor and wrapper layer between the
programs and the kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator, Iterable

from repro.kernel.errors import VariantFault
from repro.kernel.kernel import SimulatedKernel
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscall, SyscallRequest, SyscallResult

#: Type alias for the program protocol.
Program = Generator[SyscallRequest, SyscallResult, Any]


@dataclasses.dataclass
class RunResult:
    """Outcome of running a single program to completion."""

    process: Process
    steps: int
    return_value: Any = None
    fault: VariantFault | None = None
    trace: list[SyscallRequest] = dataclasses.field(default_factory=list)

    @property
    def exited_normally(self) -> bool:
        """True when the program finished without faulting."""
        return self.fault is None and self.process.fault_reason is None

    @property
    def exit_code(self) -> int | None:
        """The exit code passed to ``exit``, if any."""
        return self.process.exit_code


class ProgramRunner:
    """Runs one program to completion against a kernel."""

    def __init__(self, kernel: SimulatedKernel, *, max_steps: int = 1_000_000, keep_trace: bool = False):
        self.kernel = kernel
        self.max_steps = max_steps
        self.keep_trace = keep_trace

    def run(self, process: Process, program: Program) -> RunResult:
        """Drive *program* until it returns, exits, or faults."""
        steps = 0
        trace: list[SyscallRequest] = []
        result: SyscallResult | None = None
        return_value: Any = None
        fault: VariantFault | None = None
        try:
            request = program.send(None)
            while True:
                steps += 1
                if steps > self.max_steps:
                    raise RuntimeError(f"program exceeded {self.max_steps} steps")
                if not isinstance(request, SyscallRequest):
                    raise TypeError(f"program yielded {request!r}, expected a SyscallRequest")
                if self.keep_trace:
                    trace.append(request)
                result = self.kernel.execute(process, request)
                if request.name is Syscall.EXIT or not process.alive:
                    break
                request = program.send(result)
        except StopIteration as stop:
            return_value = stop.value
        except VariantFault as caught:
            fault = caught
            process.fault(f"{caught.kind}: {caught.message}")
        finally:
            program.close()
        if process.alive and process.exit_code is None and fault is None:
            # Program returned without calling exit(); treat as a clean exit 0.
            process.exit(0)
        return RunResult(
            process=process,
            steps=steps,
            return_value=return_value,
            fault=fault,
            trace=trace,
        )


class RoundRobinScheduler:
    """Interleaves several independent programs, one syscall at a time.

    This is deliberately simple: the paper's framework synchronises variants
    of the *same* program; this scheduler exists so test scenarios can run
    auxiliary processes (for example a log-rotation job next to the server)
    on a single simulated host.
    """

    def __init__(self, kernel: SimulatedKernel, *, max_total_steps: int = 5_000_000):
        self.kernel = kernel
        self.max_total_steps = max_total_steps
        self._jobs: list[tuple[Process, Program]] = []

    def add(self, process: Process, program: Program) -> None:
        """Register a program to run."""
        self._jobs.append((process, program))

    def run_all(self) -> list[RunResult]:
        """Run every registered program to completion, round-robin."""
        pending: list[dict[str, Any]] = []
        for process, program in self._jobs:
            pending.append(
                {
                    "process": process,
                    "program": program,
                    "result": None,
                    "steps": 0,
                    "done": False,
                    "return_value": None,
                    "fault": None,
                    "started": False,
                }
            )
        total_steps = 0
        while any(not job["done"] for job in pending):
            for job in pending:
                if job["done"]:
                    continue
                total_steps += 1
                if total_steps > self.max_total_steps:
                    raise RuntimeError("scheduler exceeded maximum total steps")
                process: Process = job["process"]
                program: Program = job["program"]
                try:
                    if not job["started"]:
                        request = program.send(None)
                        job["started"] = True
                    else:
                        request = program.send(job["result"])
                    job["steps"] += 1
                    job["result"] = self.kernel.execute(process, request)
                    if request.name is Syscall.EXIT or not process.alive:
                        job["done"] = True
                        program.close()
                except StopIteration as stop:
                    job["return_value"] = stop.value
                    job["done"] = True
                    if process.alive and process.exit_code is None:
                        process.exit(0)
                except VariantFault as caught:
                    job["fault"] = caught
                    process.fault(f"{caught.kind}: {caught.message}")
                    job["done"] = True
                    program.close()
        return [
            RunResult(
                process=job["process"],
                steps=job["steps"],
                return_value=job["return_value"],
                fault=job["fault"],
            )
            for job in pending
        ]


def run_program(
    kernel: SimulatedKernel,
    program: Program,
    *,
    name: str = "proc",
    process: Process | None = None,
    keep_trace: bool = False,
) -> RunResult:
    """Convenience wrapper: spawn a process (if needed) and run *program*."""
    if process is None:
        process = kernel.spawn_process(name)
    runner = ProgramRunner(kernel, keep_trace=keep_trace)
    return runner.run(process, program)
