"""UID type and dataflow analysis over the mini-C AST.

Section 4 of the paper describes how UID-carrying variables are found: if the
programmer used ``uid_t``/``gid_t`` consistently, the declarations say it all;
otherwise a Splint-style dataflow pass infers UID-ness from the known
signatures of functions that produce or consume UIDs (``getuid``, ``setuid``,
``getpwuid``, the ``pw_uid`` field, ...).  This module implements both: a
declaration-driven type environment plus an iterate-to-fixpoint inference for
plain ``int`` variables that receive UID values.

It also computes the *UID-influenced* set -- variables whose values depend on
UID data even if they are not UIDs themselves (for example a ``struct passwd
*`` obtained from ``getpwuid``) -- which is what the cond_chk insertion rule
needs (Section 3.5: conditions "which UID values may directly or indirectly
affect").
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.transform.ast_nodes import (
    Assignment,
    Binary,
    Call,
    Declaration,
    Expr,
    FieldAccess,
    Function,
    Identifier,
    IntLiteral,
    TranslationUnit,
    Unary,
    is_uid_type,
    walk_expressions,
    walk_statements,
)

#: Library/system functions that return a UID-typed value.
UID_RETURNING_FUNCTIONS = frozenset(
    {"getuid", "geteuid", "getgid", "getegid", "uid_value", "name_to_uid", "name_to_gid"}
)

#: Library/system functions with UID-typed parameters: name -> argument indices.
UID_PARAMETER_FUNCTIONS: dict[str, tuple[int, ...]] = {
    "setuid": (0,),
    "seteuid": (0,),
    "setgid": (0,),
    "setegid": (0,),
    "setreuid": (0, 1),
    "setresuid": (0, 1, 2),
    "chown": (1, 2),
    "getpwuid": (0,),
    "getgrgid": (0,),
    "uid_value": (0,),
    "cc_eq": (0, 1),
    "cc_neq": (0, 1),
    "cc_lt": (0, 1),
    "cc_leq": (0, 1),
    "cc_gt": (0, 1),
    "cc_geq": (0, 1),
}

#: Struct fields that hold UID-typed values (struct passwd / struct group).
UID_FIELDS = frozenset({"pw_uid", "pw_gid", "gr_gid"})

#: Functions whose *results* depend on UID inputs (used for taint/influence).
UID_INFLUENCED_RESULTS = frozenset({"getpwuid", "getgrgid", "getpwnam", "getgrnam"})


@dataclasses.dataclass
class FunctionAnalysis:
    """Per-function analysis results."""

    name: str
    uid_variables: set[str] = dataclasses.field(default_factory=set)
    influenced_variables: set[str] = dataclasses.field(default_factory=set)


class UIDAnalysis:
    """Whole-program UID typing, inference and influence analysis."""

    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.functions: dict[str, FunctionAnalysis] = {}
        self.global_uid_variables: set[str] = set()
        self.global_influenced: set[str] = set()
        self._analyse()

    # -- public queries -----------------------------------------------------------

    def uid_variables(self, function_name: str) -> set[str]:
        """Names of UID-typed variables visible inside *function_name*."""
        local = self.functions.get(function_name)
        names = set(self.global_uid_variables)
        if local is not None:
            names |= local.uid_variables
        return names

    def is_uid_expression(self, expr: Expr, function_name: str) -> bool:
        """True when *expr* denotes a UID-typed value."""
        if expr is None:
            return False
        if isinstance(expr, Identifier):
            return expr.name in self.uid_variables(function_name)
        if isinstance(expr, FieldAccess):
            return expr.field in UID_FIELDS
        if isinstance(expr, Call):
            return expr.func in UID_RETURNING_FUNCTIONS
        if isinstance(expr, IntLiteral):
            return is_uid_type(expr.ctype)
        if isinstance(expr, Unary) and expr.op == "-":
            return self.is_uid_expression(expr.operand, function_name)
        return is_uid_type(getattr(expr, "ctype", None))

    def is_uid_influenced(self, expr: Expr, function_name: str) -> bool:
        """True when any part of *expr* depends directly or indirectly on UIDs."""
        local = self.functions.get(function_name)
        influenced = set(self.global_influenced)
        if local is not None:
            influenced |= local.influenced_variables
        for node in walk_expressions(expr):
            if self.is_uid_expression(node, function_name):
                return True
            if isinstance(node, Identifier) and node.name in influenced:
                return True
            if isinstance(node, Call) and node.func in UID_INFLUENCED_RESULTS:
                return True
        return False

    # -- analysis ------------------------------------------------------------------------

    def _analyse(self) -> None:
        for variable in self.unit.globals:
            if is_uid_type(variable.ctype):
                self.global_uid_variables.add(variable.name)
        for function in self.unit.functions:
            self.functions[function.name] = self._analyse_function(function)

    def _analyse_function(self, function: Function) -> FunctionAnalysis:
        analysis = FunctionAnalysis(name=function.name)

        for parameter in function.parameters:
            if is_uid_type(parameter.ctype):
                analysis.uid_variables.add(parameter.name)
        for statement in walk_statements(function.body):
            if isinstance(statement, Declaration) and is_uid_type(statement.ctype):
                analysis.uid_variables.add(statement.name)

        # Fixpoint inference for plain-int variables that carry UID values and
        # for UID-influenced variables (Splint-style annotations would give
        # the same result; the iteration handles chains of assignments).
        changed = True
        while changed:
            changed = False
            for statement in walk_statements(function.body):
                source: Optional[Expr] = None
                target_name: Optional[str] = None
                if isinstance(statement, Declaration) and statement.init is not None:
                    source, target_name = statement.init, statement.name
                elif isinstance(statement, Assignment) and isinstance(statement.target, Identifier):
                    source, target_name = statement.value, statement.target.name
                if source is None or target_name is None:
                    continue
                if (
                    target_name not in analysis.uid_variables
                    and self._expression_is_uid(source, analysis)
                ):
                    analysis.uid_variables.add(target_name)
                    changed = True
                if (
                    target_name not in analysis.influenced_variables
                    and self._expression_is_influenced(source, analysis)
                ):
                    analysis.influenced_variables.add(target_name)
                    changed = True
        return analysis

    def _expression_is_uid(self, expr: Expr, analysis: FunctionAnalysis) -> bool:
        if isinstance(expr, Identifier):
            return expr.name in analysis.uid_variables or expr.name in self.global_uid_variables
        if isinstance(expr, FieldAccess):
            return expr.field in UID_FIELDS
        if isinstance(expr, Call):
            return expr.func in UID_RETURNING_FUNCTIONS
        if isinstance(expr, Binary) and expr.op in ("+", "-"):
            return self._expression_is_uid(expr.left, analysis) or self._expression_is_uid(
                expr.right, analysis
            )
        return False

    def _expression_is_influenced(self, expr: Expr, analysis: FunctionAnalysis) -> bool:
        for node in walk_expressions(expr):
            if self._expression_is_uid(node, analysis):
                return True
            if isinstance(node, Identifier) and (
                node.name in analysis.influenced_variables or node.name in self.global_influenced
            ):
                return True
            if isinstance(node, Call) and node.func in UID_INFLUENCED_RESULTS:
                return True
        return False
