"""Change accounting for the source transformation (Section 4 of the paper).

The paper reports the manual effort of transforming Apache as a count of
changes by category: 15 reexpressed constants, 16 ``uid_value`` insertions,
22 comparison rewrites and 20 ``cond_chk`` insertions (73 in total).  The
automatic transformer records every change it makes in the same categories so
the Section 4 experiment can print the equivalent table for the mini-httpd.
"""

from __future__ import annotations

import dataclasses
import enum


class ChangeCategory(enum.Enum):
    """The change categories of Section 4, plus the implicit-comparison step."""

    CONSTANT = "constant-reexpression"
    UID_VALUE = "uid_value-exposure"
    COMPARISON = "comparison-rewrite"
    COND_CHK = "cond_chk-wrapping"
    IMPLICIT_COMPARISON = "implicit-comparison-expansion"


#: The paper's Apache numbers, used for side-by-side reporting.
PAPER_APACHE_COUNTS: dict[ChangeCategory, int] = {
    ChangeCategory.CONSTANT: 15,
    ChangeCategory.UID_VALUE: 16,
    ChangeCategory.COMPARISON: 22,
    ChangeCategory.COND_CHK: 20,
}

#: Total changes the paper reports for Apache.
PAPER_APACHE_TOTAL = 73


@dataclasses.dataclass(frozen=True)
class ChangeRecord:
    """One transformation applied at one source location."""

    category: ChangeCategory
    line: int
    description: str


@dataclasses.dataclass
class TransformationReport:
    """All changes applied while producing one variant."""

    variant_index: int = 1
    changes: list[ChangeRecord] = dataclasses.field(default_factory=list)

    def record(self, category: ChangeCategory, line: int, description: str) -> None:
        """Record one applied change."""
        self.changes.append(ChangeRecord(category=category, line=line, description=description))

    def count(self, category: ChangeCategory) -> int:
        """Number of changes in *category*."""
        return sum(1 for change in self.changes if change.category is category)

    def counts(self) -> dict[ChangeCategory, int]:
        """Counts per category (categories with zero changes included)."""
        return {category: self.count(category) for category in ChangeCategory}

    @property
    def total(self) -> int:
        """Total number of changes applied."""
        return len(self.changes)

    @property
    def total_paper_categories(self) -> int:
        """Total counting only the four categories the paper tabulates."""
        return sum(self.count(category) for category in PAPER_APACHE_COUNTS)

    def comparison_rows(self) -> list[tuple[str, int, int]]:
        """Rows ``(category, ours, paper)`` for the Section 4 table."""
        rows = []
        for category, paper_count in PAPER_APACHE_COUNTS.items():
            rows.append((category.value, self.count(category), paper_count))
        rows.append(("total", self.total_paper_categories, PAPER_APACHE_TOTAL))
        return rows

    def describe(self) -> str:
        """Multi-line summary of the applied changes."""
        lines = [f"transformation report for variant {self.variant_index}:"]
        for category, count in self.counts().items():
            lines.append(f"  {category.value:34s} {count}")
        lines.append(f"  {'total':34s} {self.total}")
        return "\n".join(lines)
