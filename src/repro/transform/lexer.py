"""Tokenizer for the mini-C subset used by the UID transformation.

The paper transforms Apache's C source by hand but argues (Section 5) that
the transformation is mechanical: identify uid_t data, rewrite constants,
comparisons and uses.  To demonstrate that, this package implements a small C
subset front end -- enough to express the UID-relevant portions of a server --
and an automatic transformer over it.

The lexer is a conventional longest-match scanner producing a flat token
list; line/column information is kept for error messages and for the change
report (which records where each transformation was applied).
"""

from __future__ import annotations

import dataclasses
import enum
import re


class TokenType(enum.Enum):
    """Lexical categories of the mini-C subset."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


#: Reserved words of the subset.
KEYWORDS = frozenset(
    {
        "int",
        "uid_t",
        "gid_t",
        "bool",
        "char",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "struct",
        "NULL",
        "true",
        "false",
        "static",
        "const",
    }
)

#: Multi-character punctuation, longest first so the scanner prefers them.
MULTI_CHAR_PUNCT = ("==", "!=", "<=", ">=", "&&", "||", "->", "+=", "-=")

#: Single-character punctuation.
SINGLE_CHAR_PUNCT = "(){}[];,=<>!+-*/&|.%"

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>==|!=|<=|>=|&&|\|\||->|\+=|-=|[(){}\[\];,=<>!+\-*/&|.%])
  | (?P<space>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(ValueError):
    """Raised on input the scanner cannot tokenise."""


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Scan *source* into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise LexError(f"unexpected character {source[position]!r} at line {line}:{column}")
        text = match.group(0)
        column = position - line_start + 1
        kind = match.lastgroup
        if kind == "ident":
            token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, text, line, column))
        elif kind == "number":
            tokens.append(Token(TokenType.NUMBER, text, line, column))
        elif kind == "string":
            tokens.append(Token(TokenType.STRING, text, line, column))
        elif kind == "char":
            tokens.append(Token(TokenType.CHAR, text, line, column))
        elif kind == "punct":
            tokens.append(Token(TokenType.PUNCT, text, line, column))
        # comments and whitespace are skipped, but line numbers must advance
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token(TokenType.EOF, "", line, len(source) - line_start + 1))
    return tokens
