"""Pretty-printer: emit mini-C source from an AST.

Used to materialise the transformed variant's source (so examples and tests
can diff original vs transformed code the way a reviewer of the paper's
Apache patch would) and to round-trip programs in tests.
"""

from __future__ import annotations

from repro.transform.ast_nodes import (
    Assignment,
    Binary,
    BoolLiteral,
    Call,
    Declaration,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    GlobalVariable,
    Identifier,
    If,
    IntLiteral,
    NullLiteral,
    Parameter,
    Return,
    Stmt,
    StringLiteral,
    TranslationUnit,
    Unary,
    While,
)

_INDENT = "    "


def print_expression(expr: Expr) -> str:
    """Render an expression."""
    if isinstance(expr, IntLiteral):
        if expr.original_text.lower().startswith("0x"):
            return expr.original_text
        return str(expr.value)
    if isinstance(expr, StringLiteral):
        return expr.text
    if isinstance(expr, NullLiteral):
        return "NULL"
    if isinstance(expr, BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, FieldAccess):
        separator = "->" if expr.arrow else "."
        return f"{print_expression(expr.base)}{separator}{expr.field}"
    if isinstance(expr, Call):
        arguments = ", ".join(print_expression(argument) for argument in expr.args)
        return f"{expr.func}({arguments})"
    if isinstance(expr, Unary):
        return f"{expr.op}{print_expression(expr.operand)}"
    if isinstance(expr, Binary):
        return f"({print_expression(expr.left)} {expr.op} {print_expression(expr.right)})"
    raise TypeError(f"cannot print expression {expr!r}")


def _print_statement(statement: Stmt, indent: int) -> list[str]:
    pad = _INDENT * indent
    if isinstance(statement, Declaration):
        pointer = "*" if statement.pointer else ""
        if statement.init is not None:
            return [f"{pad}{statement.ctype} {pointer}{statement.name} = {print_expression(statement.init)};"]
        return [f"{pad}{statement.ctype} {pointer}{statement.name};"]
    if isinstance(statement, Assignment):
        return [f"{pad}{print_expression(statement.target)} = {print_expression(statement.value)};"]
    if isinstance(statement, ExprStmt):
        return [f"{pad}{print_expression(statement.expr)};"]
    if isinstance(statement, Return):
        if statement.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {print_expression(statement.value)};"]
    if isinstance(statement, If):
        lines = [f"{pad}if ({print_expression(statement.cond)}) {{"]
        for child in statement.then_body:
            lines.extend(_print_statement(child, indent + 1))
        if statement.else_body:
            lines.append(f"{pad}}} else {{")
            for child in statement.else_body:
                lines.extend(_print_statement(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(statement, While):
        lines = [f"{pad}while ({print_expression(statement.cond)}) {{"]
        for child in statement.body:
            lines.extend(_print_statement(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot print statement {statement!r}")


def _print_function(function: Function) -> list[str]:
    parameters = ", ".join(
        f"{parameter.ctype} {'*' if parameter.pointer else ''}{parameter.name}"
        for parameter in function.parameters
    ) or "void"
    pointer = "*" if function.return_pointer else ""
    lines = [f"{function.return_type} {pointer}{function.name}({parameters}) {{"]
    for statement in function.body:
        lines.extend(_print_statement(statement, 1))
    lines.append("}")
    return lines


def print_unit(unit: TranslationUnit) -> str:
    """Render a whole translation unit back to source text."""
    lines: list[str] = []
    for variable in unit.globals:
        pointer = "*" if variable.pointer else ""
        if variable.init is not None:
            lines.append(f"{variable.ctype} {pointer}{variable.name} = {print_expression(variable.init)};")
        else:
            lines.append(f"{variable.ctype} {pointer}{variable.name};")
    if unit.globals:
        lines.append("")
    for index, function in enumerate(unit.functions):
        if index:
            lines.append("")
        lines.extend(_print_function(function))
    return "\n".join(lines) + "\n"
