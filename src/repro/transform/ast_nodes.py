"""Abstract syntax tree for the mini-C subset.

Nodes are small dataclasses; every expression node carries an optional
``ctype`` filled in by the type/dataflow analysis so the transformer can ask
"is this a UID-typed expression?" at any point.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

#: Type names treated as UID-like by the transformation (Section 3.3 treats
#: uid_t and gid_t together; we do the same).
UID_TYPES = frozenset({"uid_t", "gid_t"})


@dataclasses.dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = 0


# -- expressions --------------------------------------------------------------


@dataclasses.dataclass
class Expr(Node):
    """Base class for expressions; ``ctype`` is filled by analysis."""

    ctype: Optional[str] = None


@dataclasses.dataclass
class IntLiteral(Expr):
    """An integer constant (decimal or hex in the source)."""

    value: int = 0
    original_text: str = ""


@dataclasses.dataclass
class StringLiteral(Expr):
    """A string constant (kept verbatim, including quotes)."""

    text: str = '""'


@dataclasses.dataclass
class NullLiteral(Expr):
    """The NULL constant."""


@dataclasses.dataclass
class BoolLiteral(Expr):
    """true / false."""

    value: bool = False


@dataclasses.dataclass
class Identifier(Expr):
    """A variable reference."""

    name: str = ""


@dataclasses.dataclass
class FieldAccess(Expr):
    """``base->field`` or ``base.field`` (arrow flag records which)."""

    base: Expr = None
    field: str = ""
    arrow: bool = True


@dataclasses.dataclass
class Call(Expr):
    """A function call."""

    func: str = ""
    args: list[Expr] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Unary(Expr):
    """A unary operation (``!`` or ``-``)."""

    op: str = "!"
    operand: Expr = None


@dataclasses.dataclass
class Binary(Expr):
    """A binary operation."""

    op: str = "=="
    left: Expr = None
    right: Expr = None


#: Comparison operators eligible for the cc_* rewrite.
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


# -- statements -----------------------------------------------------------------


@dataclasses.dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclasses.dataclass
class Declaration(Stmt):
    """``type name [= init];``"""

    ctype: str = "int"
    name: str = ""
    init: Optional[Expr] = None
    pointer: bool = False


@dataclasses.dataclass
class Assignment(Stmt):
    """``target = value;`` (target is an identifier or field access)."""

    target: Expr = None
    value: Expr = None


@dataclasses.dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effect (usually a call)."""

    expr: Expr = None


@dataclasses.dataclass
class If(Stmt):
    """``if (cond) {...} [else {...}]``"""

    cond: Expr = None
    then_body: list[Stmt] = dataclasses.field(default_factory=list)
    else_body: list[Stmt] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class While(Stmt):
    """``while (cond) {...}``"""

    cond: Expr = None
    body: list[Stmt] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Return(Stmt):
    """``return [expr];``"""

    value: Optional[Expr] = None


# -- declarations ----------------------------------------------------------------


@dataclasses.dataclass
class Parameter(Node):
    """A function parameter."""

    ctype: str = "int"
    name: str = ""
    pointer: bool = False


@dataclasses.dataclass
class Function(Node):
    """A function definition."""

    return_type: str = "void"
    name: str = ""
    parameters: list[Parameter] = dataclasses.field(default_factory=list)
    body: list[Stmt] = dataclasses.field(default_factory=list)
    return_pointer: bool = False


@dataclasses.dataclass
class GlobalVariable(Node):
    """A file-scope variable definition."""

    ctype: str = "int"
    name: str = ""
    init: Optional[Expr] = None
    pointer: bool = False


@dataclasses.dataclass
class TranslationUnit(Node):
    """A whole source file."""

    globals: list[GlobalVariable] = dataclasses.field(default_factory=list)
    functions: list[Function] = dataclasses.field(default_factory=list)

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)


def is_uid_type(ctype: Optional[str]) -> bool:
    """True when *ctype* names a UID-like type."""
    return ctype in UID_TYPES


def walk_expressions(expr: Expr):
    """Yield *expr* and every sub-expression."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, FieldAccess):
        yield from walk_expressions(expr.base)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expressions(arg)
    elif isinstance(expr, Unary):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)


def walk_statements(statements: Sequence[Stmt]):
    """Yield every statement in *statements*, recursing into bodies."""
    for statement in statements:
        yield statement
        if isinstance(statement, If):
            yield from walk_statements(statement.then_body)
            yield from walk_statements(statement.else_body)
        elif isinstance(statement, While):
            yield from walk_statements(statement.body)
