"""The UID-variation source-to-source transformation (Section 3.3 / Section 4).

Given a parsed program and a reexpression function ``R_i``, the transformer
produces the variant-*i* source by applying, in order:

1. **implicit comparison expansion** -- ``if (!getuid())`` becomes
   ``if (getuid() == 0)`` so that the implied UID constant is explicit and
   can be reexpressed;
2. **constant reexpression** -- every integer literal used in a UID context
   (assigned to, compared with, or passed as a UID) is replaced with
   ``R_i(constant)``;
3. **comparison rewriting** -- comparisons whose operands carry UID values
   become the corresponding ``cc_*`` detection call, so the kernel performs
   the comparison on decoded values and the two variants' instruction
   streams stay identical;
4. **uid_value exposure** -- a UID value passed to an ordinary (non-kernel)
   function is wrapped in ``uid_value(...)`` so the monitor checks it at the
   point of use;
5. **cond_chk wrapping** -- ``if``/``while`` conditions that UID data may
   directly or indirectly influence (and that are not already a ``cc_*``
   call) are wrapped in ``cond_chk(...)`` so both variants are forced to
   take the same path.

The transformer returns the rewritten AST together with a
:class:`~repro.transform.report.TransformationReport` whose per-category
counts reproduce the accounting of Section 4 (15 constants, 16 uid_value, 22
comparison, 20 cond_chk changes for Apache; our mini-httpd source yields
numbers of the same shape, recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.transform.analysis import (
    UID_PARAMETER_FUNCTIONS,
    UID_RETURNING_FUNCTIONS,
    UIDAnalysis,
)
from repro.transform.ast_nodes import (
    Assignment,
    Binary,
    Call,
    COMPARISON_OPS,
    Declaration,
    Expr,
    ExprStmt,
    Function,
    Identifier,
    If,
    IntLiteral,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    While,
    is_uid_type,
)
from repro.transform.report import ChangeCategory, TransformationReport

#: Comparison operator -> detection call name (Table 2).
_CC_CALLS = {
    "==": "cc_eq",
    "!=": "cc_neq",
    "<": "cc_lt",
    "<=": "cc_leq",
    ">": "cc_gt",
    ">=": "cc_geq",
}

#: Kernel-boundary functions: their UID arguments are decoded by the kernel
#: wrappers, so they are *not* wrapped in uid_value (the check happens in the
#: wrapper itself).  Everything else that receives a UID gets uid_value.
_KERNEL_UID_FUNCTIONS = frozenset(
    {"setuid", "seteuid", "setgid", "setegid", "setreuid", "setresuid", "chown"}
)

#: Detection calls themselves are never re-wrapped.
_DETECTION_CALLS = frozenset({"uid_value", "cond_chk"} | set(_CC_CALLS.values()))


class UIDVariationTransformer:
    """Applies the UID variation to a translation unit."""

    def __init__(self, reexpress: Callable[[int], int], *, variant_index: int = 1):
        self.reexpress = reexpress
        self.variant_index = variant_index

    # -- public API -------------------------------------------------------------

    def transform(self, unit: TranslationUnit) -> tuple[TranslationUnit, TransformationReport]:
        """Return the transformed copy of *unit* and the change report."""
        transformed = copy.deepcopy(unit)
        report = TransformationReport(variant_index=self.variant_index)
        analysis = UIDAnalysis(transformed)

        for variable in transformed.globals:
            if is_uid_type(variable.ctype) and isinstance(variable.init, IntLiteral):
                self._reexpress_literal(variable.init, report)
        for function in transformed.functions:
            self._transform_function(function, analysis, report)
        return transformed, report

    # -- per-function pass ----------------------------------------------------------

    def _transform_function(
        self, function: Function, analysis: UIDAnalysis, report: TransformationReport
    ) -> None:
        returns_uid = is_uid_type(function.return_type)
        function.body = [
            self._transform_statement(
                statement, function.name, analysis, report, returns_uid=returns_uid
            )
            for statement in function.body
        ]

    def _transform_statement(
        self,
        statement: Stmt,
        scope: str,
        analysis: UIDAnalysis,
        report: TransformationReport,
        *,
        returns_uid: bool = False,
    ) -> Stmt:
        if isinstance(statement, Declaration):
            if statement.init is not None:
                statement.init = self._transform_expression(
                    statement.init, scope, analysis, report,
                    uid_context=is_uid_type(statement.ctype)
                    or statement.name in analysis.uid_variables(scope),
                )
            return statement
        if isinstance(statement, Assignment):
            uid_target = analysis.is_uid_expression(statement.target, scope)
            statement.value = self._transform_expression(
                statement.value, scope, analysis, report, uid_context=uid_target
            )
            return statement
        if isinstance(statement, ExprStmt):
            statement.expr = self._transform_expression(statement.expr, scope, analysis, report)
            return statement
        if isinstance(statement, Return):
            if statement.value is not None:
                statement.value = self._transform_expression(
                    statement.value, scope, analysis, report, uid_context=returns_uid
                )
            return statement
        if isinstance(statement, If):
            statement.cond = self._transform_condition(statement.cond, scope, analysis, report)
            statement.then_body = [
                self._transform_statement(s, scope, analysis, report, returns_uid=returns_uid)
                for s in statement.then_body
            ]
            statement.else_body = [
                self._transform_statement(s, scope, analysis, report, returns_uid=returns_uid)
                for s in statement.else_body
            ]
            return statement
        if isinstance(statement, While):
            statement.cond = self._transform_condition(statement.cond, scope, analysis, report)
            statement.body = [
                self._transform_statement(s, scope, analysis, report, returns_uid=returns_uid)
                for s in statement.body
            ]
            return statement
        return statement

    # -- conditions -------------------------------------------------------------------------

    def _transform_condition(
        self, cond: Expr, scope: str, analysis: UIDAnalysis, report: TransformationReport
    ) -> Expr:
        influenced = analysis.is_uid_influenced(cond, scope)
        cond = self._transform_expression(cond, scope, analysis, report)
        if not influenced:
            return cond
        if isinstance(cond, Call) and cond.func in _DETECTION_CALLS:
            # A cc_* comparison already exposes the condition to the monitor.
            return cond
        wrapped = Call(line=cond.line, func="cond_chk", args=[cond])
        report.record(ChangeCategory.COND_CHK, cond.line, "wrapped condition in cond_chk()")
        return wrapped

    # -- expressions ---------------------------------------------------------------------------

    def _transform_expression(
        self,
        expr: Expr,
        scope: str,
        analysis: UIDAnalysis,
        report: TransformationReport,
        *,
        uid_context: bool = False,
    ) -> Expr:
        if expr is None:
            return expr

        if isinstance(expr, IntLiteral):
            if uid_context:
                self._reexpress_literal(expr, report)
            return expr

        if isinstance(expr, Unary):
            # Implicit comparison: !uid_expr  ->  (uid_expr == 0)
            if expr.op == "!" and analysis.is_uid_expression(expr.operand, scope):
                explicit = Binary(
                    line=expr.line,
                    op="==",
                    left=expr.operand,
                    right=IntLiteral(line=expr.line, value=0, original_text="0"),
                )
                report.record(
                    ChangeCategory.IMPLICIT_COMPARISON,
                    expr.line,
                    "made implicit UID comparison explicit (! -> == 0)",
                )
                return self._transform_expression(explicit, scope, analysis, report)
            expr.operand = self._transform_expression(expr.operand, scope, analysis, report)
            return expr

        if isinstance(expr, Binary):
            left_uid = analysis.is_uid_expression(expr.left, scope)
            right_uid = analysis.is_uid_expression(expr.right, scope)
            if expr.op in COMPARISON_OPS and (left_uid or right_uid):
                left = self._transform_expression(
                    expr.left, scope, analysis, report, uid_context=right_uid or left_uid
                )
                right = self._transform_expression(
                    expr.right, scope, analysis, report, uid_context=left_uid or right_uid
                )
                call = Call(line=expr.line, func=_CC_CALLS[expr.op], args=[left, right])
                report.record(
                    ChangeCategory.COMPARISON,
                    expr.line,
                    f"rewrote UID comparison '{expr.op}' as {_CC_CALLS[expr.op]}()",
                )
                return call
            expr.left = self._transform_expression(expr.left, scope, analysis, report)
            expr.right = self._transform_expression(expr.right, scope, analysis, report)
            return expr

        if isinstance(expr, Call):
            return self._transform_call(expr, scope, analysis, report)

        return expr

    def _transform_call(
        self, call: Call, scope: str, analysis: UIDAnalysis, report: TransformationReport
    ) -> Call:
        uid_positions = UID_PARAMETER_FUNCTIONS.get(call.func, ())
        new_args: list[Expr] = []
        for index, argument in enumerate(call.args):
            is_uid_argument = index in uid_positions or analysis.is_uid_expression(argument, scope)
            argument = self._transform_expression(
                argument, scope, analysis, report, uid_context=is_uid_argument
            )
            needs_exposure = (
                is_uid_argument
                and call.func not in _KERNEL_UID_FUNCTIONS
                and call.func not in _DETECTION_CALLS
                and not (isinstance(argument, Call) and argument.func in _DETECTION_CALLS)
            )
            if needs_exposure:
                argument = Call(line=argument.line, func="uid_value", args=[argument])
                report.record(
                    ChangeCategory.UID_VALUE,
                    argument.line,
                    f"exposed UID argument of {call.func}() with uid_value()",
                )
            new_args.append(argument)
        call.args = new_args
        return call

    # -- literals --------------------------------------------------------------------------------

    def _reexpress_literal(self, literal: IntLiteral, report: TransformationReport) -> None:
        original = literal.value
        literal.value = self.reexpress(original)
        if literal.value != original:
            literal.original_text = hex(literal.value)
            report.record(
                ChangeCategory.CONSTANT,
                literal.line,
                f"reexpressed UID constant {original} -> 0x{literal.value:08X}",
            )


def transform_source(
    source: str, reexpress: Callable[[int], int], *, variant_index: int = 1
) -> tuple[TranslationUnit, TransformationReport]:
    """Parse *source*, apply the UID variation and return AST plus report."""
    from repro.transform.parser import parse_source

    unit = parse_source(source)
    transformer = UIDVariationTransformer(reexpress, variant_index=variant_index)
    return transformer.transform(unit)
