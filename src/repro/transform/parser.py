"""Recursive-descent parser for the mini-C subset."""

from __future__ import annotations

from repro.transform.ast_nodes import (
    Assignment,
    Binary,
    BoolLiteral,
    Call,
    Declaration,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    GlobalVariable,
    Identifier,
    If,
    IntLiteral,
    NullLiteral,
    Parameter,
    Return,
    Stmt,
    StringLiteral,
    TranslationUnit,
    Unary,
    While,
)
from repro.transform.lexer import Token, TokenType, tokenize

#: Type keywords accepted in declarations.
TYPE_KEYWORDS = ("int", "uid_t", "gid_t", "bool", "char", "void")


class ParseError(ValueError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line} (near {token.value!r})")
        self.token = token


class Parser:
    """One-pass recursive-descent parser."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check(self, value: str) -> bool:
        return self.peek().value == value and self.peek().type in (
            TokenType.PUNCT,
            TokenType.KEYWORD,
        )

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            raise ParseError(f"expected {value!r}", self.peek())
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise ParseError("expected identifier", token)
        return self.advance()

    # -- declarations -----------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        """Parse the whole token stream."""
        unit = TranslationUnit(line=1)
        while self.peek().type is not TokenType.EOF:
            self._skip_qualifiers()
            ctype, pointer, line = self._parse_type()
            name = self.expect_ident().value
            if self.check("("):
                unit.functions.append(self._parse_function(ctype, pointer, name, line))
            else:
                init = None
                if self.accept("="):
                    init = self.parse_expression()
                self.expect(";")
                unit.globals.append(
                    GlobalVariable(line=line, ctype=ctype, name=name, init=init, pointer=pointer)
                )
        return unit

    def _skip_qualifiers(self) -> None:
        while self.check("static") or self.check("const") or self.check("struct"):
            self.advance()

    def _parse_type(self) -> tuple[str, bool, int]:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in TYPE_KEYWORDS:
            self.advance()
        elif token.type is TokenType.IDENT:
            # struct/typedef names (e.g. passwd) are accepted as opaque types.
            self.advance()
        else:
            raise ParseError("expected a type name", token)
        pointer = False
        while self.accept("*"):
            pointer = True
        return token.value, pointer, token.line

    def _parse_function(self, return_type: str, pointer: bool, name: str, line: int) -> Function:
        self.expect("(")
        parameters: list[Parameter] = []
        if not self.check(")"):
            if self.check("void") and self.peek(1).value == ")":
                self.advance()
            else:
                while True:
                    self._skip_qualifiers()
                    ctype, param_pointer, param_line = self._parse_type()
                    param_name = self.expect_ident().value
                    parameters.append(
                        Parameter(
                            line=param_line, ctype=ctype, name=param_name, pointer=param_pointer
                        )
                    )
                    if not self.accept(","):
                        break
        self.expect(")")
        body = self._parse_block()
        return Function(
            line=line,
            return_type=return_type,
            name=name,
            parameters=parameters,
            body=body,
            return_pointer=pointer,
        )

    # -- statements ---------------------------------------------------------------------

    def _parse_block(self) -> list[Stmt]:
        self.expect("{")
        statements: list[Stmt] = []
        while not self.check("}"):
            statements.append(self._parse_statement())
        self.expect("}")
        return statements

    def _parse_body(self) -> list[Stmt]:
        if self.check("{"):
            return self._parse_block()
        return [self._parse_statement()]

    def _parse_statement(self) -> Stmt:
        token = self.peek()
        self._skip_qualifiers()
        token = self.peek()
        if token.value == "if":
            return self._parse_if()
        if token.value == "while":
            return self._parse_while()
        if token.value == "return":
            return self._parse_return()
        if token.type is TokenType.KEYWORD and token.value in TYPE_KEYWORDS:
            return self._parse_declaration()
        if (
            token.type is TokenType.IDENT
            and self.peek(1).type is TokenType.IDENT
            or (token.type is TokenType.IDENT and self.peek(1).value == "*" and self.peek(2).type is TokenType.IDENT)
        ):
            # ``passwd *pw = ...`` -- declaration with a typedef'd struct type.
            return self._parse_declaration()
        return self._parse_assignment_or_expression()

    def _parse_declaration(self) -> Declaration:
        ctype, pointer, line = self._parse_type()
        name = self.expect_ident().value
        init = None
        if self.accept("="):
            init = self.parse_expression()
        self.expect(";")
        return Declaration(line=line, ctype=ctype, name=name, init=init, pointer=pointer)

    def _parse_if(self) -> If:
        token = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self._parse_body()
        else_body: list[Stmt] = []
        if self.accept("else"):
            if self.check("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body()
        return If(line=token.line, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> While:
        token = self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self._parse_body()
        return While(line=token.line, cond=cond, body=body)

    def _parse_return(self) -> Return:
        token = self.expect("return")
        value = None
        if not self.check(";"):
            value = self.parse_expression()
        self.expect(";")
        return Return(line=token.line, value=value)

    def _parse_assignment_or_expression(self) -> Stmt:
        line = self.peek().line
        expr = self.parse_expression()
        if self.accept("="):
            value = self.parse_expression()
            self.expect(";")
            if not isinstance(expr, (Identifier, FieldAccess)):
                raise ParseError("invalid assignment target", self.peek())
            return Assignment(line=line, target=expr, value=value)
        self.expect(";")
        return ExprStmt(line=line, expr=expr)

    # -- expressions (precedence climbing) ----------------------------------------------------

    def parse_expression(self) -> Expr:
        """Parse an expression (public entry point used by tests)."""
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.check("||"):
            token = self.advance()
            right = self._parse_and()
            left = Binary(line=token.line, op="||", left=left, right=right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self.check("&&"):
            token = self.advance()
            right = self._parse_equality()
            left = Binary(line=token.line, op="&&", left=left, right=right)
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self.check("==") or self.check("!="):
            token = self.advance()
            right = self._parse_relational()
            left = Binary(line=token.line, op=token.value, left=left, right=right)
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self.check("<") or self.check("<=") or self.check(">") or self.check(">="):
            token = self.advance()
            right = self._parse_additive()
            left = Binary(line=token.line, op=token.value, left=left, right=right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_unary()
        while self.check("+") or self.check("-"):
            token = self.advance()
            right = self._parse_unary()
            left = Binary(line=token.line, op=token.value, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        if self.check("!"):
            token = self.advance()
            operand = self._parse_unary()
            return Unary(line=token.line, op="!", operand=operand)
        if self.check("-"):
            token = self.advance()
            operand = self._parse_unary()
            return Unary(line=token.line, op="-", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.check("("):
                if not isinstance(expr, Identifier):
                    raise ParseError("only simple function calls are supported", self.peek())
                self.advance()
                args: list[Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = Call(line=expr.line, func=expr.name, args=args)
            elif self.check("->") or self.check("."):
                token = self.advance()
                field = self.expect_ident().value
                expr = FieldAccess(
                    line=token.line, base=expr, field=field, arrow=token.value == "->"
                )
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return IntLiteral(line=token.line, value=int(token.value, 0), original_text=token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return StringLiteral(line=token.line, text=token.value)
        if token.type is TokenType.CHAR:
            self.advance()
            return StringLiteral(line=token.line, text=token.value)
        if token.value == "NULL":
            self.advance()
            return NullLiteral(line=token.line)
        if token.value in ("true", "false"):
            self.advance()
            return BoolLiteral(line=token.line, value=token.value == "true")
        if token.type is TokenType.IDENT:
            self.advance()
            return Identifier(line=token.line, name=token.value)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError("expected an expression", token)


def parse_source(source: str) -> TranslationUnit:
    """Tokenise and parse *source* into a :class:`TranslationUnit`."""
    return Parser(tokenize(source)).parse()
