"""repro: reproduction of "Security through Redundant Data Diversity" (DSN 2008).

The package is organised as the paper's system is layered:

* :mod:`repro.kernel` -- simulated Unix kernel substrate (processes,
  credentials, VFS, descriptors, network, syscalls, detection calls).
* :mod:`repro.memory` -- simulated address spaces and the memory-corruption
  primitives attacks operate with.
* :mod:`repro.isa` -- miniature instruction set for the tagging variation.
* :mod:`repro.core` -- the N-variant framework with data diversity:
  reexpression functions, variations, lockstep engine, monitor, wrappers.
* :mod:`repro.engine` -- the concurrent multi-session execution engine:
  resumable lockstep sessions and the cooperative round-robin scheduler.
* :mod:`repro.api` -- the declarative scenario layer: JSON-round-trippable
  system/fleet specs, the variation registry, the builders that are the only
  supported construction path, and the unified campaign runner.
* :mod:`repro.transform` -- mini-C source-to-source UID transformation
  (Section 3.3 / Section 4 change accounting).
* :mod:`repro.apps` -- the mini Apache case-study server and the
  WebBench-style workload generator.
* :mod:`repro.attacks` -- the attack library (campaigns run through
  :func:`repro.api.campaign.run_campaign`).
* :mod:`repro.analysis` -- virtual-time performance model, metrics, and one
  registered experiment per paper table/figure (see
  :mod:`repro.api.experiments`).

The documented import path for the scenario API is this top-level package::

    from repro import SystemSpec, FleetSpec, build_system, build_engine, registry

``python -m repro run scenario.json`` drives the same API from the shell.
"""

from repro._version import __version__
from repro.api import (
    ADDRESS_ORBIT_3_SPEC,
    ADDRESS_PARTITIONING_SPEC,
    ADDRESS_UID_SPEC,
    COMBINED_ORBIT_3_SPEC,
    CampaignReport,
    ExperimentReport,
    ExperimentSpec,
    FleetSpec,
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    SystemSpec,
    UID_DIVERSITY_SPEC,
    UID_ORBIT_3_SPEC,
    UnknownVariationError,
    VariationParameterError,
    VariationRegistry,
    VariationSpec,
    WorkloadSpec,
    build_engine,
    build_session,
    build_system,
    build_variations,
    experiments,
    prepare_attack,
    registry,
    run_attack,
    run_campaign,
    address_orbit_spec,
    combined_orbit_spec,
    keyed_address_spec,
    keyed_uid_spec,
    uid_orbit_spec,
)

__all__ = [
    "ADDRESS_ORBIT_3_SPEC",
    "ADDRESS_PARTITIONING_SPEC",
    "ADDRESS_UID_SPEC",
    "COMBINED_ORBIT_3_SPEC",
    "CampaignReport",
    "ExperimentReport",
    "ExperimentSpec",
    "FleetSpec",
    "SINGLE_PROCESS_SPEC",
    "STANDARD_SYSTEM_SPECS",
    "SystemSpec",
    "UID_DIVERSITY_SPEC",
    "UID_ORBIT_3_SPEC",
    "UnknownVariationError",
    "VariationParameterError",
    "VariationRegistry",
    "VariationSpec",
    "WorkloadSpec",
    "__version__",
    "address_orbit_spec",
    "combined_orbit_spec",
    "build_engine",
    "build_session",
    "build_system",
    "build_variations",
    "experiments",
    "keyed_address_spec",
    "keyed_uid_spec",
    "prepare_attack",
    "registry",
    "run_attack",
    "run_campaign",
    "uid_orbit_spec",
]
