"""The probe primitive: checked reads against a keyed fleet.

A probe is a guess about where a keyed fleet keeps its data.  The probing
program maps one small "secret" region at a *nominal* address every variant
shares; under a keyed address scheme the region's concrete location differs
per variant and is unknown to the attacker.  Each probe then ``peek``\\ s one
candidate absolute address and immediately surfaces the outcome through
``cond_chk``:

* **unanimous miss** -- every variant gets EFAULT, ``cond_chk(False)`` agrees
  everywhere, the monitor stays silent and the attacker learns only that the
  guess was wrong;
* **partial hit** -- the guess lies inside *some* variant's region; that
  variant's ``cond_chk(True)`` diverges from its siblings' ``False`` and the
  monitor halts the session.  This is the detection event the
  probes-to-first-alarm metric counts;
* **unanimous hit** -- every variant reads data and the monitor stays silent:
  an undetected compromise.  Disjoint partitions make this impossible for
  N >= 2, which the `entropy` experiment claims as probes-to-success = never.

``peek`` executes per variant against each variant's own address space (it
belongs to no wrapper policy set), and its arguments are identical across
variants, so the probe itself never trips the request comparison -- only the
*outcome* divergence does, exactly like a real dereference would.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.api.builders import build_session
from repro.api.spec import SystemSpec
from repro.attacks.outcomes import PreparedAttack
from repro.engine.session import NVariantSession, SessionState
from repro.kernel.kernel import SimulatedKernel
from repro.memory.memory_model import MemoryRegion

#: Nominal address of the probed secret region.  Deliberately small so the
#: region fits every keyed scheme's per-partition capacity at any supported
#: ``key_bits`` (capacity >= 2^16 - slide).
SECRET_NOMINAL_BASE = 0x00001000

#: Size of the probed secret region in bytes.
SECRET_REGION_SIZE = 64

#: Runner reference for process-backend probe cells.
PROBE_RUNNER = "repro.security.probes:run_probe_payload"


@dataclasses.dataclass(frozen=True)
class ProbeOutcome:
    """What one probe cell (one planned probe sequence) observed.

    Picklable and JSON-round-trippable: the process backend ships the same
    dict :meth:`to_dict` produces, so a seeded trial is byte-identical
    across backends.
    """

    name: str
    strategy: str
    configuration: str
    num_variants: int
    key_bits: int
    planned: int
    #: 1-based index of the probe whose divergence raised the first alarm,
    #: or ``None`` when the whole plan ran silent.
    probes_to_first_alarm: Optional[int]
    #: 1-based index of the first *unanimous* hit (an undetected compromise),
    #: or ``None`` -- which disjoint partitions guarantee for N >= 2.
    probes_to_success: Optional[int]
    detail: str = ""

    @property
    def alarmed(self) -> bool:
        """True when the fleet caught the probe sequence."""
        return self.probes_to_first_alarm is not None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, value: dict) -> "ProbeOutcome":
        return cls(**value)


def make_probe_factory(
    addresses: Sequence[int],
    *,
    nominal_base: int = SECRET_NOMINAL_BASE,
    size: int = SECRET_REGION_SIZE,
):
    """A program factory probing *addresses* in order against its own layout.

    Every variant runs the identical program (same probe list, same syscall
    sequence), maps the secret region at the shared nominal base -- the
    address space relocates it into the variant's secret partition -- and
    reports ``{"hits", "first_hit"}`` as its return value.
    """
    plan = tuple(int(address) for address in addresses)

    def factory(context):
        region = context.address_space.map_region(
            MemoryRegion("secret", nominal_base, size)
        )
        region.write(region.base, b"\x5a" * size)

        def program():
            hits = 0
            first_hit = None
            for number, address in enumerate(plan, start=1):
                result = yield from context.libc.peek(address, 1)
                yield from context.libc.cond_chk(result.ok)
                if result.ok:
                    hits += 1
                    if first_hit is None:
                        first_hit = number
            return {"hits": hits, "first_hit": first_hit}

        return program()

    return factory


def summarize_probe_session(
    session: NVariantSession,
    *,
    planned: int,
    name: str = "probe",
    strategy: str = "probe",
    configuration: Optional[str] = None,
) -> dict:
    """Reduce a finished probe session to a plain outcome dict.

    Each probe costs exactly two lockstep rounds (``peek`` then ``cond_chk``)
    and the alarm, when it comes, fires on the ``cond_chk`` round, so a
    halted session pins the alarming probe at ``rounds // 2``; a completed
    session spent one extra round retiring the generators.
    """
    halted = session.state is SessionState.HALTED
    result = session.result()
    spec_dict = {
        "name": name,
        "strategy": strategy,
        "configuration": configuration or session.name,
        "num_variants": session.num_variants,
        "planned": planned,
    }
    if halted:
        alarm = result.first_alarm()
        return {
            **spec_dict,
            "probes_to_first_alarm": session.rounds // 2,
            "probes_to_success": None,
            "detail": alarm.describe() if alarm is not None else "halted",
        }
    first_hits = [
        (variant.return_value or {}).get("first_hit") for variant in result.variants
    ]
    unanimous = first_hits[0] is not None and all(h == first_hits[0] for h in first_hits)
    return {
        **spec_dict,
        "probes_to_first_alarm": None,
        "probes_to_success": first_hits[0] if unanimous else None,
        "detail": "silent sweep" if not unanimous else "unanimous hit",
    }


def prepare_probe_cell(
    spec: SystemSpec,
    addresses: Sequence[int],
    *,
    name: Optional[str] = None,
    strategy: str = "probe",
    key_bits: int = 0,
) -> PreparedAttack:
    """One schedulable probe cell: a keyed fleet vs one planned probe sequence.

    Returns a :class:`~repro.attacks.outcomes.PreparedAttack` so probe cells
    ride the same campaign scheduler as every attack cell; ``finish`` returns
    the plain outcome dict (merge it into :class:`ProbeOutcome` driver-side).
    """
    cell_name = name or f"{strategy}@{spec.name}"
    plan = tuple(int(address) for address in addresses)

    def start():
        kernel = SimulatedKernel()
        return build_session(spec, kernel, make_probe_factory(plan), name=cell_name)

    def finish(session) -> dict:
        summary = summarize_probe_session(
            session,
            planned=len(plan),
            name=cell_name,
            strategy=strategy,
            configuration=spec.name,
        )
        summary["key_bits"] = key_bits
        return summary

    return PreparedAttack(cell_name, spec.name, start, finish)


def run_probe_payload(payload: dict) -> dict:
    """Worker-side probe cell runner (the process backend's entry point).

    The payload carries exactly what :func:`prepare_probe_cell` needs --
    the spec dict (whose keyed variations hold derived seeds, so the worker
    draws the same secret layout the driver planned against) plus the probe
    address list.
    """
    spec = SystemSpec.from_dict(payload["spec"])
    cell = prepare_probe_cell(
        spec,
        payload["addresses"],
        name=payload.get("name"),
        strategy=payload.get("strategy", "probe"),
        key_bits=int(payload.get("key_bits", 0)),
    )
    session = cell.start()
    while not session.done:
        session.step()
    # The procpool result contract (RESULT_KEYS): scheduler accounting at the
    # top level, the cell's own outcome dict under "value".
    return {
        "state": session.state.value,
        "rounds": session.rounds,
        "virtual_elapsed": session.virtual_elapsed,
        "value": cell.finish(session),
    }
