"""Brute-force attacker strategies against keyed address layouts.

The game: a keyed fleet hides N variants' data in secret slices among
``2**key_bits`` (plus, under ``slide``, a secret intra-slice offset each).
The attacker knows the *nominal* program layout -- source code is public --
but not the key, and submits probes (checked reads of absolute addresses)
until the first partial hit halts the fleet.  Strategies differ in how they
order the search space:

* :class:`ExhaustiveSweepAttacker` -- slices in ascending order; first alarm
  at ``min(secret slices) + 1`` probes, expectation
  ``(2**key_bits + 1) / (N + 1)`` over uniform keys
  (:func:`expected_exhaustive_probes`).
* :class:`RandomProbingAttacker` -- i.i.d. uniform guesses from an injected
  :class:`random.Random`; geometrically distributed,
  expectation ``2**key_bits / N``.
* :class:`PartialKnowledgeAttacker` -- a prior: the attacker has leaked the
  low ``known_bits`` of every occupied slice (and the slide offsets, when
  present), shrinking the search space by ``2**known_bits``.  This is the
  only strategy that reads the fleet's secret, and only through the declared
  leak.

Trials run as ordinary campaign cells: :func:`plan_trial` derives the trial's
key seed and probe plan from one root seed, and :func:`run_probe_batch`
executes any mix of planned trials through the campaign scheduler -- the
in-process virtual backend or the pre-forked process pool -- with identical,
submission-ordered results either way.
"""

from __future__ import annotations

import dataclasses
import random
import statistics
from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.api.seeding import derive_seed
from repro.api.spec import SystemSpec, keyed_address_spec
from repro.engine.campaign import CampaignHaltPolicy, CampaignJob, run_jobs
from repro.engine.procpool import ProcessJob, ProcessWorkerPool, run_process_jobs
from repro.memory.partition import (
    KeyedAddressScheme,
    KeyedOrbitScheme,
    VALUE_BITS,
)
from repro.security.probes import (
    PROBE_RUNNER,
    ProbeOutcome,
    SECRET_NOMINAL_BASE,
    prepare_probe_cell,
)


def expected_exhaustive_probes(key_bits: int, num_variants: int) -> float:
    """Analytic E[probes to first alarm] for the ascending exhaustive sweep.

    The N occupied slices are a uniform random N-subset of ``2**key_bits``;
    the sweep alarms at ``min(occupied) + 1``, and the expected minimum of a
    uniform N-subset of ``{0..M-1}`` is ``(M - N) / (N + 1)``.
    """
    space = 1 << key_bits
    return (space - num_variants) / (num_variants + 1) + 1


@runtime_checkable
class BruteForceAttacker(Protocol):
    """A probe-ordering strategy: plans absolute addresses to try, in order."""

    #: Stable strategy name (labels cells, traces and report rows).
    name: str

    #: True when :meth:`plan` consumes the fleet's secret (a declared leak).
    requires_secret: bool

    def plan(
        self,
        *,
        key_bits: int,
        num_variants: int,
        rng: random.Random,
        nominal_base: int = SECRET_NOMINAL_BASE,
        secret: Optional[tuple[int, ...]] = None,
    ) -> list[int]:
        """The ordered probe addresses for one trial."""
        ...


@dataclasses.dataclass(frozen=True)
class ExhaustiveSweepAttacker:
    """Sweep every slice base in ascending order (the baseline search)."""

    max_probes: Optional[int] = None
    name: str = "exhaustive-sweep"
    requires_secret: bool = False

    def plan(self, *, key_bits, num_variants, rng, nominal_base=SECRET_NOMINAL_BASE, secret=None):
        shift = VALUE_BITS - key_bits
        addresses = [(s << shift) + nominal_base for s in range(1 << key_bits)]
        return addresses[: self.max_probes] if self.max_probes else addresses


@dataclasses.dataclass(frozen=True)
class RandomProbingAttacker:
    """Uniform i.i.d. slice guesses (with replacement) from the injected rng."""

    max_probes: Optional[int] = None
    name: str = "random-probing"
    requires_secret: bool = False

    def plan(self, *, key_bits, num_variants, rng, nominal_base=SECRET_NOMINAL_BASE, secret=None):
        shift = VALUE_BITS - key_bits
        budget = self.max_probes if self.max_probes else 2 * (1 << key_bits)
        return [(rng.randrange(1 << key_bits) << shift) + nominal_base for _ in range(budget)]


@dataclasses.dataclass(frozen=True)
class PartialKnowledgeAttacker:
    """A prior from a leak: the low *known_bits* of every occupied slice.

    Only slices consistent with the leak are probed (ascending).  When the
    secret also carries slide offsets (the ``keyed-address`` scheme), those
    are assumed leaked too, and every candidate slice is probed once per
    distinct offset -- the slice assignment remains the unknown.
    """

    known_bits: int = 2
    name: str = "partial-knowledge"
    requires_secret: bool = True

    def plan(self, *, key_bits, num_variants, rng, nominal_base=SECRET_NOMINAL_BASE, secret=None):
        if secret is None:
            raise ValueError("partial-knowledge planning needs the fleet's secret (the leak)")
        shift = VALUE_BITS - key_bits
        slices = secret[:num_variants]
        offsets = secret[num_variants:] or (0,)
        mask = (1 << min(self.known_bits, key_bits)) - 1
        leaked = {s & mask for s in slices}
        addresses = []
        for candidate in range(1 << key_bits):
            if candidate & mask not in leaked:
                continue
            for offset in sorted(set(offsets)):
                addresses.append((candidate << shift) + offset + nominal_base)
        return addresses


@dataclasses.dataclass(frozen=True)
class ProbeTrialPlan:
    """One fully planned trial: the seeded fleet spec plus its probe list."""

    name: str
    strategy: str
    spec: SystemSpec
    addresses: tuple[int, ...]
    num_variants: int
    key_bits: int
    slide: bool
    seed: int

    def payload(self) -> dict:
        """The process-backend payload (JSON-level, spawn-safe)."""
        return {
            "name": self.name,
            "strategy": self.strategy,
            "spec": self.spec.to_dict(),
            "addresses": list(self.addresses),
            "key_bits": self.key_bits,
        }


def plan_trial(
    strategy: BruteForceAttacker,
    *,
    num_variants: int = 2,
    key_bits: int = 6,
    seed: int,
    slide: bool = False,
    name: Optional[str] = None,
) -> ProbeTrialPlan:
    """Plan one trial: derive the key seed, draw the layout, order the probes.

    Everything is derived from *seed* with :func:`~repro.api.seeding.derive_seed`
    (never the module-global :mod:`random`), so the same seed plans the same
    trial in any process: the fleet spec carries the derived key seed, and the
    worker rebuilding the spec draws the exact layout planned against here.
    """
    key_seed = derive_seed(seed, "key", strategy.name, num_variants, key_bits, slide)
    plan_rng = random.Random(derive_seed(seed, "plan", strategy.name, num_variants, key_bits, slide))
    scheme_cls = KeyedAddressScheme if slide else KeyedOrbitScheme
    secret = scheme_cls(num_variants, key_bits=key_bits, seed=key_seed).secret()
    addresses = strategy.plan(
        key_bits=key_bits,
        num_variants=num_variants,
        rng=plan_rng,
        secret=secret if strategy.requires_secret else None,
    )
    spec = keyed_address_spec(num_variants, key_bits=key_bits, seed=key_seed, slide=slide)
    return ProbeTrialPlan(
        name=name or f"{strategy.name}@{spec.name}#s{seed}",
        strategy=strategy.name,
        spec=spec,
        addresses=tuple(addresses),
        num_variants=num_variants,
        key_bits=key_bits,
        slide=slide,
        seed=seed,
    )


def run_probe_batch(
    plans: Sequence[ProbeTrialPlan],
    *,
    backend: str = "virtual",
    workers: int = 1,
    rounds_per_turn: int = 8,
    pool: Optional[ProcessWorkerPool] = None,
) -> list[ProbeOutcome]:
    """Execute planned trials through the campaign scheduler, in plan order.

    ``backend="virtual"`` interleaves the cells as resumable sessions in
    process; ``backend="process"`` ships each plan's payload to the
    pre-forked worker pool.  Results come back in submission order on both
    paths, and seeded plans produce byte-identical outcomes either way.
    """
    if backend == "process":
        jobs = [
            ProcessJob(name=plan.name, runner=PROBE_RUNNER, payload=plan.payload())
            for plan in plans
        ]
        execution = run_process_jobs(
            jobs,
            workers=workers,
            halt_policy=CampaignHaltPolicy.PER_CELL,
            rounds_per_turn=rounds_per_turn,
            pool=pool,
        )
    elif backend == "virtual":
        jobs = []
        for plan in plans:
            cell = prepare_probe_cell(
                plan.spec,
                plan.addresses,
                name=plan.name,
                strategy=plan.strategy,
                key_bits=plan.key_bits,
            )
            jobs.append(CampaignJob(name=cell.name, start=cell.start, finish=cell.finish))
        execution = run_jobs(
            jobs,
            parallelism=workers,
            rounds_per_turn=rounds_per_turn,
            halt_policy=CampaignHaltPolicy.PER_CELL,
        )
    else:
        raise ValueError(f"backend must be 'virtual' or 'process', got {backend!r}")
    return [
        ProbeOutcome.from_dict(job.value)
        for job in execution.jobs
        if job.value is not None
    ]


@dataclasses.dataclass
class AttackTrace:
    """All trials of one strategy against one keyed configuration."""

    strategy: str
    num_variants: int
    key_bits: int
    slide: bool
    seed: int
    outcomes: list[ProbeOutcome]

    @property
    def trials(self) -> int:
        return len(self.outcomes)

    @property
    def alarm_rate(self) -> float:
        """Fraction of trials the fleet caught before the plan ran out."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.alarmed) / len(self.outcomes)

    @property
    def mean_probes_to_first_alarm(self) -> float:
        """Mean probes until the first alarm (censored trials count as their
        full planned budget -- a lower bound on the true mean)."""
        if not self.outcomes:
            return float("nan")
        return statistics.fmean(
            o.probes_to_first_alarm if o.alarmed else o.planned for o in self.outcomes
        )

    @property
    def successes(self) -> int:
        """Trials that reached an undetected compromise (expected: zero)."""
        return sum(1 for o in self.outcomes if o.probes_to_success is not None)


def run_probe_trials(
    strategy: BruteForceAttacker,
    *,
    num_variants: int = 2,
    key_bits: int = 6,
    trials: int = 4,
    seed: int = 0,
    slide: bool = False,
    backend: str = "virtual",
    workers: int = 1,
    pool: Optional[ProcessWorkerPool] = None,
) -> AttackTrace:
    """Run *trials* independent keyed games for one strategy/configuration.

    Each trial draws a fresh key from a seed derived off *seed* and the trial
    index, so trials are independent samples of the same game and the whole
    trace is reproducible from one integer.
    """
    plans = [
        plan_trial(
            strategy,
            num_variants=num_variants,
            key_bits=key_bits,
            seed=derive_seed(seed, "trial", t),
            slide=slide,
        )
        for t in range(trials)
    ]
    outcomes = run_probe_batch(plans, backend=backend, workers=workers, pool=pool)
    return AttackTrace(
        strategy=strategy.name,
        num_variants=num_variants,
        key_bits=key_bits,
        slide=slide,
        seed=seed,
        outcomes=outcomes,
    )
