"""The attacker-model subsystem: brute-force probing of keyed fleets.

The paper's detection results are boolean -- every public scheme either
detects an attack class or it does not, because the attacker is assumed to
know the layout.  The keyed schemes (:mod:`repro.memory.partition`) withhold
the layout behind ``key_bits`` of entropy, which turns detection into a
*game*: an attacker probes candidate layouts, every wrong-but-close guess
risks an alarm, and the quantity of interest becomes the expected number of
probes before the first alarm.

This package models that game end to end:

* :mod:`~repro.security.probes` -- the probe primitive: a generated program
  that ``peek``\\ s candidate absolute addresses and surfaces each outcome
  through ``cond_chk``, so a *partial* hit (some variants read data, others
  fault) diverges at the monitor and alarms, while a unanimous miss stays
  silent.  One probe cell runs a whole planned probe sequence against a
  keyed fleet and reports probes-to-first-alarm / probes-to-success.
* :mod:`~repro.security.attacker` -- the :class:`BruteForceAttacker`
  strategies (exhaustive sweep, random probing, partial-knowledge priors),
  trial planning, and batch execution of many probe cells through the same
  campaign scheduler (virtual or process backend) every other experiment
  uses.

The `entropy` experiment (:mod:`repro.analysis.experiments.entropy`) sweeps
key entropy x N x scheme kind through these pieces and claims the resulting
probes-to-first-alarm curve.
"""

from repro.security.attacker import (
    AttackTrace,
    BruteForceAttacker,
    ExhaustiveSweepAttacker,
    PartialKnowledgeAttacker,
    ProbeTrialPlan,
    RandomProbingAttacker,
    expected_exhaustive_probes,
    plan_trial,
    run_probe_batch,
    run_probe_trials,
)
from repro.security.probes import (
    PROBE_RUNNER,
    ProbeOutcome,
    SECRET_NOMINAL_BASE,
    SECRET_REGION_SIZE,
    make_probe_factory,
    prepare_probe_cell,
    run_probe_payload,
)

__all__ = [
    "AttackTrace",
    "BruteForceAttacker",
    "ExhaustiveSweepAttacker",
    "PROBE_RUNNER",
    "PartialKnowledgeAttacker",
    "ProbeOutcome",
    "ProbeTrialPlan",
    "RandomProbingAttacker",
    "SECRET_NOMINAL_BASE",
    "SECRET_REGION_SIZE",
    "expected_exhaustive_probes",
    "make_probe_factory",
    "plan_trial",
    "prepare_probe_cell",
    "run_probe_batch",
    "run_probe_payload",
    "run_probe_trials",
]
