"""Memory-corruption primitives used by the attack library.

Section 2.3 of the paper is precise about the granularity of corruption each
variation defends against:

* the UID reexpression ``u XOR 0x7FFFFFFF`` detects any corruption that
  changes one of the 31 low bits (full-word overwrites, byte-level partial
  overwrites, low-bit flips), because the same concrete value decodes to
  different UIDs in the two variants;
* it is *blind* to an overwrite of only the high (sign) bit, which the
  reexpression function leaves unflipped -- the paper argues such single-bit
  remote attacks are not realistic, and we reproduce both the blind spot and
  the argument in the ablation benchmark;
* plain address-space partitioning detects injected *complete* addresses but
  not a 3-low-byte partial overwrite; the extended variant (extra offset)
  regains probabilistic protection.

These helpers express those corruption classes as operations on a
:class:`~repro.memory.memory_model.MemoryVariable` or raw region address, so
attack code and property-based tests share one vocabulary.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.memory.memory_model import MemoryRegion, MemoryVariable, WORD_MASK, WORD_SIZE


@dataclasses.dataclass(frozen=True)
class CorruptionSpec:
    """A declarative description of a memory corruption.

    ``kind`` is one of ``full-word``, ``partial-bytes``, ``bit-flip``.
    ``payload`` is the attacker-chosen word value for overwrites, or the bit
    index for flips.  ``byte_count`` applies to partial overwrites and counts
    bytes written starting from the low-order byte (little-endian layout),
    matching the paper's discussion of low-order-byte partial overwrites.
    """

    kind: str
    payload: int = 0
    byte_count: int = WORD_SIZE

    def __post_init__(self) -> None:
        if self.kind not in ("full-word", "partial-bytes", "bit-flip"):
            raise ValueError(f"unknown corruption kind {self.kind!r}")
        if self.kind == "partial-bytes" and not 1 <= self.byte_count <= WORD_SIZE:
            raise ValueError("partial overwrite must write between 1 and 4 bytes")
        if self.kind == "bit-flip" and not 0 <= self.payload < 32:
            raise ValueError("bit index must be in [0, 32)")

    def describe(self) -> str:
        """Human-readable description for reports and alarms."""
        if self.kind == "full-word":
            return f"full-word overwrite with 0x{self.payload:08x}"
        if self.kind == "partial-bytes":
            return (
                f"partial overwrite of low {self.byte_count} byte(s) "
                f"with 0x{self.payload:08x}"
            )
        return f"flip of bit {self.payload}"


def overwrite_word(variable: MemoryVariable, value: int) -> int:
    """Overwrite a word variable with an attacker-chosen complete value."""
    variable.set(value & WORD_MASK)
    return variable.get()


def overwrite_low_bytes(variable: MemoryVariable, value: int, byte_count: int) -> int:
    """Overwrite only the low *byte_count* bytes of a word variable.

    The high-order bytes keep their original (per-variant) contents; this is
    the partial-overwrite attack the extended address partitioning variation
    was designed around.
    """
    if not 1 <= byte_count <= WORD_SIZE:
        raise ValueError("byte_count must be between 1 and 4")
    original = variable.get()
    keep_mask = WORD_MASK << (8 * byte_count) & WORD_MASK
    new_value = (original & keep_mask) | (value & ((1 << (8 * byte_count)) - 1))
    variable.set(new_value)
    return new_value


def flip_bit(variable: MemoryVariable, bit: int) -> int:
    """Flip a single bit of a word variable (heat-lamp style fault attack)."""
    if not 0 <= bit < 32:
        raise ValueError("bit must be in [0, 32)")
    new_value = variable.get() ^ (1 << bit)
    variable.set(new_value)
    return new_value


def apply_corruption(variable: MemoryVariable, spec: CorruptionSpec) -> int:
    """Apply *spec* to *variable* and return the resulting word value."""
    if spec.kind == "full-word":
        return overwrite_word(variable, spec.payload)
    if spec.kind == "partial-bytes":
        return overwrite_low_bytes(variable, spec.payload, spec.byte_count)
    return flip_bit(variable, spec.payload)


def overflow_buffer(
    region: MemoryRegion,
    buffer: MemoryVariable,
    data: bytes,
) -> int:
    """Simulate an unchecked copy into *buffer* that may overflow.

    Writes *data* starting at the buffer's address with no per-buffer bounds
    check, so bytes beyond ``buffer.size`` spill into whatever the program
    laid out after it.  Returns the number of bytes written.
    """
    if buffer.region is not region:
        raise ValueError("buffer does not belong to the given region")
    return region.unchecked_copy(buffer.address, data)


def overflow_payload(
    buffer_size: int, overwrite_value: int, *, filler: bytes = b"A", word_bytes: int = WORD_SIZE
) -> bytes:
    """Build a classic overflow payload.

    The payload fills the vulnerable buffer with *filler* bytes and then
    appends the little-endian encoding of *overwrite_value*, so an unchecked
    copy places that word exactly over the variable adjacent to the buffer.
    """
    if len(filler) != 1:
        raise ValueError("filler must be a single byte")
    padding = filler * buffer_size
    return padding + (overwrite_value & WORD_MASK).to_bytes(WORD_SIZE, "little")[:word_bytes]


def corruption_outcomes(
    original_values: Sequence[int],
    spec: CorruptionSpec,
) -> tuple[int, ...]:
    """Predict the post-corruption concrete values in an N-variant system.

    Given the per-variant original concrete values of the targeted word and a
    corruption spec, return the concrete values after the *same* attack input
    is applied to every variant.  Used by analytical detection arguments and
    property-based tests (the monitor's observation must match this model).
    """
    results = []
    for original in original_values:
        if spec.kind == "full-word":
            results.append(spec.payload & WORD_MASK)
        elif spec.kind == "partial-bytes":
            keep_mask = WORD_MASK << (8 * spec.byte_count) & WORD_MASK
            low_mask = (1 << (8 * spec.byte_count)) - 1
            results.append((original & keep_mask) | (spec.payload & low_mask))
        else:
            results.append(original ^ (1 << spec.payload))
    return tuple(results)


def detectable_by_disjoint_inverses(
    post_values: Sequence[int],
    inverses: Sequence[Callable[[int], int]],
) -> bool:
    """Decide whether the monitor detects the corruption.

    The monitor applies each variant's inverse reexpression function to the
    concrete value it observes and compares the decoded values.  Detection
    happens exactly when at least two variants decode different values --
    for any variant count, which is what lets the same predicate serve the
    paper's 2-variant systems and the N-ary orbit generalisation.
    """
    decoded = [invert(value) for value, invert in zip(post_values, inverses)]
    return len(set(decoded)) > 1
