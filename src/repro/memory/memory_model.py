"""Byte-addressable memory regions and typed variables bound to addresses.

The UID variation defends against *non-control-data* attacks (Chen et al.):
the attacker corrupts an in-memory data value -- here a ``uid_t`` variable --
so that the unmodified program later misbehaves (e.g. fails to drop
privileges).  To reproduce that attack surface faithfully the mini-httpd
stores its security-critical state in simulated memory: fixed-size buffers
that unchecked copies can overflow, adjacent to the UID fields the attacker
wants to reach.

:class:`MemoryRegion` is a named, contiguous byte array with a base address.
:class:`MemoryVariable` is a typed view (32-bit word or byte buffer) at a
fixed offset within a region, which is how programs in this reproduction
declare "a local ``uid_t`` at this stack slot".
"""

from __future__ import annotations

import dataclasses

from repro.kernel.errors import SegmentationFault

WORD_SIZE = 4
WORD_MASK = 0xFFFFFFFF


class MemoryRegion:
    """A contiguous block of simulated memory."""

    def __init__(self, name: str, base: int, size: int):
        if size <= 0:
            raise ValueError("region size must be positive")
        if base < 0:
            raise ValueError("region base must be non-negative")
        self.name = name
        self.base = base
        self.data = bytearray(size)

    # -- geometry -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when *address* falls inside the region."""
        return self.base <= address < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True when this region overlaps *other*."""
        return self.base < other.end and other.base < self.end

    def relocate(self, new_base: int) -> "MemoryRegion":
        """Return a copy of this region rebased at *new_base*."""
        clone = MemoryRegion(self.name, new_base, self.size)
        clone.data[:] = self.data
        return clone

    # -- raw access ----------------------------------------------------------

    def _check_range(self, address: int, count: int) -> int:
        if count < 0:
            raise ValueError("negative byte count")
        if not self.contains(address) or address + count > self.end:
            raise SegmentationFault(
                f"access [0x{address:08x}, +{count}) outside region {self.name}",
                address=address,
            )
        return address - self.base

    def read(self, address: int, count: int) -> bytes:
        """Read *count* bytes at absolute *address*."""
        offset = self._check_range(address, count)
        return bytes(self.data[offset : offset + count])

    def write(self, address: int, data: bytes) -> None:
        """Write *data* at absolute *address*."""
        offset = self._check_range(address, len(data))
        self.data[offset : offset + len(data)] = data

    def read_word(self, address: int) -> int:
        """Read a 32-bit little-endian word at *address*."""
        return int.from_bytes(self.read(address, WORD_SIZE), "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word at *address*."""
        self.write(address, (value & WORD_MASK).to_bytes(WORD_SIZE, "little"))

    # -- unchecked access (the vulnerability primitive) ------------------------

    def unchecked_copy(self, address: int, data: bytes) -> int:
        """Copy *data* to *address* without bounds checking against sub-buffers.

        This models the classic ``strcpy``-style bug: the copy is bounded only
        by the *region* (so it cannot escape the simulated process), but it is
        free to run past the end of a logical buffer inside the region and
        clobber whatever lives next to it -- for example a ``uid_t`` field.
        Returns the number of bytes actually written.
        """
        if not self.contains(address):
            raise SegmentationFault(
                f"copy target 0x{address:08x} outside region {self.name}", address=address
            )
        writable = min(len(data), self.end - address)
        offset = address - self.base
        self.data[offset : offset + writable] = data[:writable]
        return writable


@dataclasses.dataclass
class MemoryVariable:
    """A typed program variable bound to a fixed location in a region.

    ``kind`` is ``"word"`` for a 32-bit value (uid_t, pointer, int) or
    ``"buffer"`` for a fixed-size byte buffer.
    """

    name: str
    region: MemoryRegion
    offset: int
    kind: str = "word"
    size: int = WORD_SIZE

    def __post_init__(self) -> None:
        if self.kind not in ("word", "buffer"):
            raise ValueError(f"unknown variable kind {self.kind!r}")
        if self.kind == "word":
            self.size = WORD_SIZE
        if self.offset < 0 or self.offset + self.size > self.region.size:
            raise ValueError(f"variable {self.name} does not fit in region {self.region.name}")

    @property
    def address(self) -> int:
        """Absolute address of this variable."""
        return self.region.base + self.offset

    # -- word access ----------------------------------------------------------

    def get(self) -> int:
        """Read the variable as a 32-bit word."""
        return self.region.read_word(self.address)

    def set(self, value: int) -> None:
        """Write the variable as a 32-bit word."""
        self.region.write_word(self.address, value)

    # -- buffer access ----------------------------------------------------------

    def get_bytes(self) -> bytes:
        """Read the variable's full byte extent."""
        return self.region.read(self.address, self.size)

    def set_bytes(self, data: bytes) -> None:
        """Write bytes into the variable, bounds-checked against its size."""
        if len(data) > self.size:
            raise ValueError(f"{len(data)} bytes do not fit in {self.name} ({self.size} bytes)")
        self.region.write(self.address, data)


class StackFrame:
    """A stack-frame-like layout helper.

    Variables are allocated at increasing offsets in declaration order, which
    fixes the adjacency the overflow attacks rely on: a buffer declared just
    before a ``uid_t`` sits at lower addresses, so an overflow of the buffer
    runs forward into the ``uid_t``.
    """

    def __init__(self, region: MemoryRegion, *, start_offset: int = 0):
        self.region = region
        self._cursor = start_offset
        self.variables: dict[str, MemoryVariable] = {}

    def alloc_word(self, name: str, initial: int = 0) -> MemoryVariable:
        """Allocate a 32-bit variable."""
        variable = MemoryVariable(name, self.region, self._cursor, kind="word")
        self._cursor += WORD_SIZE
        variable.set(initial)
        self.variables[name] = variable
        return variable

    def alloc_buffer(self, name: str, size: int) -> MemoryVariable:
        """Allocate a fixed-size byte buffer."""
        variable = MemoryVariable(name, self.region, self._cursor, kind="buffer", size=size)
        self._cursor += size
        self.variables[name] = variable
        return variable

    def __getitem__(self, name: str) -> MemoryVariable:
        return self.variables[name]

    def layout(self) -> list[tuple[str, int, int]]:
        """Return ``(name, offset, size)`` tuples in allocation order."""
        ordered = sorted(self.variables.values(), key=lambda v: v.offset)
        return [(v.name, v.offset, v.size) for v in ordered]
